"""Coarse-archive recovery: the calibrator after simulated downtime.

When the calibrator was down long enough that the fine archive aged part
of the window out, :meth:`LinkCalibrator._refresh` consumes coarse CDPs
(weighted by the step count they consolidated) plus fine recent points.
The equivalence property: forecasts after such a recovery agree with a
calibrator that saw the full fine-resolution series, within tolerance.
The ordering regression pins that the mixed-resolution window replays in
time order — coarse history strictly before the fine points that follow
it.
"""

from __future__ import annotations

import math

import pytest

from repro.metrology.calibrator import LinkCalibrator
from repro.metrology.collectors import MetricRegistry
from repro.metrology.feed import MetrologyFeed
from repro.nws.forecaster import AdaptiveForecaster
from repro.rrd.rra import ConsolidationFunction, RraSpec

LINK = "lab-link"
STEP = 1.0
#: Short fine archive: downtime ages early samples out to the coarse RRA.
SHORT_FINE = (
    RraSpec(ConsolidationFunction.AVERAGE, 1, 12),
    RraSpec(ConsolidationFunction.AVERAGE, 4, 100),
)
#: Long fine archive: the full-resolution reference.
LONG_FINE = (RraSpec(ConsolidationFunction.AVERAGE, 1, 400),)


def series_value(i: int) -> float:
    """A slowly varying measurement series (drifting + mild oscillation)."""
    return 100.0 + 0.2 * i + 4.0 * math.sin(i / 9.0)


def build_registry(rras) -> MetricRegistry:
    registry = MetricRegistry()
    for metric in ("bandwidth", "latency"):
        registry.create(MetrologyFeed.metric_key(LINK, metric),
                        kind="GAUGE", step=STEP, rras=rras)
    return registry


def record(registry: MetricRegistry, n_samples: int) -> float:
    for metric in ("bandwidth", "latency"):
        rrd = registry.get(MetrologyFeed.metric_key(LINK, metric))
        for i in range(1, n_samples + 1):
            rrd.update(i * STEP, series_value(i))
    return n_samples * STEP


class RecordingForecaster(AdaptiveForecaster):
    """Captures every (value, weight) the calibrator feeds it."""

    def __init__(self):
        super().__init__()
        self.consumed: list[tuple[float, int]] = []

    def update(self, value, weight=1):
        self.consumed.append((value, weight))
        super().update(value, weight=weight)


class TestCoarseRecoveryEquivalence:
    N_SAMPLES = 60

    def test_post_recovery_forecast_matches_fine_only(self):
        # calibrator A recovers through coarse+fine (downtime: nothing was
        # consumed while 60 samples accumulated over a 12-row fine RRA)
        coarse = build_registry(SHORT_FINE)
        now = record(coarse, self.N_SAMPLES)
        recovered = LinkCalibrator(coarse, [LINK]).estimate(LINK, now)

        # calibrator B saw the same series at full resolution
        fine = build_registry(LONG_FINE)
        record(fine, self.N_SAMPLES)
        reference = LinkCalibrator(fine, [LINK]).estimate(LINK, now)

        assert recovered.ready and reference.ready
        assert recovered.bandwidth == pytest.approx(reference.bandwidth,
                                                    rel=0.05)
        assert recovered.rtt == pytest.approx(reference.rtt, rel=0.05)

    def test_recovery_weights_match_consolidated_step_counts(self):
        registry = build_registry(SHORT_FINE)
        now = record(registry, self.N_SAMPLES)
        calibrator = LinkCalibrator(registry, [LINK])
        recorder = RecordingForecaster()
        calibrator._forecasters[(LINK, "bandwidth")] = recorder
        calibrator.estimate(LINK, now)

        weights = [w for _, w in recorder.consumed]
        assert set(weights) == {1, 4}  # fine points and 4-step coarse CDPs
        # total weight accounts for (almost) the whole window — at most
        # one trailing partial coarse interval may be unconsolidated yet
        assert sum(weights) >= self.N_SAMPLES - 4
        # observations reflect the replayed weight, so the loop's
        # min_observations anchor sees the recovered history
        assert calibrator.observations(LINK) == sum(weights)

    def test_mixed_resolution_replay_is_time_ordered(self):
        registry = build_registry(SHORT_FINE)
        now = record(registry, self.N_SAMPLES)
        rrd = registry.get(MetrologyFeed.metric_key(LINK, "bandwidth"))
        spans = rrd.fetch_spans(0.0, now)
        ends = [end for _, end, _ in spans]
        assert ends == sorted(ends), "fetch_spans must be time-ordered"

        calibrator = LinkCalibrator(registry, [LINK])
        recorder = RecordingForecaster()
        calibrator._forecasters[(LINK, "bandwidth")] = recorder
        calibrator.estimate(LINK, now)
        expected = [(value, max(1, int(round((end - start) / rrd.step))))
                    for start, end, value in spans
                    if not math.isnan(value)]
        assert recorder.consumed == expected

    def test_incremental_consumption_never_replays_a_span_twice(self):
        registry = build_registry(SHORT_FINE)
        calibrator = LinkCalibrator(registry, [LINK])
        record(registry, 30)
        calibrator.estimate(LINK, 30 * STEP)
        consumed_once = calibrator.observations(LINK)
        # nothing new: a second estimate consumes nothing
        calibrator.estimate(LINK, 30 * STEP)
        assert calibrator.observations(LINK) == consumed_once
        # more samples: only the delta is consumed
        for metric in ("bandwidth", "latency"):
            rrd = registry.get(MetrologyFeed.metric_key(LINK, metric))
            for i in range(31, 41):
                rrd.update(i * STEP, series_value(i))
        calibrator.estimate(LINK, 40 * STEP)
        grown = calibrator.observations(LINK)
        assert consumed_once < grown <= consumed_once + 10
