"""Smokeping-like latency prober."""

import pytest

from repro.metrology.collectors import MetricRegistry
from repro.metrology.ping import LatencyProber


class TestProber:
    def test_probes_record_rtt_series(self, g5k_testbed):
        registry = MetricRegistry()
        prober = LatencyProber(g5k_testbed, registry, period=30.0, seed=1)
        src = "sagittaire-1.lyon.grid5000.fr"
        dst = "graphene-1.nancy.grid5000.fr"
        prober.add_pair(src, dst)
        cycles = prober.probe_for(300.0)
        assert cycles == 10
        measured = prober.measured_rtt(src, dst)
        true_rtt = g5k_testbed.rtt(src, dst)
        assert measured == pytest.approx(true_rtt, rel=0.10)

    def test_unknown_pair_rejected_at_registration(self, g5k_testbed):
        prober = LatencyProber(g5k_testbed, MetricRegistry())
        with pytest.raises(Exception):
            prober.add_pair("ghost", "sagittaire-1.lyon.grid5000.fr")

    def test_measured_rtt_requires_probes(self, g5k_testbed):
        prober = LatencyProber(g5k_testbed, MetricRegistry(), seed=2)
        src = "sagittaire-1.lyon.grid5000.fr"
        dst = "sagittaire-2.lyon.grid5000.fr"
        prober.add_pair(src, dst)
        with pytest.raises(ValueError):
            prober.measured_rtt(src, dst)

    def test_jitter_produces_dispersion(self, g5k_testbed):
        registry = MetricRegistry()
        prober = LatencyProber(g5k_testbed, registry, period=30.0,
                               jitter=0.05, seed=3)
        src = "chti-1.lille.grid5000.fr"
        dst = "graphene-1.nancy.grid5000.fr"
        key = prober.add_pair(src, dst)
        prober.probe_for(600.0)
        series = registry.get(key).fetch(0.0, 600.0)
        values = [v for _, v in series]
        assert max(values) > min(values)
