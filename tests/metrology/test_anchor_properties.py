"""Property tests for EWMA reference re-anchoring (drift scenarios).

Hypothesis-style: each property runs over a battery of seeded random
scenarios (step, ramp, noise-only) and pins the anchor's contract —
references converge to the healthy-phase mean within tolerance, and never
move on unhealthy observations.
"""

from __future__ import annotations

import pytest

from repro._util.rng import rng_for
from repro.metrology.collectors import MetrologyError
from repro.metrology.loop import ReferenceAnchor

SEEDS = range(10)
ALPHA = 0.25
BAND = 0.15


class TestNoiseOnly:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_converges_to_the_healthy_mean(self, seed):
        rng = rng_for(seed, "anchor-noise")
        mean = float(rng.uniform(0.5, 200.0))
        start = mean * float(1.0 + rng.uniform(-BAND / 2, BAND / 2))
        anchor = ReferenceAnchor(start, alpha=ALPHA, band=BAND)
        for _ in range(400):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        # EWMA of unbiased noise around the mean settles on the mean
        assert anchor.value == pytest.approx(mean, rel=0.05)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_alpha_zero_freezes_the_anchor(self, seed):
        rng = rng_for(seed, "anchor-frozen")
        start = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(start, alpha=0.0, band=BAND)
        for _ in range(100):
            assert not anchor.observe(
                start * float(1.0 + rng.normal(0.0, 0.02)))
        assert anchor.value == start  # bitwise: never touched


class TestStep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_updates_during_the_unhealthy_phase(self, seed):
        rng = rng_for(seed, "anchor-step")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        for _ in range(50):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        healthy_value = anchor.value
        # a genuine degradation: estimates step far outside the band
        degraded = mean * float(rng.uniform(0.2, 0.5))
        for _ in range(200):
            moved = anchor.observe(
                degraded * float(1.0 + rng.normal(0.0, 0.02)))
            assert not moved
        assert anchor.value == healthy_value  # bitwise: gate held

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_resumes_anchoring(self, seed):
        rng = rng_for(seed, "anchor-recover")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        for _ in range(100):
            anchor.observe(mean * 0.3)  # unhealthy: ignored
        assert anchor.observe(mean * 1.01)  # healthy again: tracked


class TestRamp:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_slow_drift_is_tracked_within_tolerance(self, seed):
        rng = rng_for(seed, "anchor-ramp")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        # drift per observation far below the band: always healthy
        steps = 200
        drift = 0.998
        value = mean
        moved = 0
        for _ in range(steps):
            value *= drift
            moved += bool(anchor.observe(
                value * float(1.0 + rng.normal(0.0, 0.01))))
        assert moved > steps * 0.9  # virtually every observation anchored
        # the anchor ends near the drifted level, not the original mean
        assert anchor.value == pytest.approx(value, rel=0.05)
        assert anchor.value < 0.8 * mean


class TestGaussianWeighting:
    """Distance-weighted re-anchoring: the soft variant of the hard band.

    Same drift scenarios (noise, step, ramp); the contract differs only
    where the hard band has its cliff — estimates just outside the band
    are tracked at reduced strength instead of erratically gated, while
    genuine degradations still cannot drag the reference."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_noise_converges_to_the_healthy_mean(self, seed):
        rng = rng_for(seed, "anchor-gauss-noise")
        mean = float(rng.uniform(0.5, 200.0))
        start = mean * float(1.0 + rng.uniform(-BAND / 2, BAND / 2))
        anchor = ReferenceAnchor(start, alpha=ALPHA, band=BAND,
                                 weighting="gaussian")
        for _ in range(400):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        assert anchor.value == pytest.approx(mean, rel=0.05)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_step_degradation_barely_moves_the_anchor(self, seed):
        """A genuine step (far outside the band) gets a vanishing weight:
        the anchor moves — no bitwise freeze — but stays pinned near the
        healthy level even under a sustained degraded phase."""
        rng = rng_for(seed, "anchor-gauss-step")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND,
                                 weighting="gaussian")
        for _ in range(50):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        healthy_value = anchor.value
        degraded = mean * float(rng.uniform(0.2, 0.4))  # ≥ 4 bands away
        for _ in range(200):
            anchor.observe(degraded * float(1.0 + rng.normal(0.0, 0.02)))
        assert anchor.value == pytest.approx(healthy_value, rel=0.05)
        assert anchor.value > 2.0 * degraded  # nowhere near the outage level

    @pytest.mark.parametrize("seed", SEEDS)
    def test_drift_just_outside_the_band_is_tracked(self, seed):
        """The payoff over the hard band: a persistent level shift just
        past the cliff (which ``hard`` freezes on forever) is re-anchored
        at reduced strength and eventually converged to."""
        rng = rng_for(seed, "anchor-gauss-edge")
        mean = float(rng.uniform(1.0, 100.0))
        shifted = mean * (1.0 + 1.5 * BAND)  # outside the hard band
        hard = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        soft = ReferenceAnchor(mean, alpha=ALPHA, band=BAND,
                               weighting="gaussian")
        for _ in range(300):
            estimate = shifted * float(1.0 + rng.normal(0.0, 0.005))
            hard.observe(estimate)
            soft.observe(estimate)
        assert hard.value == mean  # the cliff: frozen, bitwise
        assert soft.value == pytest.approx(shifted, rel=0.05)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ramp_is_tracked_within_tolerance(self, seed):
        rng = rng_for(seed, "anchor-gauss-ramp")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND,
                                 weighting="gaussian")
        value = mean
        moved = 0
        for _ in range(200):
            value *= 0.998
            moved += bool(anchor.observe(
                value * float(1.0 + rng.normal(0.0, 0.01))))
        assert moved > 200 * 0.9
        assert anchor.value == pytest.approx(value, rel=0.05)
        assert anchor.value < 0.8 * mean

    def test_weight_profile(self):
        anchor = ReferenceAnchor(100.0, alpha=ALPHA, band=BAND,
                                 weighting="gaussian")
        assert anchor.step_weight(100.0) == 1.0
        edge = anchor.step_weight(100.0 * (1.0 + BAND))
        assert edge == pytest.approx(0.6065, rel=1e-3)  # exp(-1/2)
        far = anchor.step_weight(100.0 * (1.0 + 3 * BAND))
        assert far < 0.012
        # monotone in distance, symmetric in direction
        distances = [1.0 + k * BAND for k in (0.5, 1.0, 2.0, 4.0)]
        weights = [anchor.step_weight(100.0 * d) for d in distances]
        assert weights == sorted(weights, reverse=True)
        assert anchor.step_weight(100.0 * (1.0 - BAND)) == pytest.approx(
            anchor.step_weight(100.0 * (1.0 + BAND)), rel=1e-9)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_alpha_zero_freezes_the_anchor(self, seed):
        rng = rng_for(seed, "anchor-gauss-frozen")
        start = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(start, alpha=0.0, band=BAND,
                                 weighting="gaussian")
        for _ in range(100):
            assert not anchor.observe(
                start * float(1.0 + rng.normal(0.0, 0.02)))
        assert anchor.value == start


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(MetrologyError):
            ReferenceAnchor(0.0)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, alpha=1.0)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, alpha=-0.1)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, band=0.0)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, weighting="sigmoid")
