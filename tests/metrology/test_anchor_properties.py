"""Property tests for EWMA reference re-anchoring (drift scenarios).

Hypothesis-style: each property runs over a battery of seeded random
scenarios (step, ramp, noise-only) and pins the anchor's contract —
references converge to the healthy-phase mean within tolerance, and never
move on unhealthy observations.
"""

from __future__ import annotations

import pytest

from repro._util.rng import rng_for
from repro.metrology.collectors import MetrologyError
from repro.metrology.loop import ReferenceAnchor

SEEDS = range(10)
ALPHA = 0.25
BAND = 0.15


class TestNoiseOnly:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_converges_to_the_healthy_mean(self, seed):
        rng = rng_for(seed, "anchor-noise")
        mean = float(rng.uniform(0.5, 200.0))
        start = mean * float(1.0 + rng.uniform(-BAND / 2, BAND / 2))
        anchor = ReferenceAnchor(start, alpha=ALPHA, band=BAND)
        for _ in range(400):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        # EWMA of unbiased noise around the mean settles on the mean
        assert anchor.value == pytest.approx(mean, rel=0.05)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_alpha_zero_freezes_the_anchor(self, seed):
        rng = rng_for(seed, "anchor-frozen")
        start = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(start, alpha=0.0, band=BAND)
        for _ in range(100):
            assert not anchor.observe(
                start * float(1.0 + rng.normal(0.0, 0.02)))
        assert anchor.value == start  # bitwise: never touched


class TestStep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_updates_during_the_unhealthy_phase(self, seed):
        rng = rng_for(seed, "anchor-step")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        for _ in range(50):
            anchor.observe(mean * float(1.0 + rng.normal(0.0, 0.02)))
        healthy_value = anchor.value
        # a genuine degradation: estimates step far outside the band
        degraded = mean * float(rng.uniform(0.2, 0.5))
        for _ in range(200):
            moved = anchor.observe(
                degraded * float(1.0 + rng.normal(0.0, 0.02)))
            assert not moved
        assert anchor.value == healthy_value  # bitwise: gate held

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_resumes_anchoring(self, seed):
        rng = rng_for(seed, "anchor-recover")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        for _ in range(100):
            anchor.observe(mean * 0.3)  # unhealthy: ignored
        assert anchor.observe(mean * 1.01)  # healthy again: tracked


class TestRamp:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_slow_drift_is_tracked_within_tolerance(self, seed):
        rng = rng_for(seed, "anchor-ramp")
        mean = float(rng.uniform(1.0, 100.0))
        anchor = ReferenceAnchor(mean, alpha=ALPHA, band=BAND)
        # drift per observation far below the band: always healthy
        steps = 200
        drift = 0.998
        value = mean
        moved = 0
        for _ in range(steps):
            value *= drift
            moved += bool(anchor.observe(
                value * float(1.0 + rng.normal(0.0, 0.01))))
        assert moved > steps * 0.9  # virtually every observation anchored
        # the anchor ends near the drifted level, not the original mean
        assert anchor.value == pytest.approx(value, rel=0.05)
        assert anchor.value < 0.8 * mean


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(MetrologyError):
            ReferenceAnchor(0.0)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, alpha=1.0)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, alpha=-0.1)
        with pytest.raises(MetrologyError):
            ReferenceAnchor(1.0, band=0.0)
