"""Tier-1 hook for the metrology smoke check.

The live pipeline (probe → RRD → forecast → epoch bump → re-predict) must
recalibrate a degrading link, keep serving answers consistent across the
epoch bump, beat the static baseline and replay its recorded trace in both
kernel modes — see ``tools/check_metrology_smoke.py``.  Like the scenario
and serving smokes, this is sub-second and runs in-process on every tier-1
pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_metrology_smoke  # noqa: E402


def test_standalone_metrology_smoke_passes(capsys):
    assert check_metrology_smoke.main() == 0
    out = capsys.readouterr().out
    assert "metrology smoke OK" in out
    assert "FAIL" not in out
