"""Combined bandwidth+latency traces: recording, conversion, replay."""

import pytest

from repro.metrology.collectors import MetricRegistry
from repro.metrology.demo import StarMetrologyDemo, build_star_testbed
from repro.metrology.ping import LatencyProber
from repro.scenarios.spec import MeasuredTrace


class TestLatencyProberTrace:
    def test_measured_trace_round_trips_and_scales_additively(self):
        testbed = build_star_testbed(2)
        prober = LatencyProber(testbed, MetricRegistry(), period=30.0, seed=4)
        prober.add_pair("star-1", "star-collector")
        prober.probe_for(200.0)
        nominal = 1e-4
        trace = prober.measured_trace("star-1", "star-collector",
                                      link="star-1-link",
                                      nominal_latency=nominal)
        assert trace.metric == "latency"
        assert trace.link == "star-1-link"
        # healthy series: every converted latency sits near nominal (the
        # additive form cancels the constant RTT overhead entirely)
        for _, value in trace.samples:
            assert value == pytest.approx(nominal, rel=0.25)
        assert MeasuredTrace.from_json(trace.to_json()) == trace

    def test_raw_trace_keeps_rtt_values(self):
        testbed = build_star_testbed(2)
        prober = LatencyProber(testbed, MetricRegistry(), period=30.0, seed=4)
        prober.add_pair("star-1", "star-collector")
        prober.probe_for(100.0)
        trace = prober.measured_trace("star-1", "star-collector",
                                      link="star-1-link")
        rtt = testbed.rtt("star-1", "star-collector")
        for _, value in trace.samples:
            assert value == pytest.approx(rtt, rel=0.2)

    def test_cold_series_rejected(self):
        testbed = build_star_testbed(2)
        prober = LatencyProber(testbed, MetricRegistry(), seed=4)
        prober.add_pair("star-1", "star-collector")
        with pytest.raises(ValueError, match="no probe data"):
            prober.measured_trace("star-1", "star-collector", link="x")


class TestDemoCombinedTraces:
    def test_combined_traces_pair_bandwidth_and_latency_per_link(self):
        demo = StarMetrologyDemo(n_hosts=2, period=15.0, seed=3,
                                 degrade_latency_factor=2.0)
        demo.warmup(3)
        demo.run(6)
        traces = demo.combined_traces()
        assert len(traces) == 4
        by_metric = {}
        for trace in traces:
            by_metric.setdefault(trace.metric, set()).add(trace.link)
        assert by_metric["bandwidth"] == by_metric["latency"]
        assert len(by_metric["bandwidth"]) == 2

    def test_latency_degradation_lands_in_the_trace(self):
        demo = StarMetrologyDemo(n_hosts=2, period=15.0, seed=3,
                                 degrade_factor=0.5,
                                 degrade_latency_factor=3.0)
        demo.warmup(3)
        demo.run(8)
        latency = {t.link: t for t in demo.combined_traces()
                   if t.metric == "latency"}
        degraded = latency[demo.degraded_link].samples
        truth = demo.testbed.links[demo.degraded_link].latency
        assert degraded[-1][1] == pytest.approx(truth, rel=0.15)
        # the untouched link's trace stays at nominal
        other = next(link for link in latency if link != demo.degraded_link)
        assert latency[other].samples[-1][1] == pytest.approx(1e-4, rel=0.25)

    def test_loop_applies_additive_latency_calibration(self):
        # the live loop shares the additive RTT model: a x3 latency
        # degradation recalibrates the platform link to ~3x nominal even
        # though the probe RTT carries constant stack overhead
        demo = StarMetrologyDemo(n_hosts=2, period=15.0, seed=3,
                                 degrade_factor=0.5,
                                 degrade_latency_factor=3.0)
        demo.warmup(4)
        demo.run(8)
        recalibrated = demo.platform.link(demo.degraded_link).latency
        truth = demo.testbed.links[demo.degraded_link].latency
        assert recalibrated == pytest.approx(truth, rel=0.2)
