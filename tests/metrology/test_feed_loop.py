"""MetrologyFeed → LinkCalibrator → RecalibrationLoop unit tests."""

import pytest

from repro.metrology.calibrator import LinkCalibrator
from repro.metrology.collectors import MetrologyError
from repro.metrology.demo import (
    CapacityEvent,
    CapacitySchedule,
    StarMetrologyDemo,
    build_star_testbed,
)
from repro.metrology.feed import MetrologyFeed, MonitoredLink
from repro.metrology.loop import RecalibrationLoop
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.platform import link_epoch


def small_feed(n_hosts=2, period=10.0, seed=1, **kwargs):
    testbed = build_star_testbed(n_hosts)
    monitors = [
        MonitoredLink(f"star-{i}-link", f"star-{i}", "star-collector")
        for i in range(1, n_hosts + 1)
    ]
    return MetrologyFeed(testbed, monitors, period=period, seed=seed, **kwargs)


class TestFeed:
    def test_poll_records_both_metrics_per_link(self):
        feed = small_feed()
        feed.poll_once()
        feed.poll_once()
        for link in ("star-1-link", "star-2-link"):
            bw = feed.rrd(link, "bandwidth").fetch(0.0, feed.clock)
            lat = feed.rrd(link, "latency").fetch(0.0, feed.clock)
            assert len(bw) == 2 and len(lat) == 2
            assert all(v > 0 for _, v in bw)
            assert all(v > 0 for _, v in lat)

    def test_rrds_use_the_default_rra_ladder(self):
        feed = small_feed()
        info = feed.rrd("star-1-link", "bandwidth").describe()
        assert len(info["rras"]) == 4  # DEFAULT_RRAS
        assert info["ds"]["kind"] == "GAUGE"
        assert info["step"] == 10.0

    def test_poll_for_counts_cycles(self):
        feed = small_feed(period=10.0)
        assert feed.poll_for(35.0) == 3
        assert feed.clock == pytest.approx(30.0)

    def test_duplicate_monitors_rejected(self):
        testbed = build_star_testbed(2)
        monitor = MonitoredLink("star-1-link", "star-1", "star-collector")
        with pytest.raises(MetrologyError):
            MetrologyFeed(testbed, [monitor, monitor])

    def test_reused_rrd_with_mismatched_step_rejected(self):
        from repro.metrology.collectors import MetricRegistry

        testbed = build_star_testbed(1)
        registry = MetricRegistry()
        registry.create(MetrologyFeed.metric_key("star-1-link", "bandwidth"),
                        kind="GAUGE", step=5.0)
        with pytest.raises(MetrologyError, match="step"):
            MetrologyFeed(
                testbed,
                [MonitoredLink("star-1-link", "star-1", "star-collector")],
                registry=registry, period=15.0,
            )

    def test_probe_goodput_tracks_capacity(self):
        feed = small_feed(seed=5)
        for _ in range(4):
            feed.poll_once()
        series = [v for _, v in
                  feed.rrd("star-1-link", "bandwidth").fetch(0.0, feed.clock)]
        # goodput sits below raw capacity (startup + ethernet efficiency)
        # but within a plausible band of it
        for v in series:
            assert 0.5 * 1.25e8 < v < 1.25e8


class TestDeadlineGrid:
    """poll_for must not drift: deadlines come from the original epoch."""

    def test_slow_sensor_keeps_deadlines_on_the_epoch_grid(self):
        # probes take ~12ms; a 5ms period means every cycle overruns.
        # The next deadline must land on the epoch grid (k × period), not
        # at completion + period — the drifting behavior this regresses.
        period = 0.005
        feed = small_feed(n_hosts=1, period=period)
        cycles = feed.poll_for(0.2)
        assert cycles >= 2
        assert feed.missed_cycles > 0  # overruns skip grid points...
        for link in ("star-1-link",):
            series = feed.rrd(link, "bandwidth").fetch(
                0.0, feed.clock, include_unknown=True)
            for ts, _ in series:
                k = ts / period
                assert k == pytest.approx(round(k), abs=1e-6), (
                    f"recorded timestamp {ts} drifted off the epoch grid"
                )
        assert feed.last_cycle_duration > period  # ...because probes overran

    def test_fast_sensor_counts_match_and_clock_stays_exact(self):
        # 300 polls of a non-representable period: an accumulated
        # ``clock += period`` drifts by ~1e-14 and eventually miscounts;
        # the epoch grid keeps the clock an exact multiple of the period
        period = 0.1
        feed = small_feed(n_hosts=1, period=period)
        assert feed.poll_for(30.0) == 300
        assert feed.clock == 300 * period  # bitwise, not approx
        assert feed.missed_cycles == 0

    def test_single_skipped_cycle_records_an_unknown_sample(self):
        # probes take ~12ms; a 10ms period overruns by *less* than one
        # period, skipping exactly one grid point per cycle.  The gap is
        # then under the RRD heartbeat (2.5 x period), so without the
        # explicit NaN record the next probe's value would back-fill the
        # un-probed interval as if it had been measured.
        import math

        period = 0.010
        feed = small_feed(n_hosts=1, period=period)
        feed.poll_for(0.1)
        assert feed.missed_cycles > 0
        series = feed.rrd("star-1-link", "bandwidth").fetch(
            0.0, feed.clock, include_unknown=True)
        known = [ts for ts, v in series if not math.isnan(v)]
        unknown = [ts for ts, v in series if math.isnan(v)]
        assert unknown, "skipped cycles must surface as unknown PDPs"
        assert len(known) <= len(series) - feed.missed_cycles

    def test_overrun_skips_are_excluded_from_poll_for_count(self):
        period = 0.005
        feed = small_feed(n_hosts=1, period=period)
        cycles = feed.poll_for(0.1)
        # performed + skipped cycles account for every grid point up to
        # the clock — nothing is double-counted or lost
        assert (cycles + feed.missed_cycles
                == pytest.approx(feed.clock / period))
        assert 0 < cycles < 0.1 / period


class TestCalibrator:
    def test_cold_then_warm(self):
        feed = small_feed()
        calibrator = LinkCalibrator.for_feed(feed)
        cold = calibrator.estimates(feed.clock)
        assert all(not e.ready for e in cold)
        assert all(e.bandwidth is None and e.rtt is None for e in cold)
        feed.poll_once()
        warm = calibrator.estimates(feed.clock)
        assert all(e.ready for e in warm)
        assert all(e.bandwidth > 0 and e.rtt > 0 for e in warm)

    def test_samples_consumed_exactly_once(self):
        feed = small_feed()
        calibrator = LinkCalibrator.for_feed(feed)
        feed.poll_once()
        calibrator.estimates(feed.clock)
        assert calibrator.observations("star-1-link") == 1
        calibrator.estimates(feed.clock)  # no new samples
        assert calibrator.observations("star-1-link") == 1
        feed.poll_once()
        calibrator.estimates(feed.clock)
        assert calibrator.observations("star-1-link") == 2

    def test_unknown_link_rejected(self):
        feed = small_feed()
        calibrator = LinkCalibrator.for_feed(feed)
        with pytest.raises(MetrologyError):
            calibrator.estimate("nope-link", feed.clock)


class TestRecalibrationLoop:
    def test_unknown_platform_link_fails_fast(self):
        feed = small_feed(n_hosts=2)
        platform = build_star_cluster("other", 2)
        with pytest.raises(Exception):
            RecalibrationLoop(platform, feed)

    def test_first_estimates_anchor_without_mutation(self):
        feed = small_feed()
        platform = build_star_cluster("star", 2)
        loop = RecalibrationLoop(platform, feed, min_observations=1)
        before = link_epoch()
        loop.step()
        assert link_epoch() == before  # anchoring only
        assert loop.nominal("star-1-link") is not None
        assert platform.link("star-1-link").bandwidth == pytest.approx(1.25e8)

    def test_min_observations_delays_anchoring(self):
        feed = small_feed()
        platform = build_star_cluster("star", 2)
        loop = RecalibrationLoop(platform, feed, min_observations=3)
        loop.step()
        loop.step()
        assert loop.nominal("star-1-link") is None
        loop.step()
        assert loop.nominal("star-1-link") is not None

    def test_degradation_recalibrates_and_bumps_epoch(self):
        demo = StarMetrologyDemo(n_hosts=2, period=15.0, seed=3,
                                 degrade_factor=0.25)
        demo.warmup(4)
        before = link_epoch()
        demo.run(8)
        assert link_epoch() > before
        recalibrated = demo.platform.link(demo.degraded_link).bandwidth
        static = demo.static_platform.link(demo.degraded_link).bandwidth
        assert static == pytest.approx(1.25e8)
        # tracks the true degraded capacity within probe tolerance
        assert recalibrated == pytest.approx(0.25 * 1.25e8, rel=0.25)

    def test_hysteresis_skips_noise(self):
        demo = StarMetrologyDemo(n_hosts=2, period=15.0, seed=3,
                                 min_rel_change=0.2)
        demo.warmup(4)
        healthy = [m.link for m in demo.feed.monitors
                   if m.link != demo.degraded_link]
        demo.run(6)
        for link in healthy:
            assert demo.platform.link(link).bandwidth == pytest.approx(1.25e8)
        assert demo.loop.stats.updates_skipped > 0


class TestDemoValidation:
    def test_single_host_demo_rejected(self):
        with pytest.raises(MetrologyError, match=">= 2 hosts"):
            StarMetrologyDemo(n_hosts=1)


class TestCapacitySchedule:
    def test_events_fire_in_order_and_track_factor(self):
        testbed = build_star_testbed(2)
        schedule = CapacitySchedule(testbed, [
            CapacityEvent(20.0, "star-1-link", 0.5),
            CapacityEvent(10.0, "star-1-link", 0.8),
        ])
        assert schedule.advance(5.0) == []
        fired = schedule.advance(15.0)
        assert [e.factor for e in fired] == [0.8]
        assert schedule.true_factor("star-1-link") == pytest.approx(0.8)
        schedule.advance(25.0)
        assert schedule.true_factor("star-1-link") == pytest.approx(0.5)

    def test_unknown_link_rejected(self):
        testbed = build_star_testbed(2)
        with pytest.raises(MetrologyError):
            CapacitySchedule(testbed, [CapacityEvent(1.0, "nope", 0.5)])
