"""Span-aware fetch: fetch_spans() and its consistency with fetch()."""

import math

import pytest

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase, RrdError
from repro.rrd.rra import ConsolidationFunction, RraSpec


def build_rrd(rras, step=1.0):
    return RoundRobinDatabase(DataSourceSpec(name="m"), step=step, rras=rras)


def fill(rrd, n, value=lambda i: float(i)):
    for i in range(1, n + 1):
        rrd.update(i * rrd.step, value(i))


class TestFetchSpans:
    def test_fine_only_spans_cover_one_step_each(self):
        rrd = build_rrd((RraSpec(ConsolidationFunction.AVERAGE, 1, 100),))
        fill(rrd, 10)
        spans = rrd.fetch_spans(0.0, 10.0)
        assert len(spans) == 10
        for start, end, _ in spans:
            assert end - start == pytest.approx(rrd.step)

    def test_fetch_is_exactly_the_span_ends(self):
        rrd = build_rrd((
            RraSpec(ConsolidationFunction.AVERAGE, 1, 4),
            RraSpec(ConsolidationFunction.AVERAGE, 6, 100),
        ))
        fill(rrd, 30)
        spans = rrd.fetch_spans(0.0, 30.0)
        fetched = rrd.fetch(0.0, 30.0, include_unknown=True)
        assert sorted(fetched) == sorted(
            (end, value) for _, end, value in spans
        )

    def test_spans_are_time_ordered_and_disjoint(self):
        rrd = build_rrd((
            RraSpec(ConsolidationFunction.AVERAGE, 1, 4),
            RraSpec(ConsolidationFunction.AVERAGE, 6, 100),
        ))
        fill(rrd, 30)
        spans = rrd.fetch_spans(0.0, 30.0)
        for (s1, e1, _), (s2, e2, _) in zip(spans, spans[1:]):
            assert e1 <= e2
            assert s2 >= e1 - 1e-9  # no overlap: each instant served once

    def test_coarse_span_weight_reflects_consolidated_steps(self):
        rrd = build_rrd((
            RraSpec(ConsolidationFunction.AVERAGE, 1, 4),
            RraSpec(ConsolidationFunction.AVERAGE, 6, 100),
        ))
        fill(rrd, 30)
        spans = rrd.fetch_spans(0.0, 30.0)
        widths = {round((end - start) / rrd.step) for start, end, _ in spans}
        assert 6 in widths  # full coarse CDPs survive where fine aged out
        assert 1 in widths  # fine resolution for the recent window

    def test_partially_covered_coarse_span_is_clipped(self):
        # the boundary-drop regression shape: (AVG,1,4) + (AVG,6,100) —
        # the coarse CDP overlapping the fine window must be returned only
        # for its uncovered early part
        rrd = build_rrd((
            RraSpec(ConsolidationFunction.AVERAGE, 1, 4),
            RraSpec(ConsolidationFunction.AVERAGE, 6, 100),
        ))
        fill(rrd, 30)
        spans = rrd.fetch_spans(0.0, 30.0)
        partial = [s for s in spans
                   if 1e-9 < round((s[1] - s[0]) / rrd.step) not in (1, 6)]
        for start, end, _ in partial:
            assert 1 <= round((end - start) / rrd.step) < 6

    def test_rejects_inverted_window(self):
        rrd = build_rrd((RraSpec(ConsolidationFunction.AVERAGE, 1, 10),))
        with pytest.raises(RrdError):
            rrd.fetch_spans(5.0, 1.0)

    def test_unknown_values_keep_their_spans(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=2.0), step=1.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 100),),
        )
        rrd.update(1.0, 1.0)
        rrd.update(10.0, 2.0)  # gap > heartbeat: unknown PDPs in between
        spans = rrd.fetch_spans(0.0, 10.0)
        assert any(math.isnan(value) for _, _, value in spans)
        known = rrd.fetch(0.0, 10.0)
        assert all(not math.isnan(v) for _, v in known)
