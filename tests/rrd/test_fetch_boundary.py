"""Regression: fetch must not drop history at the fine/coarse boundary.

The historical ``fetch`` deduplicated archives by exact end-timestamp: a
coarse CDP whose end collided with a fine point was suppressed even when it
was the *only* source for the earlier part of its span.  With step=10 and
RRAs (AVG,1,4)+(AVG,6,100), after 12 updates the fine archive retains CDPs
ending at 90..120 and the coarse archive CDPs ending at 60 and 120; the
coarse CDP at 120 spans (60, 120] but used to vanish behind the fine point
at 120, so fetch(0, 120) returned ts 60, 90, 100, 110, 120 and the 60–90
span had no data at all.  The span-aware merge keeps the coarse CDP for its
uncovered part, surfacing it at the uncovered sub-interval's end (ts 80).
"""

import math

import pytest

from repro.rrd.database import (
    DataSourceSpec,
    RoundRobinDatabase,
    _merge_intervals,
    _subtract_intervals,
)
from repro.rrd.rra import ConsolidationFunction, RraSpec


def boundary_rrd():
    return RoundRobinDatabase(
        DataSourceSpec(name="m", heartbeat=25.0),
        step=10.0,
        rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 4),
              RraSpec(ConsolidationFunction.AVERAGE, 6, 100)),
    )


class TestBoundaryDropRegression:
    def test_issue_repro_keeps_partially_covered_coarse_cdp(self):
        rrd = boundary_rrd()
        for i in range(1, 13):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(0.0, 120.0)
        timestamps = [ts for ts, _ in series]
        # pre-fix output was [60, 90, 100, 110, 120]: the coarse CDP ending
        # at 120 (sole source for the 60–80 span) was suppressed
        assert timestamps == [60.0, 80.0, 90.0, 100.0, 110.0, 120.0]
        by_ts = dict(series)
        assert by_ts[60.0] == pytest.approx(3.5)   # avg of PDPs 1..6
        assert by_ts[80.0] == pytest.approx(9.5)   # coarse avg of PDPs 7..12
        assert by_ts[90.0] == pytest.approx(9.0)   # fine archive takes over
        assert by_ts[120.0] == pytest.approx(12.0)

    def test_no_span_gap_across_the_archive_boundary(self):
        rrd = boundary_rrd()
        for i in range(1, 13):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(0.0, 120.0)
        # every returned point (ts, v) at resolution r covers (ts - r, ts];
        # stitched together the spans must tile (0, 120] without a hole
        prev_end = 0.0
        for ts, _ in series:
            assert ts - prev_end <= 60.0 + 1e-9  # never wider than one CDP
            prev_end = max(prev_end, ts)
        assert prev_end == pytest.approx(120.0)

    def test_fully_covered_coarse_cdp_still_suppressed(self):
        # fine archive retains the whole window: coarse CDPs add nothing
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=25.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 100),
                  RraSpec(ConsolidationFunction.AVERAGE, 6, 100)),
        )
        for i in range(1, 13):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(0.0, 120.0)
        assert [ts for ts, _ in series] == [10.0 * i for i in range(1, 13)]
        assert [v for _, v in series] == [float(i) for i in range(1, 13)]

    def test_three_archive_stitch_has_no_holes(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=25.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 6),
                  RraSpec(ConsolidationFunction.AVERAGE, 3, 10),
                  RraSpec(ConsolidationFunction.AVERAGE, 12, 100)),
        )
        for i in range(1, 61):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(0.0, 600.0)
        resolutions = (10.0, 30.0, 120.0)
        prev_end = 0.0
        for ts, _ in series:
            assert ts - prev_end <= max(resolutions) + 1e-9
            prev_end = max(prev_end, ts)
        assert prev_end == pytest.approx(600.0)
        # timestamps strictly increase (the merge never emits duplicates)
        timestamps = [ts for ts, _ in series]
        assert timestamps == sorted(set(timestamps))


class TestIntervalHelpers:
    def test_merge_joins_touching_intervals(self):
        assert _merge_intervals([(0.0, 10.0), (10.0, 20.0), (30.0, 40.0)],
                                1e-9) == [(0.0, 20.0), (30.0, 40.0)]

    def test_subtract_middle_hole(self):
        assert _subtract_intervals((0.0, 60.0), [(20.0, 40.0)], 1e-9) == [
            (0.0, 20.0), (40.0, 60.0)]

    def test_subtract_fully_covered(self):
        assert _subtract_intervals((20.0, 40.0), [(0.0, 60.0)], 1e-9) == []

    def test_subtract_drops_sub_tolerance_fragments(self):
        out = _subtract_intervals((0.0, 10.0), [(5e-10, 10.0)], 1e-9)
        assert out == []


class TestFetchEdgeCases:
    def test_begin_equals_end_is_empty(self):
        rrd = boundary_rrd()
        for i in range(1, 13):
            rrd.update(i * 10.0, float(i))
        assert rrd.fetch(60.0, 60.0) == []
        assert rrd.fetch(60.0, 60.0, include_unknown=True) == []

    def test_all_unknown_window(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=15.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 50),),
        )
        rrd.update(10.0, 1.0)
        rrd.update(100.0, 1.0)  # 90 s gap > heartbeat: PDPs 20..100 unknown
        assert rrd.fetch(20.0, 90.0) == []
        unknown = rrd.fetch(20.0, 90.0, include_unknown=True)
        assert len(unknown) == 7
        assert all(math.isnan(v) for _, v in unknown)

    def test_counter_wrap_spans_unknown_across_boundary(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="bytes", kind="COUNTER", heartbeat=25.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 4, xff=0.0),
                  RraSpec(ConsolidationFunction.AVERAGE, 6, 100, xff=0.0)),
        )
        counter = 0.0
        for i in range(1, 7):
            counter += 1000.0
            rrd.update(i * 10.0, counter)
        rrd.update(70.0, 100.0)  # wrap: the (60, 70] PDP is unknown
        counter = 100.0
        for i in range(8, 13):
            counter += 1000.0
            rrd.update(i * 10.0, counter)
        series = rrd.fetch(0.0, 120.0, include_unknown=True)
        by_ts = dict(series)
        # the wrap poisons the coarse CDP covering (60, 120] (xff=0), which
        # the span-aware merge surfaces for the fine-aged part at ts 80;
        # the first counter sample likewise poisons the CDP ending at 60
        assert math.isnan(by_ts[80.0])
        assert math.isnan(by_ts[60.0])
        known = rrd.fetch(0.0, 120.0)
        assert [ts for ts, _ in known] == [90.0, 100.0, 110.0, 120.0]
        assert all(v == pytest.approx(100.0) for _, v in known)
