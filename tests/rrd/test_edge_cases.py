"""RRD edge cases: consolidation selection, windows, boundaries."""

import math

import pytest

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase
from repro.rrd.rra import ConsolidationFunction, RraSpec


def multi_cf_rrd():
    return RoundRobinDatabase(
        DataSourceSpec(name="m", heartbeat=30.0),
        step=10.0,
        rras=(
            RraSpec(ConsolidationFunction.AVERAGE, 2, 50),
            RraSpec(ConsolidationFunction.MIN, 2, 50),
            RraSpec(ConsolidationFunction.MAX, 2, 50),
            RraSpec(ConsolidationFunction.LAST, 2, 50),
        ),
    )


class TestConsolidationSelection:
    def fill(self, rrd):
        values = [5.0, 1.0, 9.0, 3.0]
        for i, v in enumerate(values, start=1):
            rrd.update(i * 10.0, v)
        return values

    def test_min_max_last_fetchable(self):
        rrd = multi_cf_rrd()
        self.fill(rrd)
        avg = rrd.fetch(0.0, 40.0, cf=ConsolidationFunction.AVERAGE)
        mn = rrd.fetch(0.0, 40.0, cf=ConsolidationFunction.MIN)
        mx = rrd.fetch(0.0, 40.0, cf=ConsolidationFunction.MAX)
        last = rrd.fetch(0.0, 40.0, cf=ConsolidationFunction.LAST)
        assert [v for _, v in avg] == [pytest.approx(3.0), pytest.approx(6.0)]
        assert [v for _, v in mn] == [1.0, 3.0]
        assert [v for _, v in mx] == [5.0, 9.0]
        assert [v for _, v in last] == [1.0, 3.0]

    def test_cf_ordering_invariant(self):
        rrd = multi_cf_rrd()
        self.fill(rrd)
        for (t1, lo), (t2, hi), (t3, avg) in zip(
            rrd.fetch(0, 40, cf=ConsolidationFunction.MIN),
            rrd.fetch(0, 40, cf=ConsolidationFunction.MAX),
            rrd.fetch(0, 40, cf=ConsolidationFunction.AVERAGE),
        ):
            assert t1 == t2 == t3
            assert lo <= avg <= hi


class TestBoundaries:
    def test_update_exactly_on_step_boundary(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=30.0), step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 20),),
        )
        rrd.update(10.0, 4.0)
        rrd.update(20.0, 8.0)
        series = rrd.fetch(0.0, 20.0)
        assert series == [(10.0, pytest.approx(4.0)), (20.0, pytest.approx(8.0))]

    def test_sub_step_updates_average_within_pdp(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=30.0), step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 20),),
        )
        rrd.update(2.0, 10.0)
        rrd.update(4.0, 20.0)
        rrd.update(10.0, 40.0)
        series = rrd.fetch(0.0, 10.0)
        # time-weighted: 10*2 + 20*2 + 40*6 over 10 s
        assert series[0][1] == pytest.approx((20 + 40 + 240) / 10.0)

    def test_fetch_window_larger_than_retention(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="m", heartbeat=30.0), step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 5),),
        )
        for i in range(1, 21):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(0.0, 1e9)
        assert len(series) == 5  # only the retained rows
        assert [v for _, v in series] == [16.0, 17.0, 18.0, 19.0, 20.0]

    def test_empty_fetch_before_any_update(self):
        rrd = multi_cf_rrd()
        assert rrd.fetch(0.0, 100.0) == []
