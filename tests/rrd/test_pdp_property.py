"""Property tests: PDP accumulation vs a brute-force reference.

``RoundRobinDatabase._fill`` spreads each sample over the PDP grid with
running float accumulators and a boundary tolerance; drift there would
silently corrupt every archive.  The reference below recomputes each PDP
from the raw ``(timestamp, value)`` stream by exact interval overlap, and
the property drives both with seeded irregular timestamp streams (sub-step
bursts, multi-step jumps, heartbeat gaps, long runs).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase
from repro.rrd.rra import ConsolidationFunction, RraSpec

STEP = 10.0
HEARTBEAT = 35.0


def reference_pdps(samples, step, heartbeat, n_pdps):
    """Brute-force PDPs for a GAUGE stream starting at t=0.

    Each sample ``(t_i, v_i)`` covers ``(t_{i-1}, t_i]`` with ``v_i`` (NaN
    when the gap exceeds the heartbeat); PDP ``k`` averages the covering
    values over ``(k*step, (k+1)*step]`` weighted by overlap seconds, and is
    unknown when less than half the interval is known.
    """
    pdps = []
    for k in range(n_pdps):
        lo, hi = k * step, (k + 1) * step
        known_seconds = 0.0
        weighted = 0.0
        prev_t = 0.0
        for t, v in samples:
            seg_lo, seg_hi = max(lo, prev_t), min(hi, t)
            if seg_hi > seg_lo and not math.isnan(v) and t - prev_t <= heartbeat:
                known_seconds += seg_hi - seg_lo
                weighted += v * (seg_hi - seg_lo)
            prev_t = t
        if known_seconds >= step * 0.5:
            pdps.append(weighted / known_seconds)
        else:
            pdps.append(math.nan)
    return pdps


def fine_rrd():
    return RoundRobinDatabase(
        DataSourceSpec(name="m", heartbeat=HEARTBEAT),
        step=STEP,
        rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 4096, xff=0.0),),
    )


increments = st.lists(
    st.one_of(
        st.floats(0.3, 9.7),     # sub-step bursts
        st.floats(10.0, 34.0),   # one-to-three step jumps within heartbeat
        st.floats(36.0, 80.0),   # heartbeat gaps
    ),
    min_size=5,
    max_size=120,
)
values = st.floats(0.1, 1e6)


@given(increments=increments, data=st.data())
@settings(max_examples=60, deadline=None)
def test_pdp_accumulation_matches_brute_force(increments, data):
    rrd = fine_rrd()
    samples = []
    t = 0.0
    for dt in increments:
        t += dt
        v = data.draw(values)
        samples.append((t, v))
        rrd.update(t, v)
    n_pdps = int(math.floor(t / STEP))
    expected = reference_pdps(samples, STEP, HEARTBEAT, n_pdps)
    got = dict(rrd.fetch(0.0, n_pdps * STEP, include_unknown=True))
    assert len(got) == n_pdps
    for k, ref in enumerate(expected):
        ts = (k + 1) * STEP
        actual = got[ts]
        if math.isnan(ref):
            assert math.isnan(actual), f"PDP ending {ts}: {actual} != NaN"
        else:
            assert actual == pytest.approx(ref, rel=1e-9, abs=1e-12), (
                f"PDP ending {ts}: {actual} != {ref}"
            )


@given(increments=increments)
@settings(max_examples=30, deadline=None)
def test_long_runs_commit_every_boundary_exactly_once(increments):
    # Scale the stream up to a long run: the boundary tolerance must not
    # skip or double-commit PDPs as float drift accumulates.
    rrd = fine_rrd()
    t = 0.0
    for _ in range(8):
        for dt in increments:
            t += dt
            rrd.update(t, 1.0)
    n_pdps = int(math.floor(t / STEP))
    series = rrd.fetch(0.0, n_pdps * STEP, include_unknown=True)
    timestamps = [ts for ts, _ in series]
    assert timestamps == [(k + 1) * STEP for k in range(n_pdps)]
    for _, v in series:
        assert math.isnan(v) or v == pytest.approx(1.0)
