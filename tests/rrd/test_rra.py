"""Round-robin archives: consolidation, xff, windows."""

import math

import pytest

from repro.rrd.rra import ConsolidationFunction, RoundRobinArchive, RraSpec


class TestConsolidation:
    def test_average(self):
        cf = ConsolidationFunction.AVERAGE
        assert cf.consolidate([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_min_max_last(self):
        values = [3.0, 1.0, 2.0]
        assert ConsolidationFunction.MIN.consolidate(values) == 1.0
        assert ConsolidationFunction.MAX.consolidate(values) == 3.0
        assert ConsolidationFunction.LAST.consolidate(values) == 2.0

    def test_nan_values_skipped(self):
        cf = ConsolidationFunction.AVERAGE
        assert cf.consolidate([math.nan, 4.0]) == pytest.approx(4.0)

    def test_all_nan_is_nan(self):
        assert math.isnan(ConsolidationFunction.MAX.consolidate([math.nan]))


class TestRraSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RraSpec(ConsolidationFunction.AVERAGE, 0, 10)
        with pytest.raises(ValueError):
            RraSpec(ConsolidationFunction.AVERAGE, 1, 0)
        with pytest.raises(ValueError):
            RraSpec(ConsolidationFunction.AVERAGE, 1, 10, xff=1.0)

    def test_resolution_and_retention(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 12, 100)
        assert spec.resolution(15.0) == 180.0
        assert spec.retention(15.0) == 18000.0


class TestArchive:
    def test_one_step_archive_stores_pdps(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 1, 10)
        archive = RoundRobinArchive(spec, base_step=10.0)
        for i in range(1, 6):
            archive.push_pdp(i * 10.0, float(i))
        window = archive.window(0.0, 50.0)
        assert [v for _, v in window] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_consolidation_over_steps(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 2, 10, xff=0.5)
        archive = RoundRobinArchive(spec, base_step=10.0)
        archive.push_pdp(10.0, 1.0)
        archive.push_pdp(20.0, 3.0)
        window = archive.window(0.0, 20.0)
        assert window == [(20.0, 2.0)]

    def test_xff_marks_unknown(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 4, 10, xff=0.25)
        archive = RoundRobinArchive(spec, base_step=10.0)
        archive.push_pdp(10.0, 1.0)
        archive.push_pdp(20.0, math.nan)
        archive.push_pdp(30.0, math.nan)
        archive.push_pdp(40.0, 2.0)
        window = archive.window(0.0, 40.0)
        assert len(window) == 1
        assert math.isnan(window[0][1])

    def test_xff_allows_some_unknown(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 4, 10, xff=0.5)
        archive = RoundRobinArchive(spec, base_step=10.0)
        archive.push_pdp(10.0, 1.0)
        archive.push_pdp(20.0, math.nan)
        archive.push_pdp(30.0, 3.0)
        archive.push_pdp(40.0, 2.0)
        window = archive.window(0.0, 40.0)
        assert window[0][1] == pytest.approx(2.0)

    def test_ring_overwrites_old_rows(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 1, 3)
        archive = RoundRobinArchive(spec, base_step=10.0)
        for i in range(1, 7):
            archive.push_pdp(i * 10.0, float(i))
        window = archive.window(0.0, 60.0)
        assert [v for _, v in window] == [4.0, 5.0, 6.0]

    def test_covers(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 1, 3)
        archive = RoundRobinArchive(spec, base_step=10.0)
        assert not archive.covers(10.0)
        for i in range(1, 7):
            archive.push_pdp(i * 10.0, float(i))
        assert archive.covers(50.0)
        assert not archive.covers(10.0)

    def test_window_bounds_are_exclusive_inclusive(self):
        spec = RraSpec(ConsolidationFunction.AVERAGE, 1, 10)
        archive = RoundRobinArchive(spec, base_step=10.0)
        for i in range(1, 5):
            archive.push_pdp(i * 10.0, float(i))
        window = archive.window(10.0, 30.0)
        assert [ts for ts, _ in window] == [20.0, 30.0]
