"""RRD database: update semantics, data-source kinds, fetch."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rrd.database import (
    DEFAULT_RRAS,
    DataSourceSpec,
    RoundRobinDatabase,
    RrdError,
)
from repro.rrd.rra import ConsolidationFunction, RraSpec


def gauge_rrd(step=10.0, heartbeat=25.0):
    return RoundRobinDatabase(
        DataSourceSpec(name="metric", kind="GAUGE", heartbeat=heartbeat),
        step=step,
        rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 100),
              RraSpec(ConsolidationFunction.AVERAGE, 10, 100),
              RraSpec(ConsolidationFunction.MAX, 10, 100)),
    )


class TestValidation:
    def test_ds_kind_checked(self):
        with pytest.raises(RrdError):
            DataSourceSpec(name="x", kind="ABSOLUTE")

    def test_heartbeat_positive(self):
        with pytest.raises(RrdError):
            DataSourceSpec(name="x", heartbeat=0.0)

    def test_step_positive(self):
        with pytest.raises(RrdError):
            RoundRobinDatabase(DataSourceSpec(name="x"), step=0.0)

    def test_needs_an_archive(self):
        with pytest.raises(RrdError):
            RoundRobinDatabase(DataSourceSpec(name="x"), rras=())

    def test_update_times_strictly_increasing(self):
        rrd = gauge_rrd()
        rrd.update(10.0, 1.0)
        with pytest.raises(RrdError):
            rrd.update(10.0, 2.0)

    def test_fetch_end_before_begin(self):
        rrd = gauge_rrd()
        with pytest.raises(RrdError):
            rrd.fetch(100.0, 50.0)

    def test_fetch_unknown_cf(self):
        rrd = gauge_rrd()
        with pytest.raises(RrdError):
            rrd.fetch(0.0, 10.0, cf=ConsolidationFunction.LAST)


class TestGauge:
    def test_constant_series(self):
        rrd = gauge_rrd()
        for i in range(1, 11):
            rrd.update(i * 10.0, 42.0)
        values = [v for _, v in rrd.fetch(0.0, 100.0)]
        assert values and all(v == pytest.approx(42.0) for v in values)

    def test_step_interpolation_weights_by_time(self):
        rrd = gauge_rrd(step=10.0)
        rrd.update(5.0, 10.0)   # covers (0,5]
        rrd.update(15.0, 20.0)  # covers (5,15] — pdp(0,10] = (10*5+20*5)/10
        series = rrd.fetch(0.0, 10.0)
        assert series[0][1] == pytest.approx(15.0)

    def test_heartbeat_gap_is_unknown(self):
        rrd = gauge_rrd(step=10.0, heartbeat=25.0)
        rrd.update(10.0, 1.0)
        rrd.update(100.0, 1.0)  # 90s gap > heartbeat
        series = rrd.fetch(0.0, 100.0, include_unknown=True)
        gap_values = [v for ts, v in series if 20.0 < ts < 100.0]
        assert gap_values and all(math.isnan(v) for v in gap_values)

    def test_out_of_range_value_is_unknown(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="pct", minimum=0.0, maximum=100.0, heartbeat=30.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 50),),
        )
        for i in range(1, 4):
            rrd.update(i * 10.0, 50.0)
        rrd.update(40.0, 1000.0)  # above maximum
        series = rrd.fetch(0.0, 40.0, include_unknown=True)
        assert math.isnan(series[-1][1])


class TestCounter:
    def test_counter_returns_rate(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="bytes", kind="COUNTER", heartbeat=30.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 50),),
        )
        counter = 0.0
        for i in range(1, 6):
            counter += 1000.0  # +1000 per 10s => 100/s
            rrd.update(i * 10.0, counter)
        values = [v for _, v in rrd.fetch(10.0, 50.0)]
        assert values and all(v == pytest.approx(100.0) for v in values)

    def test_counter_wrap_is_unknown(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="bytes", kind="COUNTER", heartbeat=30.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 50),),
        )
        rrd.update(10.0, 1000.0)
        rrd.update(20.0, 2000.0)
        rrd.update(30.0, 50.0)  # wrapped
        series = rrd.fetch(20.0, 30.0, include_unknown=True)
        assert math.isnan(series[-1][1])

    def test_derive_allows_negative_rate(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="temp", kind="DERIVE", heartbeat=30.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 50),),
        )
        rrd.update(10.0, 100.0)
        rrd.update(20.0, 50.0)
        series = rrd.fetch(10.0, 20.0)
        assert series[-1][1] == pytest.approx(-5.0)


class TestFetch:
    def test_best_resolution_first(self):
        rrd = gauge_rrd(step=10.0)
        for i in range(1, 201):
            rrd.update(i * 10.0, float(i))
        # recent window covered by the fine archive: 10s spacing
        series = rrd.fetch(1900.0, 2000.0)
        spacings = {round(b - a, 6) for (a, _), (b, _) in zip(series, series[1:])}
        assert spacings == {10.0}

    def test_old_history_served_by_coarse_archive(self):
        rrd = gauge_rrd(step=10.0)
        for i in range(1, 201):
            rrd.update(i * 10.0, float(i))
        # the fine archive holds 100 rows = 1000s; ask for older data
        series = rrd.fetch(0.0, 500.0)
        assert series, "coarse archive must cover old history"
        spacings = {round(b - a, 6) for (a, _), (b, _) in zip(series, series[1:])}
        assert spacings == {100.0}

    def test_mixed_window_stitches_resolutions(self):
        rrd = gauge_rrd(step=10.0)
        for i in range(1, 201):
            rrd.update(i * 10.0, float(i))
        series = rrd.fetch(500.0, 2000.0)
        spacings = sorted({round(b - a, 6) for (a, _), (b, _) in
                           zip(series, series[1:])})
        assert 10.0 in spacings and 100.0 in spacings

    def test_describe_structure(self):
        rrd = gauge_rrd()
        info = rrd.describe()
        assert info["ds"]["name"] == "metric"
        assert len(info["rras"]) == 3
        assert info["rras"][0]["resolution"] == 10.0

    @given(st.lists(st.floats(0.1, 1000.0), min_size=5, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_fetch_values_within_input_range(self, values):
        rrd = gauge_rrd(step=10.0, heartbeat=25.0)
        for i, value in enumerate(values, start=1):
            rrd.update(i * 10.0, value)
        series = rrd.fetch(0.0, (len(values) + 1) * 10.0)
        lo, hi = min(values), max(values)
        for _, v in series:
            assert lo - 1e-9 <= v <= hi + 1e-9
