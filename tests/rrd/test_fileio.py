"""RRD persistence round-trips."""

import math

import pytest

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase, RrdError
from repro.rrd.fileio import load_rrd, rrd_from_dict, rrd_to_dict, save_rrd
from repro.rrd.rra import ConsolidationFunction, RraSpec


def sample_rrd():
    rrd = RoundRobinDatabase(
        DataSourceSpec(name="pdu", kind="GAUGE", heartbeat=40.0),
        step=15.0,
        rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 60),
              RraSpec(ConsolidationFunction.MAX, 4, 60)),
    )
    for i in range(1, 41):
        rrd.update(i * 15.0, 168.0 + (i % 5))
    return rrd


class TestRoundTrip:
    def test_fetch_identical_after_roundtrip(self):
        rrd = sample_rrd()
        clone = rrd_from_dict(rrd_to_dict(rrd))
        assert clone.fetch(0.0, 600.0) == rrd.fetch(0.0, 600.0)

    def test_updates_continue_after_reload(self):
        rrd = sample_rrd()
        clone = rrd_from_dict(rrd_to_dict(rrd))
        rrd.update(615.0, 170.0)
        clone.update(615.0, 170.0)
        assert clone.fetch(500.0, 620.0) == rrd.fetch(500.0, 620.0)

    def test_nan_encoded_as_null(self):
        rrd = sample_rrd()
        rrd.update(700.0, 170.0)  # gap > heartbeat -> unknown PDPs
        data = rrd_to_dict(rrd)
        import json

        text = json.dumps(data)  # must not raise on NaN
        clone = rrd_from_dict(json.loads(text))
        original = rrd.fetch(0.0, 700.0, include_unknown=True)
        restored = clone.fetch(0.0, 700.0, include_unknown=True)
        assert len(original) == len(restored)
        for (t1, v1), (t2, v2) in zip(original, restored):
            assert t1 == t2
            assert (math.isnan(v1) and math.isnan(v2)) or v1 == v2

    def test_save_load_file(self, tmp_path):
        rrd = sample_rrd()
        path = tmp_path / "pdu.rrd.json"
        save_rrd(rrd, str(path))
        clone = load_rrd(str(path))
        assert clone.fetch(0.0, 600.0) == rrd.fetch(0.0, 600.0)

    def test_unsupported_format_rejected(self):
        data = rrd_to_dict(sample_rrd())
        data["format"] = 99
        with pytest.raises(RrdError):
            rrd_from_dict(data)

    def test_counter_state_preserved(self):
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="ctr", kind="COUNTER", heartbeat=30.0),
            step=10.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, 30),),
        )
        rrd.update(10.0, 1000.0)
        clone = rrd_from_dict(rrd_to_dict(rrd))
        rrd.update(20.0, 2000.0)
        clone.update(20.0, 2000.0)
        assert clone.fetch(10.0, 20.0) == rrd.fetch(10.0, 20.0)
