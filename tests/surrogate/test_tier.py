"""SurrogateTier contract: gated answers, bit-identical fallback, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forecast import NetworkForecastService
from repro.scenarios.spec import TopologySpec
from repro.scenarios.topologies import build_topology
from repro.serving.service import ForecastServingService
from repro.simgrid.models import CM02
from repro.surrogate import (
    SurrogateModel,
    SurrogateSweep,
    SurrogateTier,
    run_sweep,
)

PLATFORM = "tier-star"
N_HOSTS = 8


@pytest.fixture(scope="module")
def trained_model() -> SurrogateModel:
    sweep = SurrogateSweep(samples=12, seed=21,
                           topologies=(("star", {"n_hosts": N_HOSTS}),),
                           sizes=(1e6, 2e7, 1e8))
    return SurrogateModel.train(run_sweep(sweep))


@pytest.fixture()
def service() -> NetworkForecastService:
    platform = build_topology(TopologySpec("star", {"n_hosts": N_HOSTS}))
    return NetworkForecastService({PLATFORM: platform})


def request(n: int = 3, size: float = 4e7):
    return tuple((f"star-{i + 1}", f"star-{i + 2}", size) for i in range(n))


class TestAnswerGates:
    def test_confident_request_is_answered(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.6)
        answer = tier.try_answer(service, PLATFORM, service.model, request())
        assert answer is not None
        assert tier.stats()["hits"] == 1
        truth = service.predict_transfers(PLATFORM, list(request()))
        for got, expected in zip(answer, truth):
            assert (got.src, got.dst, got.size) == \
                (expected.src, expected.dst, expected.size)
            assert abs(np.log2(got.duration / expected.duration)) < 1.0

    def test_zero_bound_forces_uncertainty_fallback(self, trained_model,
                                                    service):
        tier = SurrogateTier(trained_model, bound=0.0)
        assert tier.try_answer(service, PLATFORM, service.model,
                               request()) is None
        assert tier.stats()["fallbacks"]["uncertainty"] == 1

    def test_unfitted_model_falls_back(self, service):
        tier = SurrogateTier(SurrogateModel(), bound=0.5)
        assert tier.try_answer(service, PLATFORM, service.model,
                               request()) is None
        assert tier.stats()["fallbacks"]["unfitted"] == 1

    def test_full_resolve_falls_back(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.6)
        assert tier.try_answer(service, PLATFORM, service.model, request(),
                               full_resolve=True) is None
        assert tier.stats()["fallbacks"]["full_resolve"] == 1

    def test_model_mismatch_falls_back(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.6)
        assert tier.try_answer(service, PLATFORM, CM02(),
                               request()) is None
        assert tier.stats()["fallbacks"]["model_mismatch"] == 1

    def test_unknown_platform_falls_back_as_error(self, trained_model,
                                                  service):
        tier = SurrogateTier(trained_model, bound=0.6)
        assert tier.try_answer(service, "nope", service.model,
                               request()) is None
        assert tier.stats()["fallbacks"]["error"] == 1

    def test_stale_epoch_falls_back_until_marked_fresh(self, trained_model,
                                                       service):
        tier = SurrogateTier(trained_model, bound=0.6)
        link = service.platform(PLATFORM).links()[0]
        link.bandwidth = link.bandwidth * 0.9
        assert tier.try_answer(service, PLATFORM, service.model,
                               request()) is None
        assert tier.stats()["fallbacks"]["stale_epoch"] == 1
        tier.mark_fresh()
        assert tier.try_answer(service, PLATFORM, service.model,
                               request()) is not None

    def test_relaxed_epoch_policy_keeps_answering(self, trained_model,
                                                  service):
        tier = SurrogateTier(trained_model, bound=0.6,
                             require_fresh_epoch=False)
        link = service.platform(PLATFORM).links()[0]
        link.bandwidth = link.bandwidth * 0.9
        assert tier.try_answer(service, PLATFORM, service.model,
                               request()) is not None

    def test_bound_validation(self, trained_model):
        with pytest.raises(ValueError):
            SurrogateTier(trained_model, bound=-0.1)


class TestServingIntegration:
    def test_served_fallback_is_bit_identical(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.0)  # always fall back
        with ForecastServingService(service, surrogate=tier) as serving:
            answer = serving.predict(PLATFORM, list(request()))
        truth = service.predict_transfers(PLATFORM, list(request()))
        assert [f.duration for f in answer] == [f.duration for f in truth]

    def test_surrogate_answers_are_not_cached(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.6)
        with ForecastServingService(service, surrogate=tier) as serving:
            first = serving.predict(PLATFORM, list(request()))
            assert tier.stats()["hits"] == 1
            # disable the tier: the exact path must see a cold cache and
            # produce the simulation answer, not a replayed approximation
            serving.surrogate = None
            exact = serving.predict(PLATFORM, list(request()))
            cache = serving.cache.info()
        truth = service.predict_transfers(PLATFORM, list(request()))
        assert [f.duration for f in exact] == [f.duration for f in truth]
        assert cache["hits"] == 0 and cache["misses"] == 1
        assert first is not exact

    def test_stats_sections(self, trained_model, service):
        tier = SurrogateTier(trained_model, bound=0.6)
        with ForecastServingService(service, surrogate=tier) as serving:
            serving.predict(PLATFORM, list(request()))
            stats = serving.stats()
        assert stats["surrogate"]["enabled"] is True
        assert stats["surrogate"]["hits"] == 1
        assert stats["surrogate"]["fallbacks_total"] == 0
        assert set(stats["surrogate"]["fallbacks"]) == {
            "unfitted", "model_mismatch", "full_resolve", "stale_epoch",
            "uncertainty", "error"}
        plain = ForecastServingService(service)
        assert plain.stats()["surrogate"] == {"enabled": False}
