"""Tier-1 hook for the surrogate smoke check.

The learned fast path (sweep → train → serialized model → surrogate tier
answering over HTTP with counters, bit-identical fallback and epoch-bump
retraining) must hold end to end — see ``tools/check_surrogate_smoke.py``.
Sub-second and in-process, so it runs on every tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_surrogate_smoke  # noqa: E402


def test_standalone_surrogate_smoke_passes(capsys):
    assert check_surrogate_smoke.main() == 0
    out = capsys.readouterr().out
    assert "surrogate smoke OK" in out
    assert "FAIL" not in out
