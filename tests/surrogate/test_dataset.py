"""Sweep and dataset invariants: determinism, parallel ≡ serial, JSON."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate.dataset import (
    SurrogateDataset,
    SurrogateSweep,
    SweepSample,
    run_sample,
    run_sweep,
)

SMALL = SurrogateSweep(
    samples=6, seed=11,
    topologies=(("star", {"n_hosts": 6}), ("dumbbell", {})),
    sizes=(1e6, 5e7),
)


@pytest.fixture(scope="module")
def dataset() -> SurrogateDataset:
    return run_sweep(SMALL)


class TestSweepSampling:
    def test_sampling_is_deterministic_in_the_seed(self):
        assert SMALL.sample_specs() == SMALL.sample_specs()

    def test_different_seeds_draw_different_sweeps(self):
        other = SurrogateSweep(samples=6, seed=12,
                               topologies=SMALL.topologies,
                               sizes=SMALL.sizes)
        assert SMALL.sample_specs() != other.sample_specs()

    def test_samples_round_trip_through_json(self):
        for sample in SMALL.sample_specs():
            assert SweepSample.from_json(sample.to_json()) == sample

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            SurrogateSweep(samples=0)
        with pytest.raises(ValueError):
            SurrogateSweep(degrade_probability=1.5)

    def test_degraded_samples_carry_link_factors(self):
        always = SurrogateSweep(samples=8, seed=1,
                                topologies=(("star", {"n_hosts": 6}),),
                                degrade_probability=1.0)
        assert all(s.link_factors for s in always.sample_specs())
        never = SurrogateSweep(samples=8, seed=1,
                               topologies=(("star", {"n_hosts": 6}),),
                               degrade_probability=0.0)
        assert all(not s.link_factors for s in never.sample_specs())


class TestRunSweep:
    def test_features_and_targets_are_finite_and_aligned(self, dataset):
        assert len(dataset) > 0
        assert np.isfinite(dataset.features).all()
        assert np.isfinite(dataset.targets).all()
        assert len(dataset.features) == len(dataset.targets) \
            == len(dataset.sample_index)
        assert set(dataset.sample_index) == set(range(len(dataset.samples)))

    def test_rerun_is_bit_identical(self, dataset):
        assert run_sweep(SMALL) == dataset

    def test_parallel_equals_serial_bitwise(self, dataset):
        assert run_sweep(SMALL, workers=2) == dataset

    def test_link_factors_change_the_targets(self):
        base = SweepSample(SMALL.sample_specs()[0].spec)
        degraded = SweepSample(base.spec, link_factors=(("*", 0.4),))
        _, targets = run_sample(base)
        _, degraded_targets = run_sample(degraded)
        assert (degraded_targets > targets).all()

    def test_invalid_link_factor_is_rejected(self):
        bad = SweepSample(SMALL.sample_specs()[0].spec,
                          link_factors=(("*", 1.5),))
        with pytest.raises(ValueError, match="link factor"):
            run_sample(bad)


class TestDatasetContainer:
    def test_json_round_trip_is_equal(self, dataset):
        assert SurrogateDataset.from_json(dataset.to_json()) == dataset

    def test_split_by_sample_is_disjoint_and_complete(self, dataset):
        train, hold = dataset.split_by_sample(0.3, seed=4)
        assert len(train) + len(hold) == len(dataset)
        assert not set(train.sample_index) & set(hold.sample_index)
        assert len(hold) > 0 and len(train) > 0

    def test_split_rejects_degenerate_fractions(self, dataset):
        with pytest.raises(ValueError):
            dataset.split_by_sample(0.0)
        with pytest.raises(ValueError):
            dataset.split_by_sample(0.999)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="features"):
            SurrogateDataset(features=np.zeros((2, 3)),
                             targets=np.zeros(2),
                             sample_index=np.zeros(2, dtype=int))
