"""Retraining hook: loop subscription, stale-region sweeps, tier refresh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.forecast import NetworkForecastService
from repro.metrology.loop import LinkUpdate
from repro.scenarios.spec import TopologySpec
from repro.scenarios.topologies import build_topology
from repro.simgrid.platform import link_epoch
from repro.surrogate import (
    SurrogateModel,
    SurrogateRetrainer,
    SurrogateSweep,
    SurrogateTier,
    run_sweep,
)

PLATFORM = "retrain-star"
N_HOSTS = 6


def update_for(link: str) -> LinkUpdate:
    return LinkUpdate(time=1.0, link=link, bandwidth_before=1e8,
                      bandwidth_after=5e7, latency_before=1e-4,
                      latency_after=1e-4)


@pytest.fixture()
def world():
    platform = build_topology(TopologySpec("star", {"n_hosts": N_HOSTS}))
    sweep = SurrogateSweep(samples=8, seed=31,
                           topologies=(("star", {"n_hosts": N_HOSTS}),),
                           sizes=(1e6, 5e7))
    tier = SurrogateTier(SurrogateModel.train(run_sweep(sweep)), bound=0.6)
    tier.mark_fresh()  # the sweep itself bumped epochs on its own platforms
    return platform, tier


class TestEnqueue:
    def test_on_updates_records_stale_links(self, world):
        platform, tier = world
        retrainer = SurrogateRetrainer(tier, platform, seed=1)
        retrainer.on_updates([update_for("star-1-link"),
                              update_for("star-2-link")])
        stats = retrainer.stats()
        assert stats["enqueued"] == 1
        assert stats["stale_links"] == ["star-1-link", "star-2-link"]
        assert retrainer.pending

    def test_nothing_pending_without_updates(self, world):
        platform, tier = world
        retrainer = SurrogateRetrainer(tier, platform, seed=1)
        assert not retrainer.pending
        assert retrainer.flush() is None

    def test_validation(self, world):
        platform, tier = world
        with pytest.raises(ValueError):
            SurrogateRetrainer(tier, platform, samples_per_refresh=0)


class TestFlush:
    def test_flush_partial_fits_and_marks_fresh(self, world):
        platform, tier = world
        link = platform.links()[0]
        link.bandwidth = link.bandwidth * 0.5  # live recalibration
        retrainer = SurrogateRetrainer(tier, platform,
                                       samples_per_refresh=3, seed=2)
        retrainer.on_updates([update_for(link.name)])
        updates_before = tier.model.updates
        summary = retrainer.flush()
        assert summary is not None
        assert summary["stale_links"] == [link.name]
        assert summary["rows"] > 0
        assert summary["stale_region_samples"] > 0
        assert tier.model.updates == updates_before + 1
        assert tier.trained_epoch == summary["epoch"] == link_epoch()
        assert not retrainer.pending

    def test_flush_restores_answering_and_accuracy(self, world):
        platform, tier = world
        service = NetworkForecastService({PLATFORM: platform})
        req = [("star-1", "star-2", 4e7), ("star-3", "star-4", 4e7)]
        link = platform.link("star-1-link")
        link.bandwidth = link.bandwidth * 0.4
        assert tier.try_answer(service, PLATFORM, service.model,
                               tuple(req)) is None  # stale
        retrainer = SurrogateRetrainer(tier, platform,
                                       samples_per_refresh=4, seed=3)
        retrainer.on_updates([update_for(link.name)])
        retrainer.flush()
        answer = tier.try_answer(service, PLATFORM, service.model,
                                 tuple(req))
        assert answer is not None
        truth = service.predict_transfers(PLATFORM, req)
        for got, expected in zip(answer, truth):
            assert abs(np.log2(got.duration / expected.duration)) < 1.0

    def test_force_flush_without_pending_work(self, world):
        platform, tier = world
        retrainer = SurrogateRetrainer(tier, platform,
                                       samples_per_refresh=2, seed=4)
        summary = retrainer.flush(force=True)
        assert summary is not None
        assert summary["stale_links"] == []
        assert summary["rows"] > 0


class TestLoopSubscription:
    def test_loop_listeners_fire_on_applied_updates(self):
        from repro.metrology.demo import StarMetrologyDemo

        with StarMetrologyDemo(n_hosts=2, period=15.0, seed=5,
                               degrade_factor=0.25) as demo:
            received: list[list] = []
            unsubscribe = demo.loop.subscribe(received.append)
            demo.warmup(4)
            demo.run(8)
            assert received, "degradation applied but no listener fired"
            assert all(isinstance(u, LinkUpdate)
                       for batch in received for u in batch)
            assert all(received)  # listeners only fire with applied updates
            unsubscribe()
            count = len(received)
            demo.run(2)
            assert len(received) == count

    def test_listener_errors_are_isolated(self):
        from repro.metrology.demo import StarMetrologyDemo

        with StarMetrologyDemo(n_hosts=2, period=15.0, seed=6,
                               degrade_factor=0.25) as demo:
            def explode(_updates):
                raise RuntimeError("subscriber bug")

            demo.loop.subscribe(explode)
            demo.warmup(4)
            demo.run(8)  # must not raise
            assert demo.loop.stats.listener_errors >= 1
            assert demo.loop.stats.updates_applied >= 1
