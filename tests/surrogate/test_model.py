"""Regressor invariants: accuracy, incremental refresh, uncertainty, JSON."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate.features import N_FEATURES
from repro.surrogate.model import NotFittedError, SurrogateModel


def synthetic(n: int, seed: int, noise: float = 0.01):
    """A linear log2-duration world the ridge can nail."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, N_FEATURES))
    weights = np.linspace(0.5, -0.5, N_FEATURES)
    y = x @ weights + 1.0 + noise * rng.normal(size=n)
    return x, y


class TestFit:
    def test_recovers_a_linear_world(self):
        x, y = synthetic(200, seed=0)
        model = SurrogateModel()
        model.fit(x, y)
        report = model.evaluate(x, y)
        assert report["median_abs_log2_error"] < 0.05

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SurrogateModel().predict(np.zeros((1, N_FEATURES)))
        with pytest.raises(NotFittedError):
            SurrogateModel().partial_fit(np.zeros((1, N_FEATURES)),
                                         np.zeros(1))

    def test_validates_shapes_and_finiteness(self):
        model = SurrogateModel()
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, N_FEATURES + 1)), np.zeros(2))
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, N_FEATURES)), np.zeros(3))
        with pytest.raises(ValueError):
            model.fit(np.full((2, N_FEATURES), np.nan), np.zeros(2))
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, N_FEATURES)), np.zeros(0))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SurrogateModel(ridge_lambda=0)
        with pytest.raises(ValueError):
            SurrogateModel(k_neighbors=0)
        with pytest.raises(ValueError):
            SurrogateModel(k_neighbors=10, max_store=5)


class TestPartialFit:
    def test_incremental_matches_batch_ridge(self):
        """Gram accumulation makes fit(a)+partial_fit(b) solve the same
        ridge system as fit(a+b) would with the first batch's scaler."""
        xa, ya = synthetic(120, seed=1)
        xb, yb = synthetic(60, seed=2)
        incremental = SurrogateModel(max_store=512)
        incremental.fit(xa, ya)
        incremental.partial_fit(xb, yb)
        # reference: same scaler (frozen at first fit), one absorb
        reference = SurrogateModel(max_store=512)
        reference.fit(xa, ya)
        reference._gram = reference.ridge_lambda * np.eye(reference._dim)
        reference._moment = np.zeros(reference._dim)
        reference._store_x = np.empty((0, N_FEATURES))
        reference._store_r = np.empty(0)
        reference._absorb(np.concatenate([xa, xb]),
                          np.concatenate([ya, yb]))
        np.testing.assert_allclose(incremental._weights,
                                   reference._weights, rtol=1e-9)

    def test_partial_fit_shifts_predictions_toward_new_regime(self):
        x, y = synthetic(150, seed=3)
        model = SurrogateModel()
        model.fit(x, y)
        before, _ = model.predict(x[:10])
        # the world's durations double (log2 targets + 1)
        for _ in range(12):
            model.partial_fit(x, y + 1.0)
        after, _ = model.predict(x[:10])
        ratio = np.median(after / before)
        assert ratio > 1.5

    def test_store_is_bounded_fifo(self):
        x, y = synthetic(64, seed=4)
        model = SurrogateModel(max_store=50)
        model.fit(x, y)
        assert len(model._store_r) == 50
        x2, y2 = synthetic(30, seed=5)
        model.partial_fit(x2, y2)
        assert len(model._store_r) == 50
        assert model.updates == 2


class TestUncertainty:
    def test_far_queries_report_higher_uncertainty(self):
        x, y = synthetic(200, seed=6)
        model = SurrogateModel()
        model.fit(x, y)
        _, near = model.predict(x[:20])
        _, far = model.predict(x[:20] + 30.0)
        assert far.min() > near.max()

    def test_empty_query_is_empty(self):
        x, y = synthetic(50, seed=7)
        model = SurrogateModel()
        model.fit(x, y)
        estimates, uncertainty = model.predict(
            np.zeros((0, N_FEATURES)))
        assert len(estimates) == 0 and len(uncertainty) == 0


class TestSerialization:
    def test_round_trip_preserves_predictions_bitwise(self):
        x, y = synthetic(100, seed=8)
        model = SurrogateModel()
        model.fit(x, y)
        twin = SurrogateModel.from_json(model.to_json())
        e1, u1 = model.predict(x[:25])
        e2, u2 = twin.predict(x[:25])
        assert np.array_equal(e1, e2)
        assert np.array_equal(u1, u2)

    def test_round_trip_keeps_partial_fit_working(self):
        xa, ya = synthetic(80, seed=9)
        xb, yb = synthetic(40, seed=10)
        model = SurrogateModel()
        model.fit(xa, ya)
        twin = SurrogateModel.from_json(model.to_json())
        model.partial_fit(xb, yb)
        twin.partial_fit(xb, yb)
        e1, _ = model.predict(xa[:10])
        e2, _ = twin.predict(xa[:10])
        np.testing.assert_allclose(e1, e2, rtol=1e-12)

    def test_unfitted_round_trip(self):
        twin = SurrogateModel.from_json(SurrogateModel(
            network_model="CM02").to_json())
        assert not twin.fitted
        assert twin.network_model == "CM02"
