"""What-if queries: scenario-machinery equivalence, sandboxing, intervals."""

from __future__ import annotations

import pytest

from repro._util.rng import spawn_rngs
from repro.core.forecast import NetworkForecastService
from repro.core.rest.errors import BadRequest, NotFound
from repro.horizon import (
    events_from_json,
    parse_event,
    run_what_if,
    transient_link_states,
)
from repro.scenarios.dynamics import schedule_dynamics
from repro.scenarios.runner import build_scenario_platform, run_scenario
from repro.scenarios.spec import (
    LinkEvent,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.workloads import generate_workload
from repro.simgrid.builder import build_dumbbell
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02, model_by_name
from repro.simgrid.msg import transfer_processes
from repro.simgrid.platform import link_epoch

TRANSFERS = [("left-1", "right-1", 1e9), ("left-2", "right-2", 1e9)]
EVENTS = [
    LinkEvent(time=1.0, link="bottleneck", action="degrade", factor=0.5),
    LinkEvent(time=5.0, link="bottleneck", action="recover"),
]


def make_service(**kwargs) -> NetworkForecastService:
    return NetworkForecastService({"dumb": build_dumbbell()}, model=CM02(),
                                  **kwargs)


class TestEventParsing:
    def test_parse_event_full_form(self):
        event = parse_event("30, bottleneck, degrade, 0.5")
        assert event == LinkEvent(time=30.0, link="bottleneck",
                                  action="degrade", factor=0.5)

    def test_parse_event_without_factor(self):
        event = parse_event("10,uplink,fail")
        assert event.action == "fail"
        assert event.factor == 1.0

    @pytest.mark.parametrize("text", ["30", "30,link", "a,b,c,d,e"])
    def test_parse_event_bad_arity(self, text):
        with pytest.raises(ValueError):
            parse_event(text)

    def test_events_from_json_round_trip(self):
        events = events_from_json([e.to_json() for e in EVENTS])
        assert events == EVENTS

    def test_events_from_json_rejects_non_objects(self):
        with pytest.raises(ValueError):
            events_from_json(["30,bottleneck,degrade"])


class TestSandboxing:
    def test_transient_states_restore_mutations(self):
        platform = build_dumbbell()
        link = platform.link("bottleneck")
        nominal = link.bandwidth
        with transient_link_states(platform, ["bottleneck"]):
            link.bandwidth = nominal / 4
        assert link.bandwidth == nominal

    def test_untouched_run_does_not_bump_epoch(self):
        platform = build_dumbbell()
        before = link_epoch()
        with transient_link_states(platform, ["bottleneck"]):
            pass
        assert link_epoch() == before

    def test_run_what_if_restores_the_platform(self):
        platform = build_dumbbell()
        nominal = platform.link("bottleneck").bandwidth
        records, log = run_what_if(platform, CM02(), TRANSFERS, EVENTS)
        assert platform.link("bottleneck").bandwidth == nominal
        assert len(log.applied) == len(EVENTS)
        assert all(r["duration"] > 0 for r in records)


class TestEquivalence:
    def test_bit_identical_to_manual_dynamics_schedule(self):
        # the acceptance bar: a what-if answer must be indistinguishable
        # from hand-building the same LinkEvent schedule on the platform
        records, _ = run_what_if(build_dumbbell(), CM02(), TRANSFERS, EVENTS)
        sim = Simulation(build_dumbbell(), CM02())
        schedule_dynamics(sim, EVENTS)
        manual = transfer_processes(sim, list(TRANSFERS))
        assert len(records) == len(manual)
        for ours, theirs in zip(records, manual):
            assert abs(ours["duration"] - theirs["duration"]) <= 1e-9
            assert ours["duration"] == theirs["duration"]  # bit-identical

    def test_bit_identical_to_hand_built_scenario_spec(self):
        # same events + workload expressed as a declarative ScenarioSpec and
        # run through the scenario runner must give the same durations
        spec = ScenarioSpec(
            name="whatif-equivalence",
            topology=TopologySpec("dumbbell"),
            workload=WorkloadSpec("incast", size=2e8),
            dynamics=tuple(EVENTS),
            seed=7,
        )
        scenario = run_scenario(spec)
        platform = build_scenario_platform(spec)
        hosts = [h.name for h in platform.hosts()]
        transfers = list(generate_workload(
            spec.workload, hosts, spawn_rngs(spec.seed, 1, "workload",
                                             spec.name)[0]))
        service = NetworkForecastService({"dumb": platform},
                                         model=model_by_name(spec.model))
        result = service.predict_what_if("dumb", transfers, spec.dynamics)
        assert [f.duration for f in result.forecasts] == \
            [t.duration for t in scenario.transfers]
        assert result.applied == tuple(
            e.to_json() for e in scenario.events_applied)

    def test_no_events_matches_plain_forecast(self):
        service = make_service()
        plain = service.predict_transfers("dumb", TRANSFERS)
        whatif = service.predict_what_if("dumb", TRANSFERS, events=[])
        assert [f.duration for f in whatif.forecasts] == \
            [f.duration for f in plain]

    def test_scalar_and_full_resolve_modes_agree(self):
        baseline, _ = run_what_if(build_dumbbell(), CM02(), TRANSFERS, EVENTS)
        for kwargs in ({"full_resolve": True}, {"vectorized": False}):
            records, _ = run_what_if(build_dumbbell(), CM02(), TRANSFERS,
                                     EVENTS, **kwargs)
            for ours, theirs in zip(records, baseline):
                assert ours["duration"] == pytest.approx(theirs["duration"])


class TestServiceWhatIf:
    def test_events_accepted_as_json_dicts(self):
        service = make_service()
        from_objects = service.predict_what_if("dumb", TRANSFERS, EVENTS)
        from_dicts = service.predict_what_if(
            "dumb", TRANSFERS, [e.to_json() for e in EVENTS])
        assert [f.duration for f in from_dicts.forecasts] == \
            [f.duration for f in from_objects.forecasts]
        assert service.what_if_queries == 2

    def test_degradation_slows_transfers(self):
        service = make_service()
        plain = service.predict_transfers("dumb", TRANSFERS)
        degraded = service.predict_what_if(
            "dumb", TRANSFERS,
            [LinkEvent(time=0.5, link="bottleneck", action="degrade",
                       factor=0.1)])
        for before, after in zip(plain, degraded.forecasts):
            assert after.duration > before.duration

    def test_platform_restored_after_service_query(self):
        service = make_service()
        nominal = service.platform("dumb").link("bottleneck").bandwidth
        service.predict_what_if("dumb", TRANSFERS, EVENTS)
        assert service.platform("dumb").link("bottleneck").bandwidth == nominal

    def test_bad_event_payload_is_bad_request(self):
        service = make_service()
        with pytest.raises(BadRequest):
            service.predict_what_if("dumb", TRANSFERS,
                                    [{"time": 1.0, "link": "bottleneck"}])
        with pytest.raises(BadRequest):
            service.predict_what_if(
                "dumb", TRANSFERS,
                [{"time": 1.0, "link": "bottleneck", "action": "explode"}])

    def test_unknown_platform_is_not_found(self):
        with pytest.raises(NotFound):
            make_service().predict_what_if("nope", TRANSFERS, EVENTS)

    def test_unmatched_event_pattern_is_bad_request(self):
        service = make_service()
        with pytest.raises(BadRequest):
            service.predict_what_if(
                "dumb", TRANSFERS,
                [LinkEvent(time=1.0, link="no-such-*", action="fail")])

    def test_result_json_shape(self):
        service = make_service()
        doc = service.predict_what_if("dumb", TRANSFERS, EVENTS).to_json()
        assert set(doc) == {"forecasts", "applied"}  # horizon only when set
        assert len(doc["forecasts"]) == len(TRANSFERS)
        assert len(doc["applied"]) == len(EVENTS)
        projected = service.predict_what_if("dumb", TRANSFERS, EVENTS,
                                            horizon=2)
        assert projected.to_json()["horizon"] == 2


class TestHorizonIntegration:
    def warm_service(self, derate=0.5, n=10) -> NetworkForecastService:
        service = make_service()
        nominal = service.platform("dumb").link("bottleneck").bandwidth
        for _ in range(n):
            service.observe_link("dumb", "bottleneck", nominal * derate)
        return service

    def test_observe_unknown_link_is_not_found(self):
        with pytest.raises(NotFound):
            make_service().observe_link("dumb", "no-such-link", 1e9)

    def test_horizon_factors_require_positive_horizon(self):
        with pytest.raises(BadRequest):
            make_service().horizon_capacity_factors("dumb", 0)

    def test_cold_platform_passes_combine_through(self):
        factors = make_service().horizon_capacity_factors(
            "dumb", 5, combine={"bottleneck": 0.5})
        assert factors == {"bottleneck": 0.5}

    def test_predict_at_cold_platform_is_point_forecast(self):
        service = make_service()
        forecasts = service.predict_transfers_at("dumb", TRANSFERS, horizon=3)
        plain = service.predict_transfers("dumb", TRANSFERS)
        assert [f.duration for f in forecasts] == [f.duration for f in plain]
        assert all(f.lower is None and f.upper is None for f in forecasts)
        assert service.horizon_queries == 1

    def test_predict_at_projects_derated_bottleneck(self):
        service = self.warm_service(derate=0.5)
        live = service.predict_transfers("dumb", TRANSFERS)
        projected = service.predict_transfers_at("dumb", TRANSFERS, horizon=3)
        for now, later in zip(live, projected):
            assert later.duration > now.duration

    def test_intervals_bracket_the_point_forecast(self):
        service = self.warm_service()
        # noisy series so the projection carries real interval width
        nominal = service.platform("dumb").link("bottleneck").bandwidth
        for i in range(12):
            service.observe_link("dumb", "bottleneck",
                                 nominal * (0.45 + 0.01 * (i % 5)))
        for f in service.predict_transfers_at("dumb", TRANSFERS, horizon=4):
            assert f.lower is not None and f.upper is not None
            assert f.lower <= f.duration <= f.upper
        result = service.predict_what_if("dumb", TRANSFERS, EVENTS, horizon=4)
        assert result.horizon == 4
        for f in result.forecasts:
            assert f.lower <= f.duration <= f.upper

    def test_intervals_can_be_disabled(self):
        service = self.warm_service()
        forecasts = service.predict_transfers_at("dumb", TRANSFERS, horizon=3,
                                                 intervals=False)
        assert all(f.lower is None and f.upper is None for f in forecasts)

    def test_planning_stats_counters(self):
        service = self.warm_service(n=4)
        service.predict_transfers_at("dumb", TRANSFERS, horizon=2)
        service.predict_what_if("dumb", TRANSFERS, EVENTS)
        stats = service.planning_stats()
        assert stats["horizon_queries"] == 1
        assert stats["what_if_queries"] == 1
        assert stats["horizons"]["dumb"]["links"] == 1
        assert stats["horizons"]["dumb"]["observations"] == 4
