"""Tier-1 hook for the planning smoke check.

The planning stack (horizon projections + what-if REST route + stats
counters) must come up, answer with intervals, restore the platform and
shut down cleanly — see ``tools/check_horizon_smoke.py``.  Like the
serving smoke, this is millisecond-scale and runs in-process on every
tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_horizon_smoke  # noqa: E402


def test_standalone_horizon_smoke_passes(capsys):
    assert check_horizon_smoke.main() == 0
    out = capsys.readouterr().out
    assert "horizon smoke OK" in out
    assert "FAIL" not in out
