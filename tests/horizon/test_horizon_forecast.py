"""Multi-horizon forecaster: stability safeguards, intervals, factors."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.horizon import (
    MIN_CAPACITY_FACTOR,
    HorizonForecaster,
    PlatformHorizon,
)
from repro.nws.forecaster import ColdSeriesError
from repro.simgrid.builder import build_dumbbell
from repro.simgrid.platform import UnknownElementError


def warmed(values, capacity=200.0, **kwargs) -> HorizonForecaster:
    forecaster = HorizonForecaster(capacity=capacity, **kwargs)
    for value in values:
        forecaster.update(value)
    return forecaster


class TestConstruction:
    def test_cold_forecaster_raises(self):
        with pytest.raises(ColdSeriesError):
            HorizonForecaster(capacity=100.0).forecast_horizon(3)

    def test_horizon_must_be_positive(self):
        forecaster = warmed([10.0, 11.0, 12.0])
        with pytest.raises(ValueError):
            forecaster.forecast_horizon(0)

    @pytest.mark.parametrize("kwargs", [
        {"phi": 0.0}, {"phi": 1.0}, {"window": 1}, {"z": -1.0},
        {"cutoff_frac": 0.0}, {"capacity": 1.0, "floor": 2.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HorizonForecaster(**{"capacity": 100.0, **kwargs})

    def test_at_is_one_based(self):
        series = warmed([10.0, 11.0, 12.0]).forecast_horizon(4)
        assert len(series) == 4
        assert series.at(1) is series.steps[0]
        assert series.at(4) is series.steps[3]

    def test_weight_replays_observations(self):
        a = warmed([5.0] * 6)
        b = HorizonForecaster(capacity=200.0)
        b.update(5.0, weight=6)
        assert b.observations == a.observations
        assert b.forecast_horizon(2).base == a.forecast_horizon(2).base


class TestStabilityProperties:
    @given(st.lists(st.floats(0.0, 150.0), min_size=3, max_size=40),
           st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_forecasts_stay_within_physical_bounds(self, values, horizon):
        series = warmed(values, capacity=150.0).forecast_horizon(horizon)
        for step in series.steps:
            assert 0.0 <= step.value <= 150.0
            assert 0.0 <= step.lower <= 150.0
            assert 0.0 <= step.upper <= 150.0
            assert step.lower <= step.value <= step.upper

    @given(st.lists(st.floats(0.0, 150.0), min_size=3, max_size=40),
           st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_interval_half_width_widens_monotonically(self, values, horizon):
        series = warmed(values, capacity=150.0).forecast_horizon(horizon)
        widths = [step.half_width for step in series.steps]
        assert all(b >= a for a, b in zip(widths, widths[1:]))

    def test_half_width_follows_sqrt_h(self):
        rng = random.Random(7)
        series = warmed([100.0 + rng.gauss(0, 5) for _ in range(40)],
                        capacity=500.0).forecast_horizon(9)
        assert series.sigma > 0
        for step in series.steps:
            expected = series.at(1).half_width * math.sqrt(step.step)
            assert step.half_width == pytest.approx(expected)

    def test_cutoff_engages_on_drifting_series(self):
        # a strongly trending series: an undamped iterated roll would run
        # far from the one-step anchor; the cutoff must hold it instead
        forecaster = warmed([float(10 * i) for i in range(1, 21)],
                            capacity=1e6, phi=0.95, cutoff_frac=0.05)
        series = forecaster.forecast_horizon(12)
        assert series.cutoff_step is not None
        held = series.at(series.cutoff_step).value
        for step in series.steps:
            assert step.cutoff == (step.step >= series.cutoff_step)
            if step.step >= series.cutoff_step:
                assert step.value == held  # trajectory held flat

    def test_no_cutoff_on_flat_series(self):
        series = warmed([50.0] * 12, capacity=100.0).forecast_horizon(8)
        assert series.cutoff_step is None
        assert all(not step.cutoff for step in series.steps)
        assert all(step.value == pytest.approx(50.0) for step in series.steps)

    def test_damped_excursion_is_bounded(self):
        # total drift can never exceed trend * phi / (1 - phi)
        forecaster = warmed([float(i) for i in range(20)],
                            capacity=1e9, phi=0.6, cutoff_frac=1e9)
        series = forecaster.forecast_horizon(50)
        bound = abs(series.trend) * forecaster.phi / (1 - forecaster.phi)
        for step in series.steps:
            assert abs(step.value - series.base) <= bound + 1e-9

    def test_perfectly_predicted_series_collapses_intervals(self):
        series = warmed([42.0] * 10, capacity=100.0).forecast_horizon(5)
        assert series.sigma == 0.0
        for step in series.steps:
            assert step.half_width == 0.0
            assert step.lower == step.value == step.upper


class TestIntervalCoverage:
    def test_rolling_origin_coverage_at_least_90_percent(self):
        # seeded replay: noisy-but-stationary bandwidth series; at each
        # origin, forecast 1..4 steps ahead and check the realized value
        # lands inside the prediction interval >= 90% of the time
        rng = random.Random(20260808)
        trace = [100.0 + rng.gauss(0.0, 6.0) for _ in range(160)]
        forecaster = HorizonForecaster(capacity=1e3, z=2.0)
        for value in trace[:40]:
            forecaster.update(value)
        covered = total = 0
        for origin in range(40, len(trace) - 4):
            series = forecaster.forecast_horizon(4)
            for h in range(1, 5):
                step = series.at(h)
                covered += step.lower <= trace[origin + h - 1] <= step.upper
                total += 1
            forecaster.update(trace[origin])
        assert total >= 400
        assert covered / total >= 0.90


class TestPlatformHorizon:
    def test_unknown_link_rejected(self):
        horizon = PlatformHorizon(build_dumbbell())
        with pytest.raises(UnknownElementError):
            horizon.observe("no-such-link", 1e9)

    def test_capacity_defaults_to_link_bandwidth(self):
        platform = build_dumbbell()
        horizon = PlatformHorizon(platform)
        forecaster = horizon.forecaster_for("bottleneck")
        assert forecaster.capacity == platform.link("bottleneck").bandwidth

    def test_cold_platform_projects_nothing(self):
        horizon = PlatformHorizon(build_dumbbell())
        assert horizon.project(5) == {}
        assert horizon.capacity_factors_at(5) == {}

    def test_factors_are_valid_capacity_factors(self):
        platform = build_dumbbell()
        horizon = PlatformHorizon(platform)
        nominal = platform.link("bottleneck").bandwidth
        for i in range(8):
            horizon.observe("bottleneck", nominal * 0.5)
        factors = horizon.capacity_factors_at(3)
        assert set(factors) == {"bottleneck"}
        assert MIN_CAPACITY_FACTOR <= factors["bottleneck"] <= 1.0
        assert factors["bottleneck"] == pytest.approx(0.5, rel=0.05)

    def test_factors_never_promise_above_nominal(self):
        platform = build_dumbbell()
        horizon = PlatformHorizon(platform)
        nominal = platform.link("bottleneck").bandwidth
        for i in range(8):
            horizon.observe("bottleneck", nominal)  # measured at capacity
        factors = horizon.capacity_factors_at(3)
        assert factors["bottleneck"] == 1.0

    def test_bounds_order_pessimistic_below_optimistic(self):
        platform = build_dumbbell()
        horizon = PlatformHorizon(platform)
        nominal = platform.link("bottleneck").bandwidth
        rng = random.Random(3)
        for i in range(20):
            horizon.observe("bottleneck", nominal * rng.uniform(0.4, 0.6))
        value = horizon.capacity_factors_at(4)["bottleneck"]
        lower = horizon.capacity_factors_at(4, bound="lower")["bottleneck"]
        upper = horizon.capacity_factors_at(4, bound="upper")["bottleneck"]
        assert lower <= value <= upper

    def test_combine_multiplies_explicit_factors(self):
        platform = build_dumbbell()
        horizon = PlatformHorizon(platform)
        nominal = platform.link("bottleneck").bandwidth
        for i in range(8):
            horizon.observe("bottleneck", nominal * 0.5)
        factors = horizon.capacity_factors_at(
            3, combine={"bottleneck": 0.5, "left-1-link": 0.25})
        assert factors["bottleneck"] == pytest.approx(0.25, rel=0.05)
        assert factors["left-1-link"] == 0.25  # passed through untouched

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            PlatformHorizon(build_dumbbell()).capacity_factors_at(
                3, bound="median")

    def test_info_counters(self):
        horizon = PlatformHorizon(build_dumbbell())
        horizon.observe("bottleneck", 1e8, weight=4)
        info = horizon.info()
        assert info["links"] == 1
        assert info["observations"] == 4
