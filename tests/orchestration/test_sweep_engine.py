"""Parameter sweeps and the experiment engine."""

import pytest

from repro.orchestration.engine import ExperimentEngine, combination_id
from repro.orchestration.sweep import ParamSweep


class TestSweep:
    def test_cartesian_product(self):
        sweep = ParamSweep({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(sweep) == 6
        combos = sweep.combinations()
        assert {"a": 2, "b": "y"} in combos

    def test_exclusions(self):
        sweep = ParamSweep({"n_src": [1, 10], "n_dst": [1, 10]})
        sweep.exclude(lambda c: c["n_src"] == 1 and c["n_dst"] == 1)
        assert len(sweep) == 3

    def test_chained_exclusions(self):
        sweep = ParamSweep({"x": [1, 2, 3, 4]})
        sweep.exclude(lambda c: c["x"] == 1).exclude(lambda c: c["x"] == 4)
        assert [c["x"] for c in sweep] == [2, 3]

    def test_empty_parameter_rejected(self):
        with pytest.raises(ValueError):
            ParamSweep({"a": []})
        with pytest.raises(ValueError):
            ParamSweep({})

    def test_seeded_combinations_match_engine_seed_chain(self):
        from repro._util.rng import derive_seed

        sweep = ParamSweep({"a": [1, 2], "b": ["x"]})
        seeded = sweep.seeded_combinations(root_seed=7)
        assert [c for c, _ in seeded] == sweep.combinations()
        for combination, seed in seeded:
            assert seed == derive_seed(7, combination_id(combination))

    def test_seeded_combinations_decorrelated(self):
        sweep = ParamSweep({"a": list(range(20))})
        seeds = [s for _, s in sweep.seeded_combinations(0)]
        assert len(set(seeds)) == 20

    def test_chunk_size_balances_waves(self):
        assert ParamSweep.chunk_size(100, 4) == 6
        assert ParamSweep.chunk_size(3, 4) == 1
        assert ParamSweep.chunk_size(0, 4) == 1
        assert ParamSweep.chunk_size(100, 1) == 1


class TestCombinationId:
    def test_stable_and_sorted(self):
        cid = combination_id({"b": 2, "a": 1})
        assert cid == "a=1__b=2"

    def test_filesystem_safe(self):
        cid = combination_id({"topo": "GRID/MULTI", "size": "1e5 B"})
        assert "/" not in cid and " " not in cid


class TestEngine:
    def test_runs_every_combination(self):
        sweep = ParamSweep({"x": [1, 2, 3]})
        engine = ExperimentEngine(sweep, lambda c, s: c["x"] * 10)
        results = engine.run()
        assert [(c["x"], r) for c, r in results] == [(1, 10), (2, 20), (3, 30)]

    def test_seeds_deterministic_per_combination(self):
        seeds = {}

        def body(combination, seed):
            seeds.setdefault(combination["x"], []).append(seed)
            return seed

        sweep = ParamSweep({"x": [1, 2]})
        ExperimentEngine(sweep, body, seed=7).run()
        ExperimentEngine(sweep, body, seed=7).run()
        assert seeds[1][0] == seeds[1][1]
        assert seeds[1][0] != seeds[2][0]

    def test_retries_then_records_failure(self):
        attempts = {"n": 0}

        def flaky(combination, seed):
            attempts["n"] += 1
            raise RuntimeError("still broken")

        engine = ExperimentEngine(ParamSweep({"x": [1]}), flaky, max_retries=2)
        results = engine.run()
        assert results == []
        assert attempts["n"] == 3
        assert len(engine.failures) == 1

    def test_retry_succeeds_second_attempt(self):
        attempts = {"n": 0}

        def flaky(combination, seed):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return "ok"

        engine = ExperimentEngine(ParamSweep({"x": [1]}), flaky, max_retries=1)
        results = engine.run()
        assert [r for _, r in results] == ["ok"]
        assert engine.failures == []

    def test_progress_callback(self):
        seen = []
        engine = ExperimentEngine(
            ParamSweep({"x": [1, 2]}),
            lambda c, s: c["x"],
            progress=lambda c, r: seen.append(r),
        )
        engine.run()
        assert seen == [1, 2]
