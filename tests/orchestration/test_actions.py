"""Orchestration actions: lifecycle and composition."""

import pytest

from repro.orchestration.actions import (
    ActionError,
    ActionState,
    FunctionAction,
    ParallelActions,
    Remote,
    SequentialActions,
)


class TestLifecycle:
    def test_run_collects_reports(self):
        action = FunctionAction(lambda: 42)
        action.run()
        assert action.ok
        assert action.reports == [42]

    def test_wait_without_start_rejected(self):
        action = FunctionAction(lambda: 1)
        with pytest.raises(ActionError):
            action.wait()

    def test_double_start_rejected(self):
        action = FunctionAction(lambda: 1)
        action.start()
        with pytest.raises(ActionError):
            action.start()

    def test_failure_recorded_and_reraised(self):
        def boom():
            raise ValueError("broken")

        action = FunctionAction(boom)
        action.start()
        with pytest.raises(ValueError):
            action.wait()
        assert action.state is ActionState.FAILED
        # waiting again re-raises the same error
        with pytest.raises(ValueError):
            action.wait()


class TestRemote:
    def test_one_report_per_host_in_order(self):
        action = Remote(lambda host: f"ran on {host}", ["h1", "h2", "h3"])
        action.run()
        assert action.reports == ["ran on h1", "ran on h2", "ran on h3"]

    def test_requires_hosts(self):
        with pytest.raises(ActionError):
            Remote(lambda host: None, [])


class TestComposition:
    def test_sequential_order(self):
        log = []
        seq = SequentialActions([
            FunctionAction(lambda: log.append("a") or "a"),
            FunctionAction(lambda: log.append("b") or "b"),
        ])
        seq.run()
        assert log == ["a", "b"]
        assert seq.reports == ["a", "b"]

    def test_sequential_stops_on_failure(self):
        log = []

        def boom():
            raise RuntimeError("fail")

        seq = SequentialActions([
            FunctionAction(boom),
            FunctionAction(lambda: log.append("never")),
        ])
        with pytest.raises(RuntimeError):
            seq.run()
        assert log == []

    def test_parallel_collects_all(self):
        par = ParallelActions([
            FunctionAction(lambda: 1), FunctionAction(lambda: 2),
        ])
        par.run()
        assert sorted(par.reports) == [1, 2]

    def test_nested_composition(self):
        inner = ParallelActions([FunctionAction(lambda: "x")])
        outer = SequentialActions([inner, FunctionAction(lambda: "y")])
        outer.run()
        assert outer.reports == ["x", "y"]
