"""Workflow forecasting (§VI extension)."""

import pytest

from repro.core.forecast import NetworkForecastService
from repro.core.rest.errors import BadRequest, NotFound
from repro.core.workflow import WorkflowForecastService
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.models import CM02
from repro.simgrid.tasks import Task, TaskGraph


def make_service():
    platform = build_star_cluster("star", 4)  # hosts: 1 Gf, links 1 Gbps
    forecast = NetworkForecastService({"star": platform}, model=CM02())
    return WorkflowForecastService(forecast)


class TestLinearChain:
    def test_compute_then_transfer_then_compute(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("produce", flops=2e9, output_bytes=1.25e8), "star-1")
        g.add_task(Task("consume", flops=1e9), "star-2")
        g.add_edge("produce", "consume")
        forecast = service.predict_workflow("star", g)
        # 2s compute + 1s transfer (125MB at 1Gbps) + 1s compute (+latency)
        assert forecast.makespan == pytest.approx(4.0, rel=0.01)
        start, finish = forecast.task_times["consume"]
        assert start == pytest.approx(3.0, rel=0.01)
        assert finish == pytest.approx(4.0, rel=0.01)

    def test_transfer_times_recorded(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a", flops=0.0, output_bytes=1.25e8), "star-1")
        g.add_task(Task("b", flops=0.0), "star-2")
        g.add_edge("a", "b")
        forecast = service.predict_workflow("star", g)
        assert ("a", "b") in forecast.transfer_times
        assert forecast.transfer_times[("a", "b")] == pytest.approx(1.0, rel=0.01)


class TestDiamond:
    def build(self):
        g = TaskGraph()
        g.add_task(Task("root", flops=1e9, output_bytes=1e6), "star-1")
        g.add_task(Task("left", flops=2e9, output_bytes=1e6), "star-2")
        g.add_task(Task("right", flops=1e9, output_bytes=1e6), "star-3")
        g.add_task(Task("join", flops=1e9), "star-4")
        for edge in (("root", "left"), ("root", "right"),
                     ("left", "join"), ("right", "join")):
            g.add_edge(*edge)
        return g

    def test_join_waits_for_slowest_branch(self):
        service = make_service()
        forecast = service.predict_workflow("star", self.build())
        left_finish = forecast.task_times["left"][1]
        right_finish = forecast.task_times["right"][1]
        join_start = forecast.task_times["join"][0]
        assert left_finish > right_finish  # left computes twice as long
        assert join_start >= left_finish

    def test_branches_run_in_parallel(self):
        service = make_service()
        forecast = service.predict_workflow("star", self.build())
        # left: 1s root + transfer + 2s; serialized it would be >= 4s
        assert forecast.makespan < 4.6

    def test_json_shape(self):
        service = make_service()
        data = service.predict_workflow("star", self.build()).to_json()
        assert set(data) == {"makespan", "tasks", "transfers"}
        assert "root->left" in data["transfers"]


class TestColocation:
    def test_same_host_transfer_is_loopback_fast(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a", flops=0.0, output_bytes=1.25e8), "star-1")
        g.add_task(Task("b", flops=0.0), "star-1")
        g.add_edge("a", "b")
        forecast = service.predict_workflow("star", g)
        assert forecast.makespan < 0.1  # loopback, not 1s over the NIC

    def test_colocated_computes_share_the_host(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a", flops=1e9), "star-1")
        g.add_task(Task("b", flops=1e9), "star-1")
        forecast = service.predict_workflow("star", g)
        assert forecast.makespan == pytest.approx(2.0, rel=0.01)


class TestValidationErrors:
    def test_cycle_rejected(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a"), "star-1")
        g.add_task(Task("b"), "star-2")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(BadRequest, match="cycle"):
            service.predict_workflow("star", g)

    def test_unknown_host_rejected(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a"), "mars-1")
        with pytest.raises(NotFound):
            service.predict_workflow("star", g)

    def test_unknown_platform(self):
        service = make_service()
        g = TaskGraph()
        g.add_task(Task("a"), "star-1")
        with pytest.raises(NotFound):
            service.predict_workflow("grid", g)
