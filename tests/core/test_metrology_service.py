"""Metrology service: timestamp parsing, fetch contract."""

import pytest

from repro.core.metrology import MetrologyService, parse_timestamp
from repro.core.rest.errors import BadRequest, NotFound
from repro.metrology.collectors import GangliaCollector, MetricKey, MetricRegistry


class TestTimestampParsing:
    def test_epoch_float(self):
        assert parse_timestamp("1336111215") == 1336111215.0
        assert parse_timestamp(1336111215) == 1336111215.0

    def test_paper_date_format(self):
        # the §IV-C1 example uses "2012-05-04 08:00:00"
        t0 = parse_timestamp("2012-05-04 08:00:00")
        t1 = parse_timestamp("2012-05-04 08:01:00")
        assert t1 - t0 == 60.0

    def test_garbage_rejected(self):
        with pytest.raises(BadRequest):
            parse_timestamp("May the 4th")


class TestService:
    def build(self):
        registry = MetricRegistry()
        collector = GangliaCollector(registry, period=15.0)
        key = MetricKey("ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu")
        collector.register(key, lambda t: 168.88)
        collector.collect_until(120.0)
        return MetrologyService(registry)

    def test_fetch_answer_shape_matches_paper(self):
        # "[[1336111215, 168.92...], [1336111230, 168.88], ...]"
        service = self.build()
        result = service.fetch("ganglia", "Lyon",
                               "sagittaire-1.lyon.grid5000.fr", "pdu", 0, 120)
        assert isinstance(result, list)
        assert all(isinstance(row, list) and len(row) == 2 for row in result)
        assert all(v == pytest.approx(168.88) for _, v in result)

    def test_unknown_metric_404(self):
        service = self.build()
        with pytest.raises(NotFound):
            service.fetch("ganglia", "Lyon", "ghost", "pdu", 0, 10)

    def test_end_before_begin_rejected(self):
        service = self.build()
        with pytest.raises(BadRequest):
            service.fetch("ganglia", "Lyon",
                          "sagittaire-1.lyon.grid5000.fr", "pdu", 100, 10)

    def test_describe(self):
        service = self.build()
        info = service.describe("ganglia", "Lyon",
                                "sagittaire-1.lyon.grid5000.fr", "pdu")
        assert info["ds"]["name"] == "pdu"
        assert info["rras"]

    def test_list_metrics(self):
        service = self.build()
        assert service.list_metrics() == [
            "ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd"
        ]
