"""Background-traffic modeling: ongoing transfers + metrology-driven factors."""

import pytest

from repro.core.background import (
    MIN_CAPACITY_FACTOR,
    BackgroundTrafficModel,
    HostLoad,
    record_nic_counters,
)
from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.metrology.collectors import MetricRegistry
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.models import CM02


@pytest.fixture()
def service():
    svc = NetworkForecastService(model=CM02())
    svc.register_platform("star", build_star_cluster("star", 4))
    return svc


class TestOngoingTransfers:
    def test_ongoing_slows_foreground(self, service):
        alone = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)]
        )[0].duration
        contended = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)],
            ongoing=[("star-2", "star-3", 2e9)],
        )[0].duration
        assert contended > 1.4 * alone

    def test_ongoing_not_reported(self, service):
        forecasts = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)],
            ongoing=[("star-2", "star-3", 1e9)],
        )
        assert len(forecasts) == 1
        assert forecasts[0].src == "star-1"

    def test_ongoing_remaining_bytes_matter(self, service):
        small_rest = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)],
            ongoing=[("star-2", "star-3", 1e8)],
        )[0].duration
        big_rest = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)],
            ongoing=[("star-2", "star-3", 1e9)],
        )[0].duration
        assert small_rest < big_rest

    def test_unknown_ongoing_host_rejected(self, service):
        from repro.core.rest.errors import NotFound

        with pytest.raises(NotFound):
            service.predict_transfers(
                "star", [("star-1", "star-2", 1e6)],
                ongoing=[("ghost", "star-2", 1e6)],
            )

    def test_ongoing_over_http(self, service):
        from repro.core.framework import Pilgrim
        from repro.core.rest.client import RestClient

        pilgrim = Pilgrim(model=CM02())
        pilgrim.register_platform("star", service.platform("star"))
        with pilgrim.serve() as server:
            client = RestClient(server.url)
            alone = client.predict_transfers(
                "star", [("star-1", "star-3", 1e9)]
            )[0]["duration"]
            contended = client.get(
                "/pilgrim/predict_transfers/star",
                [("transfer", "star-1,star-3,1e9"),
                 ("ongoing", "star-2,star-3,1e9")],
            )[0]["duration"]
        assert contended > 1.4 * alone


class TestCapacityFactors:
    def test_factor_slows_prediction(self, service):
        full = service.predict_transfers(
            "star", [("star-1", "star-2", 1e9)]
        )[0].duration
        derated = service.predict_transfers(
            "star", [("star-1", "star-2", 1e9)],
            capacity_factors={"star-1-link": 0.5},
        )[0].duration
        assert derated == pytest.approx(2 * full, rel=0.01)

    def test_invalid_factor_rejected(self, service):
        from repro.simgrid.engine import SimulationError

        with pytest.raises(SimulationError):
            service.predict_transfers(
                "star", [("star-1", "star-2", 1e9)],
                capacity_factors={"star-1-link": 0.0},
            )


class TestHostLoad:
    def test_utilization_worst_direction(self):
        load = HostLoad("h", tx_rate=1e7, rx_rate=5e7, nic_capacity=1.25e8)
        assert load.utilization == pytest.approx(0.4)

    def test_utilization_clipped(self):
        load = HostLoad("h", tx_rate=2e8, rx_rate=0.0, nic_capacity=1.25e8)
        assert load.utilization == 1.0


class TestEstimator:
    def counters_for(self, host, rate, duration=600.0, step=15.0):
        series = []
        total = 0.0
        t = 0.0
        while t < duration:
            t += step
            total += rate * step
            series.append((t, total))
        return series

    def build(self, loads):
        registry = MetricRegistry()
        platform = build_star_cluster("star", 4)
        for host, rate in loads.items():
            record_nic_counters(registry, host,
                                tx_bytes_series=self.counters_for(host, rate))
        model = BackgroundTrafficModel(registry, platform)
        return model

    def test_loaded_host_derated(self):
        model = self.build({"star-1": 6.25e7})  # 50% of 1 Gbps NIC
        factors = model.capacity_factors(100.0, 600.0)
        assert factors == {"star-1-link": pytest.approx(0.5, abs=0.05)}

    def test_idle_hosts_untouched(self):
        model = self.build({"star-1": 1e5})  # negligible
        assert model.capacity_factors(100.0, 600.0) == {}

    def test_uninstrumented_hosts_skipped(self):
        model = self.build({})
        assert model.capacity_factors(0.0, 600.0) == {}

    def test_saturated_host_floored(self):
        model = self.build({"star-2": 1.3e8})  # above nominal
        factors = model.capacity_factors(100.0, 600.0)
        assert factors["star-2-link"] == MIN_CAPACITY_FACTOR

    def test_end_to_end_prediction_with_estimated_background(self):
        model = self.build({"star-3": 6.25e7})
        service = NetworkForecastService(
            {"star": model.platform}, model=CM02()
        )
        factors = model.capacity_factors(100.0, 600.0)
        clean = service.predict_transfers(
            "star", [("star-2", "star-3", 1e9)]
        )[0].duration
        loaded = service.predict_transfers(
            "star", [("star-2", "star-3", 1e9)], capacity_factors=factors
        )[0].duration
        assert loaded == pytest.approx(2 * clean, rel=0.1)
