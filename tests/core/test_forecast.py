"""PNFS service logic."""

import pytest

from repro.core.forecast import (
    NetworkForecastService,
    TransferForecast,
    TransferSpec,
)
from repro.core.rest.errors import BadRequest, NotFound
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.models import CM02


class TestTransferSpec:
    def test_size_parses_units(self):
        assert TransferSpec("a", "b", "500MB").size == pytest.approx(5e8)
        assert TransferSpec("a", "b", "5e8").size == pytest.approx(5e8)
        assert TransferSpec("a", "b", 5e8).size == pytest.approx(5e8)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            TransferSpec("a", "b", 0)

    def test_rejects_empty_endpoints(self):
        with pytest.raises(ValueError):
            TransferSpec("", "b", 1)

    def test_parse_query_form(self):
        spec = TransferSpec.parse(
            "capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8"
        )
        assert spec.src == "capricorne-36.lyon.grid5000.fr"
        assert spec.size == 5e8

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(BadRequest):
            TransferSpec.parse("a,b")
        with pytest.raises(BadRequest):
            TransferSpec.parse("a,b,1,extra")

    def test_parse_rejects_bad_size(self):
        with pytest.raises(BadRequest):
            TransferSpec.parse("a,b,-5")


class TestService:
    def make(self):
        service = NetworkForecastService(model=CM02())
        service.register_platform("star", build_star_cluster("star", 4))
        return service

    def test_predicts_answer_4uples(self):
        service = self.make()
        forecasts = service.predict_transfers(
            "star", [TransferSpec("star-1", "star-2", 1e9)]
        )
        fc = forecasts[0]
        assert isinstance(fc, TransferForecast)
        assert fc.duration == pytest.approx(2e-4 + 8.0, rel=1e-3)
        assert fc.to_json() == {
            "src": "star-1", "dst": "star-2", "size": 1e9,
            "duration": pytest.approx(fc.duration),
        }

    def test_accepts_plain_tuples(self):
        service = self.make()
        forecasts = service.predict_transfers("star", [("star-1", "star-2", 1e6)])
        assert forecasts[0].size == 1e6

    def test_concurrent_transfers_interact(self):
        service = self.make()
        alone = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9)]
        )[0].duration
        shared = service.predict_transfers(
            "star", [("star-1", "star-3", 1e9), ("star-2", "star-3", 1e9)]
        )
        for fc in shared:
            assert fc.duration > 1.8 * alone

    def test_fresh_simulation_per_request(self):
        # two identical requests give identical answers (no state leak)
        service = self.make()
        transfers = [("star-1", "star-3", 1e9), ("star-2", "star-3", 1e9)]
        first = [f.duration for f in service.predict_transfers("star", transfers)]
        second = [f.duration for f in service.predict_transfers("star", transfers)]
        assert first == second

    def test_unknown_platform_404(self):
        service = self.make()
        with pytest.raises(NotFound):
            service.predict_transfers("mars", [("a", "b", 1)])

    def test_unknown_host_404(self):
        service = self.make()
        with pytest.raises(NotFound, match="ghost"):
            service.predict_transfers("star", [("ghost", "star-1", 1e6)])

    def test_empty_request_rejected(self):
        service = self.make()
        with pytest.raises(BadRequest):
            service.predict_transfers("star", [])

    def test_per_request_model_override(self):
        from repro.simgrid.models import LV08

        service = self.make()
        cm02 = service.predict_transfers("star", [("star-1", "star-2", 1e9)])
        lv08 = service.predict_transfers("star", [("star-1", "star-2", 1e9)],
                                         model=LV08())
        assert lv08[0].duration > cm02[0].duration  # 0.97 bandwidth factor

    def test_platform_names_sorted(self):
        service = self.make()
        service.register_platform("alpha", build_star_cluster("a", 2))
        assert service.platform_names() == ["alpha", "star"]


class TestPredictMany:
    """Batch (backtest) requests, serial and process-parallel."""

    REQUESTS = [
        [("sagittaire-1.lyon.grid5000.fr", "sagittaire-2.lyon.grid5000.fr", 1e9)],
        [("graphene-1.nancy.grid5000.fr", "graphene-2.nancy.grid5000.fr", 5e8),
         ("graphene-3.nancy.grid5000.fr", "graphene-4.nancy.grid5000.fr", 5e8)],
        [("sagittaire-3.lyon.grid5000.fr", "graphene-2.nancy.grid5000.fr", 1e8)],
    ]

    def test_serial_batch_matches_individual_calls(self, forecast_service):
        batch = forecast_service.predict_transfers_many("g5k_test", self.REQUESTS)
        individual = [
            forecast_service.predict_transfers("g5k_test", transfers)
            for transfers in self.REQUESTS
        ]
        assert batch == individual

    def test_parallel_batch_matches_serial(self, forecast_service):
        from repro.experiments.environment import forecast_service as factory

        serial = forecast_service.predict_transfers_many("g5k_test", self.REQUESTS)
        parallel = forecast_service.predict_transfers_many(
            "g5k_test", self.REQUESTS, workers=2, service_factory=factory)
        assert parallel == serial

    def test_parallel_preserves_custom_model_parameters(self, forecast_service):
        import dataclasses

        from repro.experiments.environment import forecast_service as factory
        from repro.simgrid.models import model_by_name

        half = dataclasses.replace(model_by_name("LV08"), bandwidth_factor=0.5)
        serial = forecast_service.predict_transfers_many(
            "g5k_test", self.REQUESTS, model=half)
        parallel = forecast_service.predict_transfers_many(
            "g5k_test", self.REQUESTS, model=half, workers=2,
            service_factory=factory)
        assert parallel == serial

    def test_parallel_without_factory_rejected(self, forecast_service):
        with pytest.raises(ValueError, match="service_factory"):
            forecast_service.predict_transfers_many(
                "g5k_test", self.REQUESTS, workers=2)

    def test_single_request_stays_serial(self, forecast_service):
        # workers>1 with one request short-circuits (no factory required)
        answers = forecast_service.predict_transfers_many(
            "g5k_test", self.REQUESTS[:1], workers=4)
        assert len(answers) == 1
