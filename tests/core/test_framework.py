"""Pilgrim facade and HTTP round-trips of every endpoint."""

import pytest

from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.core.rest.errors import ApiError, BadRequest, NotFound
from repro.metrology.collectors import GangliaCollector, MetricKey
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.models import CM02


@pytest.fixture(scope="module")
def pilgrim():
    instance = Pilgrim(model=CM02())
    instance.register_platform("star", build_star_cluster("star", 4))
    collector = GangliaCollector(instance.registry, period=15.0)
    key = MetricKey("ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu")
    collector.register(key, lambda t: 168.88)
    collector.collect_until(120.0)
    return instance


@pytest.fixture(scope="module")
def client(pilgrim):
    server = pilgrim.serve().start()
    yield RestClient(server.url)
    server.stop()


class TestFacade:
    def test_predict_delegates(self, pilgrim):
        forecasts = pilgrim.predict_transfers("star", [("star-1", "star-2", 1e9)])
        assert forecasts[0].duration == pytest.approx(2e-4 + 8.0, rel=1e-3)

    def test_planner_factory(self, pilgrim):
        planner = pilgrim.planner("star")
        assert planner.platform_name == "star"

    def test_with_grid5000_builds_both_platforms(self, forecast_service):
        # uses the session-cached service to avoid a rebuild
        assert set(forecast_service.platform_names()) == {"g5k_cabinets",
                                                          "g5k_test"}


class TestHttpEndpoints:
    def test_platforms(self, client):
        assert client.get("/pilgrim/platforms") == {"platforms": ["star"]}

    def test_metrics_listing(self, client):
        metrics = client.get("/pilgrim/metrics")["metrics"]
        assert metrics == ["ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd"]

    def test_rrd_fetch_paper_shape(self, client):
        rows = client.fetch_metric(
            "ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu", 0, 120
        )
        assert rows and all(len(row) == 2 for row in rows)
        assert rows[0][1] == pytest.approx(168.88)

    def test_rrd_info(self, client):
        info = client.get(
            "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/info"
        )
        assert info["ds"]["name"] == "pdu"

    def test_rrd_fetch_missing_params(self, client):
        with pytest.raises(BadRequest):
            client.get(
                "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/"
            )

    def test_rrd_unknown_metric(self, client):
        with pytest.raises(NotFound):
            client.fetch_metric("ganglia", "Lyon", "ghost", "pdu", 0, 10)

    def test_predict_transfers(self, client):
        answers = client.predict_transfers(
            "star", [("star-1", "star-3", 1e9), ("star-2", "star-3", 1e9)]
        )
        assert len(answers) == 2
        for answer in answers:
            assert set(answer) == {"src", "dst", "size", "duration"}
            assert answer["duration"] == pytest.approx(16.0, rel=0.01)

    def test_predict_requires_transfer_param(self, client):
        with pytest.raises(BadRequest):
            client.get("/pilgrim/predict_transfers/star")

    def test_predict_unknown_platform(self, client):
        with pytest.raises(NotFound):
            client.predict_transfers("mars", [("a", "b", 1e6)])

    def test_predict_malformed_transfer(self, client):
        with pytest.raises(BadRequest):
            client.get("/pilgrim/predict_transfers/star",
                       [("transfer", "only-one-field")])

    def test_select_fastest(self, client):
        result = client.select_fastest("star", {
            "direct": [("star-1", "star-2", 1e9)],
            "funnel": [("star-1", "star-2", 1e9), ("star-3", "star-2", 1e9)],
        })
        assert result["best"] == "direct"
        assert result["scores"]["direct"]["simulated"]

    def test_concurrent_requests(self, client):
        import threading

        results = []

        def worker():
            results.append(
                client.predict_transfers("star", [("star-1", "star-2", 1e8)])
            )

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        durations = {round(r[0]["duration"], 9) for r in results}
        assert len(durations) == 1  # all identical, no cross-request state
