"""Latency-feed calibration (§VI extension)."""

import pytest

from repro.core.latency_feed import LatencyFeed, MIN_BACKBONE_LATENCY
from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import BACKBONE_LATENCY, grid5000_dev_reference
from repro.metrology.collectors import MetricRegistry
from repro.metrology.ping import LatencyProber

LYON_REP = "sagittaire-1.lyon.grid5000.fr"
NANCY_REP = "griffon-1.nancy.grid5000.fr"
LILLE_REP = "chti-1.lille.grid5000.fr"


@pytest.fixture()
def fresh_platform():
    # fresh build: calibration mutates link latencies in place
    return to_simgrid_platform(grid5000_dev_reference(), "g5k_test")


class TestCalibration:
    def test_backbone_latency_moves_toward_measured(self, fresh_platform,
                                                    g5k_testbed):
        prober = LatencyProber(g5k_testbed, MetricRegistry(), seed=4)
        feed = LatencyFeed(fresh_platform, prober)
        entries = feed.calibrate_backbone({
            "lyon": LYON_REP, "nancy": NANCY_REP, "lille": LILLE_REP,
        })
        assert len(entries) == 3
        by_link = {e.link: e for e in entries}
        entry = by_link["renater-lyon-nancy"]
        true_one_way = BACKBONE_LATENCY[frozenset(("lyon", "nancy"))]
        assert entry.old_latency == pytest.approx(2.25e-3)
        assert entry.new_latency == pytest.approx(true_one_way, rel=0.15)
        # and the platform link was actually updated
        assert fresh_platform.link("renater-lyon-nancy").latency == pytest.approx(
            entry.new_latency
        )

    def test_calibration_improves_small_transfer_prediction(self, fresh_platform,
                                                            g5k_testbed):
        from repro.analysis.errors import log2_error
        from repro.simgrid.engine import Simulation
        from repro.simgrid.models import LV08
        from repro.testbed.measurement import run_transfers

        transfer = (LYON_REP, NANCY_REP, 1e5)

        def predict():
            sim = Simulation(fresh_platform, LV08())
            return sim.simulate_transfers([transfer])[0].duration

        measured = run_transfers(g5k_testbed, [transfer], seed=11)[0].duration
        before = abs(log2_error(predict(), measured))
        prober = LatencyProber(g5k_testbed, MetricRegistry(), seed=4)
        LatencyFeed(fresh_platform, prober).calibrate_backbone({
            "lyon": LYON_REP, "nancy": NANCY_REP, "lille": LILLE_REP,
        })
        after = abs(log2_error(predict(), measured))
        assert after < before

    def test_floor_applied(self, fresh_platform, g5k_testbed):
        # probing two hosts of the same site pair but with tiny measured RTT
        # cannot push a backbone latency to zero
        prober = LatencyProber(g5k_testbed, MetricRegistry(), seed=4, jitter=0.0)
        feed = LatencyFeed(fresh_platform, prober)
        # calibrate with representatives whose modeled intra-site latencies
        # exceed half the measured RTT by construction: force via fake pair
        entries = feed.calibrate_backbone({"lyon": LYON_REP, "nancy": NANCY_REP})
        assert all(e.new_latency >= MIN_BACKBONE_LATENCY for e in entries)

    def test_backbone_link_identification(self, fresh_platform, g5k_testbed):
        prober = LatencyProber(g5k_testbed, MetricRegistry(), seed=4)
        feed = LatencyFeed(fresh_platform, prober)
        link = feed._backbone_link(LYON_REP, LILLE_REP)
        assert link.name == "renater-lille-lyon"
