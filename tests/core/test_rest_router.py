"""REST router: pattern matching, query parsing, error mapping."""

import pytest

from repro.core.rest.errors import ApiError, BadRequest, NotFound
from repro.core.rest.json_codec import dumps, loads
from repro.core.rest.router import Request, Router


class TestRequestParsing:
    def test_multi_valued_query(self):
        request = Request.from_target("GET", "/p?transfer=a,b,1&transfer=c,d,2")
        assert request.params("transfer") == ["a,b,1", "c,d,2"]

    def test_url_decoding(self):
        request = Request.from_target(
            "GET", "/p/x?begin=2012-05-04%2008:00:00"
        )
        assert request.param("begin") == "2012-05-04 08:00:00"

    def test_param_default_and_missing(self):
        request = Request.from_target("GET", "/p")
        assert request.param("x", default="7") == "7"
        with pytest.raises(BadRequest):
            request.param("x")

    def test_float_param(self):
        request = Request.from_target("GET", "/p?v=2.5&bad=x")
        assert request.float_param("v") == 2.5
        with pytest.raises(BadRequest):
            request.float_param("bad")


class TestRouting:
    def build(self):
        router = Router()

        @router.get("/pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd")
        def fetch(request, tool, site, host, metric):
            return {"tool": tool, "site": site, "host": host, "metric": metric}

        @router.get("/pilgrim/platforms")
        def platforms(request):
            return {"items": []}

        return router

    def test_paper_example_path_binds_metric(self):
        router = self.build()
        status, payload = router.dispatch(Request.from_target(
            "GET",
            "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/",
        ))
        assert status == 200
        assert payload == {"tool": "ganglia", "site": "Lyon",
                           "host": "sagittaire-1.lyon.grid5000.fr",
                           "metric": "pdu"}

    def test_trailing_slash_optional(self):
        router = self.build()
        for path in ("/pilgrim/platforms", "/pilgrim/platforms/"):
            status, _ = router.dispatch(Request.from_target("GET", path))
            assert status == 200

    def test_unknown_path_404(self):
        router = self.build()
        status, payload = router.dispatch(Request.from_target("GET", "/nope"))
        assert status == 404
        assert payload["error"] == "NotFound"

    def test_wrong_method_405(self):
        router = self.build()
        status, payload = router.dispatch(
            Request.from_target("POST", "/pilgrim/platforms")
        )
        assert status == 405

    def test_handler_api_error_mapped(self):
        router = Router()

        @router.get("/boom")
        def boom(request):
            raise NotFound("no such thing")

        status, payload = router.dispatch(Request.from_target("GET", "/boom"))
        assert status == 404
        assert "no such thing" in payload["message"]

    def test_handler_crash_becomes_500(self):
        router = Router()

        @router.get("/crash")
        def crash(request):
            raise RuntimeError("oops")

        status, payload = router.dispatch(Request.from_target("GET", "/crash"))
        assert status == 500
        assert "oops" in payload["message"]

    def test_placeholder_requires_nonempty_segment(self):
        router = self.build()
        status, _ = router.dispatch(Request.from_target(
            "GET", "/pilgrim/rrd/ganglia/Lyon/h/.rrd"))
        assert status == 404


class TestJsonCodec:
    def test_nan_and_inf_become_null(self):
        text = dumps({"a": float("nan"), "b": [float("inf"), 1.0]})
        assert loads(text) == {"a": None, "b": [None, 1.0]}

    def test_nested_roundtrip(self):
        payload = {"x": [1, 2, {"y": "z"}], "w": 3.5}
        assert loads(dumps(payload)) == payload
