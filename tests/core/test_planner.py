"""Hypothesis planner: selection, bounds, pruning."""

import pytest

from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.core.planner import Hypothesis, TransferPlanner
from repro.core.rest.errors import BadRequest
from repro.simgrid.builder import build_dumbbell, build_two_level_grid
from repro.simgrid.models import CM02
from repro.simgrid.tcpfluid import TcpFluidModel


def make_planner():
    platform = build_two_level_grid(
        {"fast": 4, "slow": 4},
        backbone_bandwidth="10Gbps",
    )
    # make the 'slow' site's host links slow
    for i in range(1, 5):
        platform.link(f"slow-{i}-link").bandwidth = 1.25e7  # 100 Mbps
    service = NetworkForecastService({"grid": platform}, model=CM02())
    return TransferPlanner(service, "grid")


class TestHypothesisParsing:
    def test_parse(self):
        hyp = Hypothesis.parse("to-a:h1,h2,5e8;h1,h3,5e8")
        assert hyp.name == "to-a"
        assert len(hyp.transfers) == 2
        assert hyp.transfers[0] == TransferSpec("h1", "h2", 5e8)

    def test_parse_requires_colon(self):
        with pytest.raises(BadRequest):
            Hypothesis.parse("just-transfers")

    def test_parse_requires_transfers(self):
        with pytest.raises(BadRequest):
            Hypothesis.parse("name:")

    def test_empty_hypothesis_rejected(self):
        with pytest.raises(ValueError):
            Hypothesis("empty", ())


class TestSelection:
    def test_picks_faster_destination(self):
        planner = make_planner()
        hypotheses = [
            Hypothesis("to-fast", (TransferSpec("fast-1", "fast-2", 1e9),)),
            Hypothesis("to-slow", (TransferSpec("fast-1", "slow-1", 1e9),)),
        ]
        result = planner.select_fastest(hypotheses)
        assert result.best == "to-fast"
        scores = {s.name: s for s in result.scores}
        assert scores["to-fast"].makespan < scores["to-slow"].makespan

    def test_makespan_is_slowest_transfer(self):
        planner = make_planner()
        hyp = Hypothesis("mix", (
            TransferSpec("fast-1", "fast-2", 1e8),
            TransferSpec("fast-3", "slow-1", 1e8),
        ))
        result = planner.select_fastest([hyp], use_pruning=False)
        score = result.scores[0]
        assert score.makespan == pytest.approx(max(score.durations))

    def test_contention_awareness_beats_naive_split(self):
        # sending both streams into one slow NIC is worse than spreading
        planner = make_planner()
        hypotheses = [
            Hypothesis("funnel", (
                TransferSpec("fast-1", "slow-1", 1e9),
                TransferSpec("fast-2", "slow-1", 1e9),
            )),
            Hypothesis("spread", (
                TransferSpec("fast-1", "slow-1", 1e9),
                TransferSpec("fast-2", "slow-2", 1e9),
            )),
        ]
        result = planner.select_fastest(hypotheses, use_pruning=False)
        assert result.best == "spread"

    def test_duplicate_names_rejected(self):
        planner = make_planner()
        hyp = Hypothesis("same", (TransferSpec("fast-1", "fast-2", 1e8),))
        with pytest.raises(BadRequest):
            planner.select_fastest([hyp, hyp])

    def test_empty_input_rejected(self):
        planner = make_planner()
        with pytest.raises(BadRequest):
            planner.select_fastest([])

    def test_to_json_shape(self):
        planner = make_planner()
        hyp = Hypothesis("h", (TransferSpec("fast-1", "fast-2", 1e8),))
        result = planner.select_fastest([hyp])
        data = result.to_json()
        assert data["best"] == "h"
        assert "makespan" in data["scores"]["h"]


class TestPruning:
    def test_hopeless_hypothesis_not_simulated(self):
        planner = make_planner()
        hypotheses = [
            Hypothesis("good", (TransferSpec("fast-1", "fast-2", 1e8),)),
            # lower bound of this one (80s) far exceeds good's upper bound
            Hypothesis("hopeless", (TransferSpec("fast-1", "slow-1", 1e9),)),
        ]
        result = planner.select_fastest(hypotheses)
        scores = {s.name: s for s in result.scores}
        assert scores["good"].simulated
        assert not scores["hopeless"].simulated
        assert result.best == "good"

    def test_pruning_never_discards_potential_winner(self):
        planner = make_planner()
        # 'a' funnels two transfers into one NIC (upper bound ~16s); 'b' is a
        # single slightly bigger transfer (lower bound ~8.4s) — b can win and
        # must survive pruning
        hypotheses = [
            Hypothesis("a", (
                TransferSpec("fast-1", "fast-2", 1e9),
                TransferSpec("fast-3", "fast-2", 1e9),
            )),
            Hypothesis("b", (TransferSpec("fast-3", "fast-4", 1.05e9),)),
        ]
        pruned = planner.prune(hypotheses)
        assert {h.name for h in pruned} == {"a", "b"}
        result = planner.select_fastest(hypotheses)
        assert result.best == "b"

    def test_pruning_discards_provable_losers(self):
        planner = make_planner()
        hypotheses = [
            Hypothesis("a", (TransferSpec("fast-1", "fast-2", 1e9),)),
            # single-transfer lower bound (8.4s) exceeds a's serialized
            # upper bound (8s): can never win, must be pruned
            Hypothesis("b", (TransferSpec("fast-3", "fast-4", 1.05e9),)),
        ]
        pruned = planner.prune(hypotheses)
        assert {h.name for h in pruned} == {"a"}

    def test_selection_identical_with_and_without_pruning(self):
        planner = make_planner()
        hypotheses = [
            Hypothesis("a", (TransferSpec("fast-1", "fast-2", 1e9),)),
            Hypothesis("b", (TransferSpec("fast-1", "slow-1", 1e9),)),
            Hypothesis("c", (TransferSpec("fast-3", "fast-4", 2e9),)),
        ]
        with_pruning = planner.select_fastest(hypotheses, use_pruning=True)
        without = planner.select_fastest(hypotheses, use_pruning=False)
        assert with_pruning.best == without.best


class TestEffectiveBounds:
    """Pruning bounds must reflect effective — not nominal — capacities."""

    DIRECT = Hypothesis("direct", (TransferSpec("left-1", "right-1", 1e9),))
    LOCAL = Hypothesis("local", (TransferSpec("left-1", "left-2", 1.2e10),))
    # the bottleneck is derated to 10%: 'direct' now crawls while 'local'
    # (which never crosses the bottleneck) is unaffected
    FACTORS = {"bottleneck": 0.1}

    def make_dumbbell_planner(self):
        service = NetworkForecastService({"dumb": build_dumbbell()},
                                         model=CM02())
        return TransferPlanner(service, "dumb")

    def test_nominal_bounds_would_discard_the_true_winner(self):
        # the regression: bounds computed from nominal bandwidths keep only
        # 'direct' (8.0s vs 9.6s), but on the derated platform 'direct'
        # actually takes ~80s — pruning would discard the true winner
        planner = self.make_dumbbell_planner()
        nominal = planner.prune([self.DIRECT, self.LOCAL])
        assert {h.name for h in nominal} == {"direct"}
        effective = planner.prune([self.DIRECT, self.LOCAL],
                                  capacity_factors=self.FACTORS)
        assert {h.name for h in effective} == {"local"}

    def test_selection_under_derated_factors_finds_local(self):
        planner = self.make_dumbbell_planner()
        hypotheses = [self.DIRECT, self.LOCAL]
        pruned = planner.select_fastest(hypotheses,
                                        capacity_factors=self.FACTORS)
        unpruned = planner.select_fastest(hypotheses, use_pruning=False,
                                          capacity_factors=self.FACTORS)
        assert pruned.best == unpruned.best == "local"
        scores = {s.name: s for s in pruned.scores}
        assert not scores["direct"].simulated  # pruned as a provable loser
        assert scores["local"].makespan == pytest.approx(
            {s.name: s for s in unpruned.scores}["local"].makespan)

    def test_bounds_scale_with_capacity_factors(self):
        planner = self.make_dumbbell_planner()
        platform = planner.forecast.platform("dumb")
        lower, upper = planner._static_bounds(platform, self.DIRECT)
        derated_lower, derated_upper = planner._static_bounds(
            platform, self.DIRECT, capacity_factors=self.FACTORS)
        # 1e9 B across a 10%-derated 1 Gbps bottleneck: 10x the transfer time
        assert derated_lower == pytest.approx(10 * (lower - 0.0011) + 0.0011)
        assert derated_upper >= derated_lower
        # 'local' never crosses the bottleneck: bounds unchanged
        assert planner._static_bounds(
            platform, self.LOCAL, capacity_factors=self.FACTORS
        ) == planner._static_bounds(platform, self.LOCAL)

    def test_time_varying_model_skips_pruning(self):
        # a TCP-fluid flow ramps up: its steady-state rate_bound is not an
        # upper bound on the alone rate, so no static bound is sound
        planner = self.make_dumbbell_planner()
        survivors = planner.prune([self.DIRECT, self.LOCAL],
                                  model=TcpFluidModel())
        assert {h.name for h in survivors} == {"direct", "local"}
        result = planner.select_fastest([self.DIRECT, self.LOCAL],
                                        model=TcpFluidModel())
        assert all(s.simulated for s in result.scores)

    def test_kwargs_thread_through_to_simulation(self):
        planner = self.make_dumbbell_planner()
        hypotheses = [self.DIRECT, self.LOCAL]
        baseline = planner.select_fastest(hypotheses,
                                          capacity_factors=self.FACTORS)
        for kwargs in ({"full_resolve": True}, {"vectorized": False}):
            result = planner.select_fastest(
                hypotheses, capacity_factors=self.FACTORS, **kwargs)
            assert result.best == baseline.best
            for ours, theirs in zip(result.scores, baseline.scores):
                assert ours.makespan == pytest.approx(theirs.makespan)

    def test_horizon_ranks_under_projected_state(self):
        # a bottleneck trending to 10% flips the ranking: live state picks
        # 'direct', the projected state picks 'local'
        planner = self.make_dumbbell_planner()
        service = planner.forecast
        nominal = service.platform("dumb").link("bottleneck").bandwidth
        for _ in range(8):
            service.observe_link("dumb", "bottleneck", nominal * 0.1)
        assert planner.select_fastest([self.DIRECT, self.LOCAL]).best == \
            "direct"
        projected = planner.select_fastest([self.DIRECT, self.LOCAL],
                                           horizon=3)
        assert projected.best == "local"
