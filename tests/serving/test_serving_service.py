"""Serving frontend: cache → batch → execute equivalence and counters."""

from __future__ import annotations

import pytest

from repro.core.rest.errors import BadRequest, NotFound
from repro.serving.factories import (
    STAR_PLATFORM,
    star_factory,
    star_forecast_service,
)
from repro.serving.service import ForecastServingService
from repro.simgrid.models import CM02

N_HOSTS = 6


@pytest.fixture(scope="module")
def star_service():
    return star_forecast_service(N_HOSTS)


@pytest.fixture(scope="module")
def hosts(star_service):
    return [h.name for h in star_service.platform(STAR_PLATFORM).hosts()]


class TestInlineServing:
    def test_matches_direct_prediction_bitwise(self, star_service, hosts):
        transfers = [(hosts[0], hosts[1], 5e7), (hosts[2], hosts[3], 1e8)]
        direct = star_service.predict_transfers(STAR_PLATFORM, transfers)
        with ForecastServingService(star_service, window=0.001) as serving:
            assert serving.predict(STAR_PLATFORM, transfers) == direct
            # second ask is a cache hit and still the same answer
            assert serving.predict(STAR_PLATFORM, transfers) == direct
            stats = serving.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["latency"]["count"] == 2
        assert stats["pool"] == {"workers": 0, "mode": "inline"}

    def test_cache_disabled_still_consistent(self, star_service, hosts):
        transfers = [(hosts[0], hosts[1], 5e7)]
        direct = star_service.predict_transfers(STAR_PLATFORM, transfers)
        with ForecastServingService(star_service, window=0.001,
                                    cache_size=0) as serving:
            assert serving.predict(STAR_PLATFORM, transfers) == direct
            assert serving.predict(STAR_PLATFORM, transfers) == direct
            stats = serving.stats()
        assert stats["cache"]["hits"] == 0
        assert stats["cache"]["misses"] == 2

    def test_model_and_ongoing_reach_the_simulation(self, star_service, hosts):
        transfers = [(hosts[0], hosts[1], 5e7)]
        ongoing = [(hosts[0], hosts[2], 1e8)]
        direct = star_service.predict_transfers(
            STAR_PLATFORM, transfers, model=CM02(), ongoing=ongoing)
        with ForecastServingService(star_service, window=0.001) as serving:
            served = serving.predict(STAR_PLATFORM, transfers, model=CM02(),
                                     ongoing=ongoing)
        assert served == direct
        plain = star_service.predict_transfers(STAR_PLATFORM, transfers)
        assert served != plain  # the knobs actually changed the answer

    def test_identical_burst_single_flights(self, star_service, hosts):
        from concurrent.futures import ThreadPoolExecutor

        transfers = [(hosts[0], hosts[1], 5e7)]
        direct = star_service.predict_transfers(STAR_PLATFORM, transfers)
        calls = []
        original = star_service.predict_transfers

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        # cache off: only the coalescer's single-flight dedup can collapse
        # the burst; a generous window lets it land in one batch
        serving = ForecastServingService(star_service, window=0.25,
                                         cache_size=0)
        star_service.predict_transfers = counting
        try:
            with serving:
                with ThreadPoolExecutor(max_workers=6) as burst:
                    answers = list(burst.map(
                        lambda _: serving.predict(STAR_PLATFORM, transfers),
                        range(6)))
        finally:
            del star_service.predict_transfers  # restore the class method
        assert all(answer == direct for answer in answers)
        assert len(calls) < 6  # identical concurrent probes shared flights
        # answers are separate containers: one caller's mutation is private
        answers[0].clear()
        assert answers[1] == direct

    def test_errors_propagate_through_the_future(self, star_service, hosts):
        with ForecastServingService(star_service, window=0.001) as serving:
            with pytest.raises(NotFound):
                serving.predict("no-such-platform", [(hosts[0], hosts[1], 1e6)])
            with pytest.raises(NotFound):
                serving.predict(STAR_PLATFORM, [("ghost", hosts[1], 1e6)])
            with pytest.raises(BadRequest):
                serving.predict(STAR_PLATFORM, [])

    def test_epoch_invalidation_reflects_recalibration(self, star_service,
                                                       hosts):
        transfers = [(hosts[0], hosts[1], 5e7)]
        platform = star_service.platform(STAR_PLATFORM)
        link = next(iter(platform.links()))
        original = link.bandwidth
        with ForecastServingService(star_service, window=0.001) as serving:
            before = serving.predict(STAR_PLATFORM, transfers)
            try:
                link.bandwidth = original * 0.5  # dynamics-style recalibration
                after = serving.predict(STAR_PLATFORM, transfers)
                stats = serving.stats()
            finally:
                link.bandwidth = original
        assert after[0].duration > before[0].duration
        # both asks were misses: the epoch moved, no stale hit was served
        assert stats["cache"]["hits"] == 0
        assert stats["cache"]["misses"] == 2


class TestPooledServing:
    def test_pooled_matches_inline_bitwise(self, star_service, hosts):
        transfers = [(hosts[0], hosts[1], 5e7), (hosts[2], hosts[3], 1e8)]
        direct = star_service.predict_transfers(STAR_PLATFORM, transfers)
        with ForecastServingService(
                star_service, service_factory=star_factory(N_HOSTS),
                workers=2, window=0.001) as serving:
            assert serving.predict(STAR_PLATFORM, transfers) == direct
            stats = serving.stats()
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["requests"] == 1

    def test_workers_require_factory(self, star_service):
        with pytest.raises(ValueError, match="service_factory"):
            ForecastServingService(star_service, workers=2)
        with pytest.raises(ValueError):
            ForecastServingService(star_service, workers=-1)
