"""Concurrent clients hammering the serving stack over HTTP.

N threads replay a shared set of mixed queries against one server (GET and
POST, with the serving layer's cache and coalescer in the path) and every
response must equal the serial ground truth computed before the storm.
Afterwards, the cache counters must be *consistent*: every request was
exactly one hit or one miss, and concurrent identical requests never
produced a wrong or torn answer.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.serving.factories import STAR_PLATFORM, star_forecast_service

N_HOSTS = 8
N_THREADS = 8
ROUNDS = 3  # each thread replays the query set this many times


@pytest.fixture(scope="module")
def star_service():
    return star_forecast_service(N_HOSTS)


@pytest.fixture(scope="module")
def queries(star_service):
    hosts = [h.name for h in star_service.platform(STAR_PLATFORM).hosts()]
    return [
        [(hosts[0], hosts[1], 5e7)],
        [(hosts[2], hosts[3], 1e8), (hosts[4], hosts[5], 2e7)],
        [(hosts[1], hosts[6], 5e7), (hosts[0], hosts[7], 5e7),
         (hosts[3], hosts[5], 1e8)],
        [(hosts[6], hosts[7], 2.5e8)],
    ]


@pytest.fixture(scope="module")
def ground_truth(star_service, queries):
    """Serial one-at-a-time answers, computed before any server exists."""
    return [
        [f.to_json() for f in
         star_service.predict_transfers(STAR_PLATFORM, transfers)]
        for transfers in queries
    ]


def test_hammer_matches_serial_ground_truth(star_service, queries,
                                            ground_truth):
    pilgrim = Pilgrim()
    pilgrim.register_platform(STAR_PLATFORM,
                              star_service.platform(STAR_PLATFORM))
    serving = pilgrim.enable_serving(window=0.002, cache_size=256)
    try:
        with pilgrim.serve() as server:
            url = server.url

            def client_session(worker: int) -> list[tuple[int, list]]:
                client = RestClient(url)
                outcomes = []
                for round_no in range(ROUNDS):
                    for qi, transfers in enumerate(queries):
                        # alternate transports so GET and POST race on the
                        # same cache entries
                        if (worker + round_no + qi) % 2:
                            answer = client.post_predict_transfers(
                                STAR_PLATFORM, transfers)
                        else:
                            answer = client.predict_transfers(
                                STAR_PLATFORM, transfers)
                        outcomes.append((qi, answer))
                return outcomes

            with ThreadPoolExecutor(max_workers=N_THREADS) as clients:
                sessions = list(clients.map(client_session,
                                            range(N_THREADS)))

        for outcomes in sessions:
            assert len(outcomes) == ROUNDS * len(queries)
            for qi, answer in outcomes:
                assert answer == ground_truth[qi], (
                    f"concurrent answer for query {qi} diverged from serial "
                    f"ground truth"
                )

        stats = serving.stats()
        cache = stats["cache"]
        expected_requests = N_THREADS * ROUNDS * len(queries)
        # every request resolved as exactly one hit or one miss
        assert cache["hits"] + cache["misses"] == expected_requests
        # each distinct query simulated at least once, and the cache ended
        # holding at most the distinct query set (no duplicate keys)
        assert cache["misses"] >= len(queries)
        assert cache["size"] <= len(queries)
        assert cache["evictions"] == 0
        # the storm actually hit the cache: far more hits than misses
        assert cache["hits"] > cache["misses"]
        assert stats["latency"]["count"] == expected_requests
        assert stats["batcher"]["requests"] == cache["misses"]
    finally:
        pilgrim.disable_serving()


class TestKeepAliveConnections:
    """Keep-alive robustness of the threaded server (HTTP/1.1).

    The single-process server shares the bounded-ingest contract with the
    gateway front end: persistent connections interleave GET and POST on
    one socket, a client vanishing mid-request never wedges a handler
    thread, and an oversized body is refused with ``413`` before reading —
    clean failures, never hung sockets.
    """

    @pytest.fixture()
    def serving_pilgrim(self, star_service):
        pilgrim = Pilgrim()
        pilgrim.register_platform(STAR_PLATFORM,
                                  star_service.platform(STAR_PLATFORM))
        pilgrim.enable_serving(window=0.0, cache_size=64)
        try:
            yield pilgrim
        finally:
            pilgrim.disable_serving()

    def test_one_connection_interleaves_get_and_post(self, serving_pilgrim,
                                                     queries, ground_truth):
        with serving_pilgrim.serve() as server:
            with RestClient(server.url) as client:
                first = client.post_predict_transfers(STAR_PLATFORM,
                                                      queries[0])
                sock = client._local.conn.sock
                assert sock is not None, "keep-alive must hold the socket"
                for round_no in range(3):
                    for qi, transfers in enumerate(queries):
                        if (round_no + qi) % 2:
                            answer = client.predict_transfers(
                                STAR_PLATFORM, transfers)
                        else:
                            answer = client.post_predict_transfers(
                                STAR_PLATFORM, transfers)
                        assert answer == ground_truth[qi]
                        # the whole train rode the original socket
                        assert client._local.conn.sock is sock
                assert first == ground_truth[0]

    def test_keep_alive_disabled_closes_per_request(self, serving_pilgrim,
                                                    queries, ground_truth):
        with serving_pilgrim.serve() as server:
            client = RestClient(server.url, keep_alive=False)
            for qi, transfers in enumerate(queries):
                assert client.post_predict_transfers(
                    STAR_PLATFORM, transfers) == ground_truth[qi]
                assert getattr(client._local, "conn", None) is None

    def test_mid_stream_disconnect_does_not_wedge_server(
            self, serving_pilgrim, queries, ground_truth):
        import socket as socket_mod

        with serving_pilgrim.serve() as server:
            host, port = server.address
            # promise 1000 body bytes, deliver 4, vanish
            sock = socket_mod.create_connection((host, port), timeout=5.0)
            sock.sendall(
                f"POST /pilgrim/predict_transfers/{STAR_PLATFORM} "
                f"HTTP/1.1\r\nHost: t\r\nContent-Length: 1000\r\n\r\n"
                f"half".encode("ascii"))
            sock.close()
            # new clients are served as if nothing happened
            with RestClient(server.url) as client:
                assert client.post_predict_transfers(
                    STAR_PLATFORM, queries[0]) == ground_truth[0]

    def test_oversized_body_is_clean_413_not_hang(self, serving_pilgrim,
                                                  queries, ground_truth):
        from repro.core.rest.errors import PayloadTooLarge

        with serving_pilgrim.serve(max_body_bytes=16 * 1024) as server:
            with RestClient(server.url) as client:
                big = [("host-0", "host-1", 1e6)] * 2000
                with pytest.raises(PayloadTooLarge):
                    client.post_predict_transfers(STAR_PLATFORM, big)
                # the refusal closed that stream; the client transparently
                # reconnects and normal requests keep working
                assert client.post_predict_transfers(
                    STAR_PLATFORM, queries[0]) == ground_truth[0]

    def test_stale_pooled_connection_retries_once(self, serving_pilgrim,
                                                  queries, ground_truth):
        with serving_pilgrim.serve() as first_server:
            client = RestClient(first_server.url)
            port = first_server.address[1]
            assert client.post_predict_transfers(
                STAR_PLATFORM, queries[0]) == ground_truth[0]
        # server restarted on the same port: the pooled socket is stale
        with serving_pilgrim.serve(port=port) as second_server:
            assert second_server.address[1] == port
            assert client.post_predict_transfers(
                STAR_PLATFORM, queries[0]) == ground_truth[0]
        client.close()


def test_hammer_with_cache_disabled_still_correct(star_service, queries,
                                                  ground_truth):
    pilgrim = Pilgrim()
    pilgrim.register_platform(STAR_PLATFORM,
                              star_service.platform(STAR_PLATFORM))
    serving = pilgrim.enable_serving(window=0.002, cache_size=0)
    try:
        with pilgrim.serve() as server:
            client_urls = server.url

            def client_session(worker: int) -> list:
                client = RestClient(client_urls)
                return [
                    client.post_predict_transfers(STAR_PLATFORM, transfers)
                    for transfers in queries
                ]

            with ThreadPoolExecutor(max_workers=4) as clients:
                sessions = list(clients.map(client_session, range(4)))
        for answers in sessions:
            assert answers == ground_truth
        stats = serving.stats()
        assert stats["cache"]["hits"] == 0
        assert stats["cache"]["misses"] == 4 * len(queries)
        assert stats["batcher"]["requests"] == 4 * len(queries)
    finally:
        pilgrim.disable_serving()
