"""Forecast cache: LRU behavior, canonicalization, epoch invalidation."""

from __future__ import annotations

import pytest

from repro.core.forecast import TransferForecast, TransferSpec
from repro.serving.cache import (
    ForecastCache,
    canonical_transfers,
    forecast_cache_key,
)
from repro.simgrid.models import CM02, LV08
from repro.simgrid.platform import link_epoch


def forecast(i: int) -> TransferForecast:
    return TransferForecast(src=f"h{i}", dst=f"h{i+1}", size=1e6, duration=float(i))


class TestCanonicalization:
    def test_specs_and_tuples_share_a_key(self):
        specs = [TransferSpec("a", "b", 5e8)]
        tuples = [("a", "b", 5e8)]
        assert canonical_transfers(specs) == canonical_transfers(tuples)

    def test_unit_strings_normalize(self):
        assert canonical_transfers([("a", "b", "500MB")]) == \
            canonical_transfers([("a", "b", 5e8)])

    def test_canonicalization_is_idempotent(self):
        canon = canonical_transfers([("a", "b", "500MB"),
                                     TransferSpec("c", "d", 1e6)])
        assert canonical_transfers(canon) is canon  # fast path: as-is

    def test_order_is_significant(self):
        one = canonical_transfers([("a", "b", 1e6), ("c", "d", 1e6)])
        two = canonical_transfers([("c", "d", 1e6), ("a", "b", 1e6)])
        assert one != two

    def test_model_parameters_pin_the_key(self):
        base = forecast_cache_key("p", LV08(), [("a", "b", 1e6)])
        other_model = forecast_cache_key("p", CM02(), [("a", "b", 1e6)])
        gamma = forecast_cache_key("p", LV08().with_gamma(4e6), [("a", "b", 1e6)])
        assert len({base, other_model, gamma}) == 3

    def test_full_resolve_and_ongoing_pin_the_key(self):
        base = forecast_cache_key("p", LV08(), [("a", "b", 1e6)])
        full = forecast_cache_key("p", LV08(), [("a", "b", 1e6)],
                                  full_resolve=True)
        flight = forecast_cache_key("p", LV08(), [("a", "b", 1e6)],
                                    ongoing=[("x", "y", 1e5)])
        assert len({base, full, flight}) == 3


class TestLRU:
    def test_hit_returns_a_copy(self):
        cache = ForecastCache(maxsize=4)
        key = forecast_cache_key("p", LV08(), [("a", "b", 1e6)])
        cache.put(key, [forecast(1)])
        got = cache.get(key)
        assert got == [forecast(1)]
        got.append(forecast(2))
        assert cache.get(key) == [forecast(1)]

    def test_miss_and_counters(self):
        cache = ForecastCache(maxsize=4)
        key = forecast_cache_key("p", LV08(), [("a", "b", 1e6)])
        assert cache.get(key) is None
        cache.put(key, [forecast(1)])
        assert cache.get(key) is not None
        info = cache.info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_eviction_is_least_recently_used(self):
        cache = ForecastCache(maxsize=2)
        keys = [forecast_cache_key("p", LV08(), [("a", "b", float(i + 1))])
                for i in range(3)]
        cache.put(keys[0], [forecast(0)])
        cache.put(keys[1], [forecast(1)])
        assert cache.get(keys[0]) is not None  # refresh 0 → 1 is oldest
        cache.put(keys[2], [forecast(2)])
        assert cache.info()["evictions"] == 1
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None

    def test_disabled_cache_never_stores(self):
        cache = ForecastCache(maxsize=0)
        key = forecast_cache_key("p", LV08(), [("a", "b", 1e6)])
        cache.put(key, [forecast(1)])
        assert cache.get(key) is None
        assert not cache.enabled
        assert cache.info()["misses"] == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ForecastCache(maxsize=-1)


class TestEpochInvalidation:
    def test_link_mutation_moves_the_key(self, star4):
        model = LV08()
        before = forecast_cache_key("p", model, [("a", "b", 1e6)])
        link = next(iter(star4.links()))
        link.bandwidth = link.bandwidth * 0.5  # bumps the global epoch
        after = forecast_cache_key("p", model, [("a", "b", 1e6)])
        assert before != after
        assert after[1] == link_epoch()

    def test_stale_entries_become_unreachable(self, star4):
        cache = ForecastCache(maxsize=8)
        model = LV08()
        key = forecast_cache_key("p", model, [("a", "b", 1e6)])
        cache.put(key, [forecast(1)])
        link = next(iter(star4.links()))
        link.latency = link.latency + 1e-6
        fresh = forecast_cache_key("p", model, [("a", "b", 1e6)])
        assert cache.get(fresh) is None  # recalibration invalidated the hit


class TestCounterConsistency:
    """Hits + misses must equal lookups for every BoundedLRU derivative."""

    def test_forecast_cache_counters_partition_lookups(self):
        cache = ForecastCache(maxsize=4)
        key_a, key_b = ("a",), ("b",)
        cache.put(key_a, [forecast(1)])
        lookups = [key_a, key_b, key_a, key_a, key_b]
        answered = [cache.get(key) for key in lookups]
        assert cache.hits + cache.misses == len(lookups)
        assert (cache.hits, cache.misses) == (3, 2)
        assert [a is not None for a in answered] == [
            True, False, True, True, False]

    def test_forecast_cache_empty_answer_is_a_hit(self):
        # an empty forecast list is falsy but cached: it must count as a
        # hit and come back as [], not be conflated with a miss
        cache = ForecastCache(maxsize=4)
        cache.put(("empty",), [])
        assert cache.get(("empty",)) == []
        assert (cache.hits, cache.misses) == (1, 0)

    def test_disabled_forecast_cache_stays_consistent(self):
        cache = ForecastCache(maxsize=0)
        cache.put(("k",), [forecast(1)])
        assert cache.get(("k",)) is None
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.info()["enabled"] is False

    def test_route_cache_counters_partition_lookups(self, star4):
        cache = star4._route_cache
        cache.clear()
        cache.hits = cache.misses = 0
        hosts = [h.name for h in star4.hosts()]
        pairs = [(hosts[0], hosts[1]), (hosts[0], hosts[2]),
                 (hosts[0], hosts[1]), (hosts[2], hosts[3])]
        for src, dst in pairs:
            star4.route(src, dst)
        lookups = cache.hits + cache.misses
        assert lookups == len(pairs)
        assert (cache.hits, cache.misses) == (1, 3)
