"""Tier-1 hook for the gateway smoke check.

The sharded gateway (shard processes + asyncio front end + admission +
aggregated stats) must boot, answer bit-identically to a direct
simulation and shut down cleanly — see ``tools/check_gateway_smoke.py``.
Runs in-process on every tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_gateway_smoke  # noqa: E402


def test_standalone_gateway_smoke_passes(capsys):
    assert check_gateway_smoke.main() == 0
    out = capsys.readouterr().out
    assert "gateway smoke OK" in out
    assert "FAIL" not in out
