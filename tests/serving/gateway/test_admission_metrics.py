"""Admission controller accounting and SLO metric percentiles."""

from __future__ import annotations

import pytest

from repro.serving.batcher import batch_size_bucket
from repro.serving.gateway.admission import AdmissionController
from repro.serving.gateway.metrics import (
    GatewayMetrics,
    LatencyReservoir,
    percentile,
)


class TestAdmission:
    def test_admits_until_limit_then_sheds(self):
        admission = AdmissionController(max_inflight=2, queue_depth=1)
        assert admission.try_admit()
        assert admission.try_admit()
        assert admission.try_admit()  # the queue slot
        assert not admission.try_admit()  # shed
        snap = admission.snapshot()
        assert snap["in_flight"] == 3
        assert snap["queued"] == 1
        assert snap["admitted"] == 3
        assert snap["shed"] == 1
        assert snap["peak_in_flight"] == 3

    def test_release_reopens_admission(self):
        admission = AdmissionController(max_inflight=1, queue_depth=0)
        assert admission.try_admit()
        assert not admission.try_admit()
        admission.release()
        assert admission.try_admit()

    def test_release_without_admit_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(queue_depth=-1)


class TestPercentiles:
    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.50) == 51.0  # nearest-rank on 0-based
        assert percentile(values, 0.99) == 99.0

    def test_percentile_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_reservoir_snapshot(self):
        reservoir = LatencyReservoir(size=8)
        for ms in (1, 2, 3, 4):
            reservoir.record(ms / 1e3)
        snap = reservoir.snapshot()
        assert snap["count"] == 4
        assert snap["window"] == 4
        assert snap["p50_ms"] == pytest.approx(3.0)
        assert snap["max_ms"] == pytest.approx(4.0)

    def test_reservoir_ring_wraps_but_lifetime_counts_hold(self):
        reservoir = LatencyReservoir(size=4)
        for v in range(100):
            reservoir.record(float(v))
        snap = reservoir.snapshot()
        assert snap["count"] == 100
        assert snap["window"] == 4
        # the ring holds the last 4 samples: 96..99
        assert snap["p50_ms"] == pytest.approx(98.0 * 1e3)
        assert snap["max_ms"] == pytest.approx(99.0 * 1e3)


class TestGatewayMetrics:
    def test_route_classification(self):
        cls = GatewayMetrics.route_class
        assert cls("/pilgrim/predict_transfers/g5k") == "predict_transfers"
        assert cls("/pilgrim/select_fastest/g5k") == "select_fastest"
        assert cls("/pilgrim/stats") == "stats"
        assert cls("/pilgrim/platforms") == "other"
        assert cls("/nonsense") == "other"

    def test_record_and_snapshot(self):
        metrics = GatewayMetrics()
        metrics.record("predict_transfers", 0.010, 200)
        metrics.record("predict_transfers", 0.020, 503)
        metrics.connection_opened()
        snap = metrics.snapshot()
        assert snap["routes"]["predict_transfers"]["count"] == 2
        assert snap["responses"] == {"2xx": 1, "5xx": 1}
        assert snap["connections"]["opened"] == 1
        assert snap["connections"]["active"] == 1
        metrics.connection_closed()
        assert metrics.snapshot()["connections"]["active"] == 0


class TestBatchSizeBuckets:
    def test_buckets(self):
        assert batch_size_bucket(1) == "1"
        assert batch_size_bucket(2) == "2"
        assert batch_size_bucket(3) == "3-4"
        assert batch_size_bucket(4) == "3-4"
        assert batch_size_bucket(5) == "5-8"
        assert batch_size_bucket(8) == "5-8"
        assert batch_size_bucket(9) == "9-16"
        assert batch_size_bucket(256) == "129-256"
