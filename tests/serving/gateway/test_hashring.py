"""Consistent-hash ring: determinism, balance, minimal remapping."""

from __future__ import annotations

import pytest

from repro.serving.gateway.hashring import ConsistentHashRing


KEYS = [f"platform-{i}" for i in range(512)]


class TestRingBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node("anything")

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.node(k) == "only" for k in KEYS)

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add(1)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([0]).remove(7)

    def test_mapping_is_deterministic(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        assert [a.node(k) for k in KEYS] == [b.node(k) for k in KEYS]

    def test_insertion_order_does_not_matter(self):
        a = ConsistentHashRing([0, 1, 2, 3])
        b = ConsistentHashRing([3, 1, 0, 2])
        assert [a.node(k) for k in KEYS] == [b.node(k) for k in KEYS]


class TestRingProperties:
    def test_every_node_gets_a_share(self):
        ring = ConsistentHashRing(range(4))
        counts = ring.distribution(KEYS)
        assert set(counts) == set(range(4))
        # vnodes keep the split coarse-balanced: nobody starves, nobody
        # hoards (bounds loose on purpose — affinity, not load balancing)
        assert min(counts.values()) >= len(KEYS) // 16
        assert max(counts.values()) <= len(KEYS) // 2

    def test_adding_a_node_remaps_only_a_slice(self):
        before = ConsistentHashRing(range(4))
        owners_before = {k: before.node(k) for k in KEYS}
        before.add(4)
        moved = sum(1 for k in KEYS if before.node(k) != owners_before[k])
        # consistent hashing: ~1/5 of keys move to the new node; modulo
        # hashing would remap ~4/5
        assert 0 < moved <= len(KEYS) // 2
        assert all(before.node(k) == 4
                   for k in KEYS if before.node(k) != owners_before[k])

    def test_removing_a_node_strands_no_key(self):
        ring = ConsistentHashRing(range(4))
        owners_before = {k: ring.node(k) for k in KEYS}
        ring.remove(2)
        for key in KEYS:
            owner = ring.node(key)
            assert owner != 2
            if owners_before[key] != 2:  # survivors keep their keys
                assert owner == owners_before[key]
