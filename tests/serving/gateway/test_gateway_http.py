"""End-to-end gateway tests: shards, keep-alive, admission, epoch sync.

A real :class:`ShardedGateway` (2 shard processes over the star platform)
behind its asyncio front end, exercised over actual sockets: answers must
be bit-identical to serial ground truth, keep-alive and pipelining must
work on one connection, malformed/oversized/disconnecting clients must get
clean failures (never hung sockets), admission must shed with
``503 + Retry-After``, and a parent-process link recalibration must reach
every shard before the next answer.
"""

from __future__ import annotations

import socket

import pytest

from repro.core.rest.client import RestClient
from repro.core.rest.errors import PayloadTooLarge, ServiceUnavailable
from repro.serving.factories import (
    STAR_PLATFORM,
    star_factory,
    star_forecast_service,
)
from repro.serving.gateway import GatewayConfig, ShardedGateway
from repro.serving.gateway.loadgen import LoadQuery, run_load

N_HOSTS = 8
MAX_BODY = 64 * 1024


@pytest.fixture(scope="module")
def gateway():
    config = GatewayConfig(shards=2, window=0.0, max_body_bytes=MAX_BODY,
                           request_timeout=30.0)
    with ShardedGateway(star_factory(N_HOSTS), config) as gw:
        yield gw


@pytest.fixture(scope="module")
def queries(gateway):
    hosts = [h.name for h in
             gateway.service.platform(STAR_PLATFORM).hosts()]
    return [
        [(hosts[0], hosts[1], 5e7)],
        [(hosts[2], hosts[3], 1e8), (hosts[4], hosts[5], 2e7)],
        [(hosts[1], hosts[6], 5e7), (hosts[0], hosts[7], 5e7),
         (hosts[3], hosts[5], 1e8)],
        [(hosts[6], hosts[7], 2.5e8)],
    ]


def ground_truth_for(queries, mutate=None):
    """Serial answers from a fresh, independent service build."""
    service = star_forecast_service(N_HOSTS)
    if mutate is not None:
        mutate(service.platform(STAR_PLATFORM))
    return [
        [f.to_json() for f in
         service.predict_transfers(STAR_PLATFORM, transfers)]
        for transfers in queries
    ]


@pytest.fixture(scope="module")
def ground_truth(queries):
    return ground_truth_for(queries)


# -- raw-socket helpers ------------------------------------------------------------


def _connect(gateway) -> socket.socket:
    sock = socket.create_connection(gateway.address, timeout=10.0)
    sock.settimeout(10.0)
    return sock


def _encode(method: str, path: str, body: bytes = b"",
            extra: str = "") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n{extra}\r\n"
    ).encode("ascii") + body


def _read_response(sock_file) -> tuple[int, dict, bytes]:
    status_line = sock_file.readline()
    assert status_line, "server closed before answering"
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = sock_file.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = sock_file.read(int(headers.get("content-length", "0")))
    return status, headers, body


# -- correctness over HTTP ---------------------------------------------------------


def test_get_and_post_match_serial_ground_truth(gateway, queries,
                                                ground_truth):
    with RestClient(gateway.url) as client:
        for qi, transfers in enumerate(queries):
            assert client.predict_transfers(
                STAR_PLATFORM, transfers) == ground_truth[qi]
            assert client.post_predict_transfers(
                STAR_PLATFORM, transfers) == ground_truth[qi]


def test_unknown_platform_404_and_bad_json_400(gateway):
    with RestClient(gateway.url) as client:
        from repro.core.rest.errors import ApiError

        with pytest.raises(ApiError) as excinfo:
            client.predict_transfers("no-such-platform", [("a", "b", 1e6)])
        assert excinfo.value.status == 404
    with _connect(gateway) as sock:
        sock.sendall(_encode("POST",
                             f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                             b"{not json"))
        status, _, _ = _read_response(sock.makefile("rb"))
        assert status == 400


def test_keep_alive_single_connection_many_requests(gateway, queries,
                                                    ground_truth):
    opened_before = gateway.metrics.connections_opened
    with RestClient(gateway.url) as client:
        for _ in range(3):
            for qi, transfers in enumerate(queries):
                assert client.post_predict_transfers(
                    STAR_PLATFORM, transfers) == ground_truth[qi]
    # 12 requests, one connection
    assert gateway.metrics.connections_opened == opened_before + 1


def test_pipelined_requests_answer_in_order(gateway, queries, ground_truth):
    import json
    import urllib.parse

    paths = []
    for transfers in queries:
        params = urllib.parse.urlencode(
            [("transfer", f"{s},{d},{z:g}") for s, d, z in transfers])
        paths.append(f"/pilgrim/predict_transfers/{STAR_PLATFORM}?{params}")
    with _connect(gateway) as sock:
        # all four requests written back-to-back before any read
        sock.sendall(b"".join(_encode("GET", path) for path in paths))
        sock_file = sock.makefile("rb")
        for qi in range(len(queries)):
            status, headers, body = _read_response(sock_file)
            assert status == 200
            assert headers.get("connection") == "keep-alive"
            assert json.loads(body) == ground_truth[qi]


def test_mid_stream_disconnect_leaves_gateway_healthy(gateway, queries,
                                                      ground_truth):
    disconnects_before = gateway.metrics.disconnects
    sock = _connect(gateway)
    # promise a body, send half of it, vanish
    sock.sendall(f"POST /pilgrim/predict_transfers/{STAR_PLATFORM} "
                 f"HTTP/1.1\r\nHost: t\r\nContent-Length: 1000\r\n\r\n"
                 f"half".encode("ascii"))
    sock.close()
    # the server reaps the dead connection and keeps answering
    with RestClient(gateway.url) as client:
        assert client.post_predict_transfers(
            STAR_PLATFORM, queries[0]) == ground_truth[0]
    assert gateway.metrics.disconnects >= disconnects_before


def test_malformed_request_line_gets_400_not_hang(gateway):
    with _connect(gateway) as sock:
        sock.sendall(b"COMPLETE GARBAGE\r\n\r\n")
        status, headers, _ = _read_response(sock.makefile("rb"))
        assert status == 400
        assert headers.get("connection") == "close"


def test_oversized_body_gets_413_before_read(gateway):
    with RestClient(gateway.url) as client:
        transfers = [("host-0", "host-1", 1e6)] * (MAX_BODY // 20)
        with pytest.raises(PayloadTooLarge):
            client.post_predict_transfers(STAR_PLATFORM, transfers)
    assert gateway.metrics.oversized >= 1


def test_admission_shed_is_503_with_retry_after(gateway, queries):
    # saturate the same controller the front end consults — deterministic,
    # no need to race real slow requests
    admission = gateway.admission
    taken = 0
    while admission.try_admit():
        taken += 1
        if taken > admission.limit + 1:  # pragma: no cover - safety rail
            pytest.fail("admission never saturated")
    try:
        with RestClient(gateway.url) as client:
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.post_predict_transfers(STAR_PLATFORM, queries[0])
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after == pytest.approx(
            admission.retry_after_s)
        # stats stay answerable at saturation (admission-exempt)
        with RestClient(gateway.url) as client:
            stats = client.stats()
        assert stats["gateway"]["admission"]["shed"] >= 1
    finally:
        for _ in range(taken):
            admission.release()
    # and the gateway serves again once capacity frees up
    with RestClient(gateway.url) as client:
        client.post_predict_transfers(STAR_PLATFORM, queries[0])


def test_stats_schema_aggregates_gateway_and_shards(gateway):
    with RestClient(gateway.url) as client:
        stats = client.stats()
    assert set(stats) == {"gateway", "shards"}
    top = stats["gateway"]
    for key in ("shards", "admission", "epoch", "shard_occupancy",
                "shard_dispatched", "shard_alive", "routes", "responses",
                "connections", "errors"):
        assert key in top, f"gateway stats missing {key}"
    assert top["shards"] == 2
    assert top["epoch"]["parent"] == top["epoch"]["synced"]
    route = top["routes"]["predict_transfers"]
    assert {"count", "mean_ms", "p50_ms", "p99_ms"} <= set(route)
    assert len(stats["shards"]) == 2
    for shard_stats in stats["shards"]:
        assert shard_stats["alive"]
        for key in ("shard", "pid", "epoch", "requests", "serving"):
            assert key in shard_stats, f"shard stats missing {key}"
        serving = shard_stats["serving"]
        assert "batch_size_hist" in serving["batcher"]
        assert "generations" in serving["pool"] or serving["pool"].get(
            "mode") == "inline"
    pids = {s["pid"] for s in stats["shards"]}
    assert len(pids) == 2, "shards must be distinct processes"


def test_epoch_bump_propagates_to_every_shard(gateway, queries,
                                              ground_truth):
    platform = gateway.service.platform(STAR_PLATFORM)
    link = platform.links()[0]
    original = link.bandwidth

    def halve(p):
        p.link(link.name).bandwidth = original / 2

    new_truth = ground_truth_for(queries, mutate=halve)
    assert new_truth != ground_truth, "mutation must change some answer"
    link.bandwidth = original / 2  # parent-side recalibration
    try:
        with RestClient(gateway.url) as client:
            # the first dispatch after the bump triggers the broadcast, so
            # this very answer must already reflect the new capacity
            for qi, transfers in enumerate(queries):
                assert client.post_predict_transfers(
                    STAR_PLATFORM, transfers) == new_truth[qi]
            stats = client.stats()
        assert stats["gateway"]["epoch"]["syncs"] >= 1
        assert (stats["gateway"]["epoch"]["parent"]
                == stats["gateway"]["epoch"]["synced"])
        shard_epochs = [s["epoch"] for s in stats["shards"]]
        assert all(e >= 1 for e in shard_epochs), (
            "every shard must have applied the link mutation locally")
    finally:
        link.bandwidth = original
    # restoring is itself an epoch bump: answers must swing back too
    with RestClient(gateway.url) as client:
        assert client.post_predict_transfers(
            STAR_PLATFORM, queries[0]) == ground_truth[0]


def test_loadgen_swarm_zero_errors_bit_identical(gateway, queries,
                                                 ground_truth):
    load_queries = []
    for transfers in queries:
        from repro.core.rest.json_codec import dumps

        body = dumps({"transfers": [[s, d, z] for s, d, z in transfers]})
        load_queries.append(LoadQuery(
            "POST", f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            body.encode("utf-8")))
    host, port = gateway.address
    report = run_load(host, port, load_queries, clients=32,
                      requests_per_client=4)
    assert report.connect_failures == 0
    assert report.errors == 0
    assert report.shed == 0, "below the admission limit nothing sheds"
    assert report.completed == 32 * 4
    import json

    for qi, distinct in report.bodies.items():
        assert len(distinct) == 1, f"query {qi} answers were not identical"
        assert json.loads(next(iter(distinct))) == ground_truth[qi]
