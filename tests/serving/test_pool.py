"""Warm worker pool: equivalence, recycling, executor injection."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.serving.factories import (
    STAR_PLATFORM,
    star_factory,
    star_forecast_service,
)
from repro.serving.pool import WarmWorkerPool

N_HOSTS = 6


@pytest.fixture(scope="module")
def star_service():
    return star_forecast_service(N_HOSTS)


@pytest.fixture(scope="module")
def requests(star_service):
    hosts = [h.name for h in star_service.platform(STAR_PLATFORM).hosts()]
    return [
        [(hosts[0], hosts[1], 5e7), (hosts[2], hosts[3], 1e8)],
        [(hosts[4], hosts[5], 2e7)],
        [(hosts[1], hosts[4], 5e7)],
    ]


@pytest.fixture(scope="module")
def serial(star_service, requests):
    return [star_service.predict_transfers(STAR_PLATFORM, r) for r in requests]


class TestWarmPool:
    def test_results_match_serial_bitwise(self, requests, serial):
        with WarmWorkerPool(star_factory(N_HOSTS), workers=2) as pool:
            answers = pool.predict_many(STAR_PLATFORM, requests)
        assert answers == serial

    def test_pool_stays_warm_across_batches(self, requests, serial):
        with WarmWorkerPool(star_factory(N_HOSTS), workers=2) as pool:
            first = pool.predict_many(STAR_PLATFORM, requests)
            second = pool.predict_many(STAR_PLATFORM, requests)
            stats = pool.stats()
        assert first == serial
        assert second == serial
        assert stats["batches"] == 2
        assert stats["requests"] == 2 * len(requests)
        assert stats["recycles"] == 0
        assert stats["generations"] == 1  # warm: both batches, one fork

    def test_recycles_after_max_requests(self, requests, serial):
        with WarmWorkerPool(star_factory(N_HOSTS), workers=2,
                            max_requests=2) as pool:
            for _ in range(3):
                assert pool.predict_many(STAR_PLATFORM, requests) == serial
            stats = pool.stats()
        assert stats["recycles"] >= 1
        # every recycle started a fresh executor generation
        assert stats["generations"] == stats["recycles"] + 1
        # recycling must never change answers (fresh workers, same factory)

    def test_recycles_on_link_epoch_change(self, requests, star4):
        with WarmWorkerPool(star_factory(N_HOSTS), workers=2) as pool:
            pool.predict_many(STAR_PLATFORM, requests[:1])
            link = next(iter(star4.links()))
            link.bandwidth = link.bandwidth * 0.9  # bump the global epoch
            pool.predict_many(STAR_PLATFORM, requests[:1])
            assert pool.stats()["recycles"] == 1

    def test_empty_batch(self):
        pool = WarmWorkerPool(star_factory(N_HOSTS), workers=2)
        assert pool.predict_many(STAR_PLATFORM, []) == []
        assert not pool.started  # no workers spawned for nothing
        pool.stop()

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmWorkerPool(star_factory(N_HOSTS), workers=0)
        with pytest.raises(ValueError):
            WarmWorkerPool(star_factory(N_HOSTS), workers=1, max_requests=0)
        pool = WarmWorkerPool(star_factory(N_HOSTS), workers=1)
        with pytest.raises(ValueError):
            pool.predict_many(STAR_PLATFORM, [[("a", "b", 1.0)]],
                              ongoing=[(), ()])
        pool.stop()


class TestExecutorInjection:
    def test_warm_pool_through_predict_transfers_many(
            self, star_service, requests, serial):
        with WarmWorkerPool(star_factory(N_HOSTS), workers=2) as pool:
            answers = star_service.predict_transfers_many(
                STAR_PLATFORM, requests, executor=pool)
            again = star_service.predict_transfers_many(
                STAR_PLATFORM, requests, executor=pool)
            stats = pool.stats()
        assert answers == serial
        assert again == serial
        assert stats["batches"] == 2  # one pool served both calls

    def test_plain_executor_is_reused_not_shut_down(
            self, star_service, requests, serial):
        factory = star_factory(N_HOSTS)
        with ProcessPoolExecutor(max_workers=2) as executor:
            answers = star_service.predict_transfers_many(
                STAR_PLATFORM, requests, service_factory=factory,
                executor=executor)
            again = star_service.predict_transfers_many(
                STAR_PLATFORM, requests, service_factory=factory,
                executor=executor)
            assert answers == serial
            assert again == serial

    def test_plain_executor_still_needs_factory(self, star_service, requests):
        with ProcessPoolExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="service_factory"):
                star_service.predict_transfers_many(
                    STAR_PLATFORM, requests, executor=executor)

    def test_no_pool_default_unchanged(self, star_service, requests, serial):
        # the historical contract: no executor, workers<=1 → serial inline
        answers = star_service.predict_transfers_many(STAR_PLATFORM, requests)
        assert answers == serial
