"""Tier-1 hook for the serving smoke check.

The serving stack (HTTP server + POST ingest + cache + /stats) must come
up, answer, hit its cache and shut down cleanly — see
``tools/check_serving_smoke.py``.  Like the scenario smoke, this is
millisecond-scale and runs in-process on every tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_serving_smoke  # noqa: E402


def test_standalone_serving_smoke_passes(capsys):
    assert check_serving_smoke.main() == 0
    out = capsys.readouterr().out
    assert "serving smoke OK" in out
    assert "FAIL" not in out
