"""Request coalescer: micro-batching semantics and failure fan-out."""

from __future__ import annotations

import pytest

from repro.serving.batcher import PendingRequest, RequestCoalescer
from repro.simgrid.models import LV08


def echo_execute(batch):
    """Resolve every request with its own transfer list (identity)."""
    for pending in batch:
        pending.future.set_result(list(pending.transfers))


class TestCoalescing:
    def test_single_request_passes_through(self):
        with RequestCoalescer(echo_execute, window=0.001) as batcher:
            future = batcher.submit("p", [("a", "b", 1.0)], LV08())
            assert future.result(timeout=5) == [("a", "b", 1.0)]
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["requests"] == 1
        assert stats["coalesced"] == 0
        assert stats["batch_size_hist"] == {"1": 1}

    def test_concurrent_burst_shares_a_batch(self):
        seen_batches = []

        def execute(batch):
            seen_batches.append(len(batch))
            echo_execute(batch)

        batcher = RequestCoalescer(execute, window=0.25)
        batcher.start()
        try:
            # the window is generous, so a quick burst lands in one drain
            futures = [
                batcher.submit("p", [("a", f"b{i}", 1.0)], LV08())
                for i in range(4)
            ]
            results = [f.result(timeout=5) for f in futures]
        finally:
            batcher.stop()
        assert results == [[("a", f"b{i}", 1.0)] for i in range(4)]
        assert max(seen_batches) >= 2  # the burst coalesced
        stats = batcher.stats()
        assert stats["requests"] == 4
        assert stats["coalesced"] >= 2
        assert stats["max_batch_seen"] == max(seen_batches)
        # the histogram saw exactly the batches the execute callback saw
        assert sum(stats["batch_size_hist"].values()) == len(seen_batches)

    def test_max_batch_bounds_a_drain(self):
        sizes = []

        def execute(batch):
            sizes.append(len(batch))
            echo_execute(batch)

        batcher = RequestCoalescer(execute, window=0.25, max_batch=2)
        # queue before starting the drain thread so one burst is waiting
        futures = [
            batcher.submit("p", [("a", f"b{i}", 1.0)], LV08())
            for i in range(5)
        ]
        [f.result(timeout=5) for f in futures]
        batcher.stop()
        assert max(sizes) <= 2

    def test_group_key_splits_on_platform_model_and_mode(self):
        lv08 = LV08()
        base = PendingRequest("p", [], lv08, False)
        assert base.group_key() == PendingRequest("p", [], LV08(), False).group_key()
        assert base.group_key() != PendingRequest("q", [], lv08, False).group_key()
        assert base.group_key() != PendingRequest("p", [], lv08, True).group_key()
        assert base.group_key() != PendingRequest(
            "p", [], lv08.with_gamma(4e6), False).group_key()


class TestFailure:
    def test_execute_failure_reaches_every_request(self):
        def explode(batch):
            raise RuntimeError("pool died")

        with RequestCoalescer(explode, window=0.05) as batcher:
            futures = [batcher.submit("p", [("a", "b", 1.0)], LV08())
                       for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="pool died"):
                    future.result(timeout=5)

    def test_stop_is_idempotent_and_restartable(self):
        batcher = RequestCoalescer(echo_execute, window=0.001)
        batcher.stop()  # never started: no-op
        future = batcher.submit("p", [("a", "b", 1.0)], LV08())
        assert future.result(timeout=5) == [("a", "b", 1.0)]
        batcher.stop()
        batcher.stop()
        # submit() restarts the drain thread after a stop
        future = batcher.submit("p", [("x", "y", 2.0)], LV08())
        assert future.result(timeout=5) == [("x", "y", 2.0)]
        batcher.stop()

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestCoalescer(echo_execute, window=-0.1)
        with pytest.raises(ValueError):
            RequestCoalescer(echo_execute, max_batch=0)
