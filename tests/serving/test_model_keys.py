"""Cache-key isolation across sharing-model variants.

The pluggable-model refactor keys every serving-layer structure on
``model_key()`` instead of ``repr``: distinct model variants — CM02 vs
LV08 vs TCP-fluid, and the *same* model family with different parameters —
must occupy distinct :class:`ForecastCache` entries and distinct
:class:`RequestCoalescer` groups, while equal models keep hitting the same
entry.  A collision here would serve one model's forecast as another's.
"""

import pytest

from repro.serving.batcher import PendingRequest
from repro.serving.cache import ForecastCache, forecast_cache_key
from repro.simgrid.models import CM02, LV08, NetworkModel, model_key_of
from repro.simgrid.tcpfluid import TcpFluidModel

TRANSFERS = (("a", "b", 1e8),)

#: One representative of every registered family plus parameter variants
#: within a family — pairwise distinct identities.
VARIANTS = (
    CM02(),
    LV08(),
    TcpFluidModel(),
    NetworkModel("LV08", bandwidth_factor=0.8),
    NetworkModel("LV08", tcp_gamma=2 ** 16),
    TcpFluidModel(max_window_bytes=2 ** 16),
    TcpFluidModel(cubic_beta=0.5),
)


def cache_key(model, epoch=0):
    return forecast_cache_key("p", model, TRANSFERS, epoch=epoch)


class TestForecastCacheIsolation:
    def test_distinct_variants_get_distinct_keys(self):
        keys = [cache_key(m) for m in VARIANTS]
        assert len(set(keys)) == len(VARIANTS)

    def test_equal_models_share_a_key(self):
        assert cache_key(LV08()) == cache_key(LV08())
        assert cache_key(TcpFluidModel()) == cache_key(TcpFluidModel())

    def test_no_cross_model_hits(self):
        cache = ForecastCache(maxsize=16)
        for i, model in enumerate(VARIANTS):
            cache.put(cache_key(model), [i])
        for i, model in enumerate(VARIANTS):
            assert cache.get(cache_key(model)) == [i]

    def test_same_family_different_params_is_a_miss(self):
        cache = ForecastCache(maxsize=16)
        cache.put(cache_key(LV08()), ["lv08 answer"])
        assert cache.get(cache_key(NetworkModel("LV08",
                                                bandwidth_factor=0.8))) is None
        cache.put(cache_key(TcpFluidModel()), ["fluid answer"])
        assert cache.get(cache_key(TcpFluidModel(cubic_beta=0.5))) is None

    def test_key_uses_model_key_not_repr(self):
        class Doppelganger:
            """Same repr as LV08(), different identity contract."""

            def __repr__(self):
                return repr(LV08())

            def model_key(self):
                return ("Doppelganger",)

        assert cache_key(Doppelganger()) != cache_key(LV08())


class TestCoalescerGroupIsolation:
    def test_distinct_variants_get_distinct_groups(self):
        groups = {PendingRequest("p", TRANSFERS, m, False).group_key()
                  for m in VARIANTS}
        assert len(groups) == len(VARIANTS)

    def test_equal_models_coalesce(self):
        assert (PendingRequest("p", TRANSFERS, TcpFluidModel(), False)
                .group_key()
                == PendingRequest("p", TRANSFERS, TcpFluidModel(), False)
                .group_key())

    def test_mode_flags_still_split_groups(self):
        base = PendingRequest("p", TRANSFERS, TcpFluidModel(), False)
        assert (base.group_key()
                != PendingRequest("p", TRANSFERS, TcpFluidModel(), True)
                .group_key())
        assert (base.group_key()
                != PendingRequest("p", TRANSFERS, TcpFluidModel(), False,
                                  vectorized=False).group_key())


class TestSurrogateTierIsolation:
    def test_tier_only_answers_its_trained_model(self):
        from repro.surrogate.model import SurrogateModel
        from repro.surrogate.tier import SurrogateTier

        import numpy as np

        from repro.surrogate.features import N_FEATURES

        model = SurrogateModel(network_model="LV08")
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, N_FEATURES))
        model.fit(x, x @ np.linspace(0.1, -0.1, N_FEATURES))
        tier = SurrogateTier(model, bound=100.0, require_fresh_epoch=False)

        # a mismatched request model must fall through, same-key must not
        # be rejected for the model-mismatch reason
        assert tier.try_answer(None, "p", TcpFluidModel(), ()) is None
        assert tier.stats()["fallbacks"]["model_mismatch"] == 1
        assert tier.try_answer(None, "p", LV08(), ()) is None
        assert tier.stats()["fallbacks"]["model_mismatch"] == 1

    def test_expected_key_matches_registry(self):
        from repro.surrogate.model import SurrogateModel
        from repro.surrogate.tier import SurrogateTier

        tier = SurrogateTier(SurrogateModel(network_model="tcp_fluid"),
                             bound=0.5)
        assert tier._expected_key == model_key_of(TcpFluidModel())
