"""POST transport: JSON bodies, router dispatch, /stats endpoint."""

from __future__ import annotations

import pytest

from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.core.rest.errors import BadRequest, MethodNotAllowed
from repro.core.rest.router import Request, Router
from repro.serving.factories import STAR_PLATFORM, star_forecast_service

N_HOSTS = 8


@pytest.fixture(scope="module")
def star_service():
    return star_forecast_service(N_HOSTS)


@pytest.fixture(scope="module")
def hosts(star_service):
    return [h.name for h in star_service.platform(STAR_PLATFORM).hosts()]


@pytest.fixture(scope="module")
def pilgrim(star_service):
    instance = Pilgrim()
    instance.register_platform(STAR_PLATFORM,
                               star_service.platform(STAR_PLATFORM))
    instance.enable_serving(window=0.001, cache_size=64)
    yield instance
    instance.disable_serving()


@pytest.fixture(scope="module")
def http(pilgrim):
    with pilgrim.serve() as server:
        yield RestClient(server.url)


class TestRouterPost:
    def test_post_route_receives_body(self):
        router = Router()

        @router.post("/echo")
        def echo(request: Request):
            return {"got": request.json_body()}

        status, payload = router.dispatch(
            Request.from_target("POST", "/echo", body={"x": 1}))
        assert status == 200
        assert payload == {"got": {"x": 1}}

    def test_get_contract_unchanged(self):
        router = Router()

        @router.post("/thing")
        def create(request: Request):
            return {}

        @router.get("/thing")
        def read(request: Request):
            return {"method": "GET"}

        status, payload = router.dispatch(Request.from_target("GET", "/thing"))
        assert status == 200
        assert payload == {"method": "GET"}

    def test_method_mismatch_is_405(self):
        router = Router()

        @router.post("/only-post")
        def create(request: Request):
            return {}

        status, payload = router.dispatch(
            Request.from_target("GET", "/only-post"))
        assert status == MethodNotAllowed.status

    def test_body_accessors(self):
        request = Request.from_target("POST", "/x", body={"a": 1})
        assert request.json_body() == {"a": 1}
        assert request.body_field("a") == 1
        assert request.body_field("b", default=None) is None
        with pytest.raises(BadRequest):
            request.body_field("b")
        with pytest.raises(BadRequest):
            Request.from_target("POST", "/x", body=[1]).body_field("a")
        with pytest.raises(BadRequest):
            Request.from_target("GET", "/x").json_body()


class TestHTTPPost:
    def test_large_transfer_list_not_limited_by_uri(self, http, hosts):
        # hundreds of transfers would overflow a request target; the JSON
        # body carries them without any URI-length ceiling
        transfers = [
            [hosts[i % len(hosts)], hosts[(i + 1) % len(hosts)],
             1e6 * (1 + i % 7)]
            for i in range(300)
        ]
        answers = http.post_predict_transfers(STAR_PLATFORM, transfers)
        assert len(answers) == 300
        assert all(a["duration"] > 0 for a in answers)

    def test_post_matches_get(self, http, hosts):
        pairs = [(hosts[0], hosts[1], 5e7), (hosts[2], hosts[3], 1e8)]
        via_get = http.predict_transfers(STAR_PLATFORM, pairs)
        via_post = http.post_predict_transfers(STAR_PLATFORM, pairs)
        assert via_get == via_post

    def test_ongoing_in_body(self, http, hosts):
        pairs = [(hosts[0], hosts[1], 5e7)]
        alone = http.post_predict_transfers(STAR_PLATFORM, pairs)
        contended = http.post_predict_transfers(
            STAR_PLATFORM, pairs, ongoing=[(hosts[0], hosts[2], 1e9)])
        assert contended[0]["duration"] >= alone[0]["duration"]

    def test_explicit_empty_ongoing_accepted(self, http, hosts):
        # a client that always serializes the field must not be rejected
        answers = http.post(
            f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            {"transfers": [[hosts[0], hosts[1], 5e7]], "ongoing": []})
        assert len(answers) == 1

    def test_malformed_bodies_are_400(self, http, hosts):
        with pytest.raises(BadRequest):
            http.post(f"/pilgrim/predict_transfers/{STAR_PLATFORM}", {})
        with pytest.raises(BadRequest):
            http.post(f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                      {"transfers": []})
        with pytest.raises(BadRequest):
            http.post(f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                      {"transfers": [[hosts[0], hosts[1]]]})
        with pytest.raises(BadRequest):
            http.post(f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                      {"transfers": [[hosts[0], hosts[1], -5]]})

    def test_invalid_json_body_is_400(self, http):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            http.base_url + f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            data=b"{not json", headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_stats_endpoint(self, http, hosts):
        http.post_predict_transfers(STAR_PLATFORM,
                                    [(hosts[0], hosts[1], 5e7)])
        stats = http.stats()
        serving = stats["serving"]
        assert serving["enabled"] is True
        assert serving["cache"]["maxsize"] == 64
        assert serving["latency"]["count"] >= 1
        assert serving["batcher"]["requests"] >= 1
        assert STAR_PLATFORM in stats["route_caches"]

    def test_stats_without_serving(self, star_service):
        bare = Pilgrim()
        bare.register_platform(STAR_PLATFORM,
                               star_service.platform(STAR_PLATFORM))
        with bare.serve() as server:
            stats = RestClient(server.url).stats()
        assert stats["serving"] == {"enabled": False}

    def test_post_without_serving_enabled(self, star_service, hosts):
        bare = Pilgrim()
        bare.register_platform(STAR_PLATFORM,
                               star_service.platform(STAR_PLATFORM))
        with bare.serve() as server:
            answers = RestClient(server.url).post_predict_transfers(
                STAR_PLATFORM, [(hosts[0], hosts[1], 5e7)])
        assert len(answers) == 1


class TestModelSelection:
    """The ``model`` request field: named sharing-model override per call."""

    def test_post_model_field_changes_forecast(self, http, hosts):
        pairs = [[hosts[0], hosts[1], 5e7]]
        default = http.post(
            f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            {"transfers": pairs})
        fluid = http.post(
            f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            {"transfers": pairs, "model": "tcp_fluid"})
        assert fluid[0]["duration"] != default[0]["duration"]

    def test_get_model_param_matches_post(self, http, hosts):
        via_get = http.get(
            f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            [("transfer", f"{hosts[0]},{hosts[1]},5e7"),
             ("model", "tcp_fluid")])
        via_post = http.post(
            f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
            {"transfers": [[hosts[0], hosts[1], 5e7]],
             "model": "tcp_fluid"})
        assert via_get == via_post

    def test_unknown_model_is_400_listing_registered(self, http, hosts):
        with pytest.raises(BadRequest, match="LV08"):
            http.post(
                f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                {"transfers": [[hosts[0], hosts[1], 5e7]],
                 "model": "udp_teleport"})
        with pytest.raises(BadRequest):
            http.get(
                f"/pilgrim/predict_transfers/{STAR_PLATFORM}",
                [("transfer", f"{hosts[0]},{hosts[1]},5e7"),
                 ("model", "udp_teleport")])
