"""Max-min solver: exact cases and hypothesis-checked invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simgrid.maxmin import MaxMinError, MaxMinSystem


class TestBasics:
    def test_single_variable_single_constraint(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(100.0)
        v = sys.new_variable(weight=1.0)
        sys.expand(c, v)
        sys.solve()
        assert v.value == pytest.approx(100.0)
        assert c.usage == pytest.approx(100.0)

    def test_equal_weights_share_equally(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(90.0)
        vars_ = [sys.new_variable(weight=1.0) for _ in range(3)]
        for v in vars_:
            sys.expand(c, v)
        sys.solve()
        for v in vars_:
            assert v.value == pytest.approx(30.0)

    def test_weighted_share_inverse_to_weight(self):
        # RTT-aware model: allocation inversely proportional to weight
        sys = MaxMinSystem()
        c = sys.new_constraint(100.0)
        fast = sys.new_variable(weight=1.0)
        slow = sys.new_variable(weight=3.0)
        sys.expand(c, fast)
        sys.expand(c, slow)
        sys.solve()
        assert fast.value == pytest.approx(3 * slow.value)
        assert fast.value + slow.value == pytest.approx(100.0)

    def test_bound_caps_allocation_and_redistributes(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(100.0)
        capped = sys.new_variable(weight=1.0, bound=10.0)
        free = sys.new_variable(weight=1.0)
        sys.expand(c, capped)
        sys.expand(c, free)
        sys.solve()
        assert capped.value == pytest.approx(10.0)
        assert free.value == pytest.approx(90.0)

    def test_variable_without_constraint_gets_bound(self):
        sys = MaxMinSystem()
        v = sys.new_variable(weight=1.0, bound=42.0)
        sys.solve()
        assert v.value == pytest.approx(42.0)

    def test_variable_without_constraint_or_bound_is_infinite(self):
        sys = MaxMinSystem()
        v = sys.new_variable(weight=1.0)
        sys.solve()
        assert math.isinf(v.value)

    def test_two_bottlenecks_progressive_filling(self):
        # v1 crosses c1 only; v2 crosses c1 and c2; v3 crosses c2 only.
        # c1 = 100, c2 = 40: v2 and v3 split c2 at 20 each; v1 takes the
        # c1 leftover (80).
        sys = MaxMinSystem()
        c1 = sys.new_constraint(100.0)
        c2 = sys.new_constraint(40.0)
        v1 = sys.new_variable(weight=1.0)
        v2 = sys.new_variable(weight=1.0)
        v3 = sys.new_variable(weight=1.0)
        sys.expand(c1, v1)
        sys.expand(c1, v2)
        sys.expand(c2, v2)
        sys.expand(c2, v3)
        sys.solve()
        assert v2.value == pytest.approx(20.0)
        assert v3.value == pytest.approx(20.0)
        assert v1.value == pytest.approx(80.0)

    def test_coefficient_counts_double_crossing(self):
        # a flow crossing a SHARED link twice consumes twice
        sys = MaxMinSystem()
        c = sys.new_constraint(100.0)
        v = sys.new_variable(weight=1.0)
        sys.expand(c, v, coefficient=2.0)
        sys.solve()
        assert v.value == pytest.approx(50.0)
        assert c.usage == pytest.approx(100.0)

    def test_empty_system_solves(self):
        sys = MaxMinSystem()
        sys.solve()  # no error

    def test_solve_is_idempotent(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(60.0)
        v1 = sys.new_variable(weight=1.0)
        v2 = sys.new_variable(weight=2.0)
        sys.expand(c, v1)
        sys.expand(c, v2)
        sys.solve()
        first = (v1.value, v2.value)
        sys.solve()
        assert (v1.value, v2.value) == first


class TestValidation:
    def test_rejects_zero_weight(self):
        sys = MaxMinSystem()
        with pytest.raises(MaxMinError):
            sys.new_variable(weight=0.0)

    def test_rejects_negative_bound(self):
        sys = MaxMinSystem()
        with pytest.raises(MaxMinError):
            sys.new_variable(weight=1.0, bound=-5.0)

    def test_infinite_bound_treated_as_none(self):
        sys = MaxMinSystem()
        v = sys.new_variable(weight=1.0, bound=math.inf)
        assert v.bound is None

    def test_rejects_zero_capacity(self):
        sys = MaxMinSystem()
        with pytest.raises(MaxMinError):
            sys.new_constraint(0.0)

    def test_rejects_zero_coefficient(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(10.0)
        v = sys.new_variable(weight=1.0)
        with pytest.raises(MaxMinError):
            sys.expand(c, v, coefficient=0.0)


class TestErrorMessages:
    """Solver errors name the offending variable/constraint and its payload."""

    def test_bad_weight_names_variable_and_payload(self):
        sys = MaxMinSystem()
        sys.new_variable(weight=1.0)
        with pytest.raises(MaxMinError, match=r"variable #1 \(payload='flow-a'\)"):
            sys.new_variable(weight=0.0, payload="flow-a")
        with pytest.raises(MaxMinError, match=r"weight must be positive and finite, got nan"):
            sys.new_variable(weight=math.nan)

    def test_bad_bound_names_variable_and_payload(self):
        sys = MaxMinSystem()
        with pytest.raises(
            MaxMinError,
            match=r"variable #0 \(payload='flow-b'\): bound must be positive, got -3.0",
        ):
            sys.new_variable(weight=1.0, bound=-3.0, payload="flow-b")

    def test_bad_capacity_names_constraint_and_payload(self):
        sys = MaxMinSystem()
        sys.new_constraint(1.0)
        with pytest.raises(
            MaxMinError,
            match=r"constraint #1 \(payload='link:up'\): capacity must be "
                  r"positive and finite, got 0.0",
        ):
            sys.new_constraint(0.0, payload="link:up")

    def test_bad_coefficient_names_both_endpoints(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(10.0, payload="the-link")
        v = sys.new_variable(weight=1.0, payload="the-flow")
        with pytest.raises(
            MaxMinError,
            match=r"coefficient must be positive, got -1.0 \(constraint #0 "
                  r"payload='the-link', variable #0 payload='the-flow'\)",
        ):
            sys.expand(c, v, coefficient=-1.0)


@st.composite
def random_system(draw):
    n_vars = draw(st.integers(1, 12))
    n_cons = draw(st.integers(1, 8))
    weights = draw(
        st.lists(st.floats(0.01, 100.0), min_size=n_vars, max_size=n_vars)
    )
    bounds = draw(
        st.lists(
            st.one_of(st.none(), st.floats(0.1, 1000.0)),
            min_size=n_vars, max_size=n_vars,
        )
    )
    capacities = draw(
        st.lists(st.floats(1.0, 1000.0), min_size=n_cons, max_size=n_cons)
    )
    # which constraints each variable crosses (possibly none)
    memberships = draw(
        st.lists(
            st.lists(st.integers(0, n_cons - 1), max_size=4),
            min_size=n_vars, max_size=n_vars,
        )
    )
    return weights, bounds, capacities, memberships


def build(weights, bounds, capacities, memberships):
    sys = MaxMinSystem()
    constraints = [sys.new_constraint(cap) for cap in capacities]
    variables = []
    for w, b, members in zip(weights, bounds, memberships):
        v = sys.new_variable(weight=w, bound=b)
        for ci in set(members):
            sys.expand(constraints[ci], v)
        variables.append(v)
    sys.solve()
    return sys, variables, constraints


class TestInvariants:
    @given(random_system())
    @settings(max_examples=200, deadline=None)
    def test_feasible(self, system):
        sys, variables, constraints = build(*system)
        assert sys.is_feasible(tolerance=1e-6)

    @given(random_system())
    @settings(max_examples=200, deadline=None)
    def test_bounds_respected(self, system):
        sys, variables, constraints = build(*system)
        for v in variables:
            if v.bound is not None:
                assert v.value <= v.bound * (1 + 1e-9)

    @given(random_system())
    @settings(max_examples=200, deadline=None)
    def test_no_starvation(self, system):
        # every variable with a constraint or bound gets strictly positive rate
        sys, variables, constraints = build(*system)
        for v in variables:
            assert v.value > 0.0

    @given(random_system())
    @settings(max_examples=200, deadline=None)
    def test_pareto_saturation(self, system):
        # every finite variable is blocked by a saturated constraint or its
        # bound: otherwise the allocation would not be max-min optimal
        weights, bounds, capacities, memberships = system
        sys, variables, constraints = build(*system)
        for v, members in zip(variables, memberships):
            if not math.isfinite(v.value):
                continue
            at_bound = v.bound is not None and v.value >= v.bound * (1 - 1e-6)
            saturated = any(
                constraints[ci].usage >= constraints[ci].capacity * (1 - 1e-6)
                for ci in set(members)
            )
            assert at_bound or saturated, (
                f"variable neither bound- nor constraint-limited: {v}"
            )

    @given(random_system())
    @settings(max_examples=100, deadline=None)
    def test_scaling_invariance(self, system):
        # scaling all capacities and bounds by k scales the solution by k
        weights, bounds, capacities, memberships = system
        k = 3.0
        _, vars1, _ = build(weights, bounds, capacities, memberships)
        _, vars2, _ = build(
            weights,
            [None if b is None else b * k for b in bounds],
            [c * k for c in capacities],
            memberships,
        )
        for v1, v2 in zip(vars1, vars2):
            if math.isfinite(v1.value):
                assert v2.value == pytest.approx(v1.value * k, rel=1e-6)


class TestFeasibilityTolerance:
    """Regression: the feasibility slack is relative to each constraint's
    capacity.  The old fixed 1e-6 absolute tolerance silently passed
    infeasible near-zero-capacity constraints (a 1e-7 overshoot on a 1e-9
    link is a 100x violation) and spuriously flagged rounding noise on
    multi-gigabit links."""

    def test_tiny_capacity_overshoot_is_infeasible(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(1e-9)
        v = sys.new_variable(weight=1.0)
        sys.expand(c, v)
        sys.solve()
        # fabricate the over-consumption a buggy solve would produce: small
        # in absolute terms, 100x the constraint's capacity in relative ones
        c.usage = 1e-9 + 1e-7
        assert not sys.is_feasible(tolerance=1e-6)

    def test_rounding_noise_on_fat_link_is_feasible(self):
        sys = MaxMinSystem()
        c = sys.new_constraint(1e10)
        v = sys.new_variable(weight=1.0)
        sys.expand(c, v)
        sys.solve()
        # one byte/s of float noise over a 10 Gb/s link is not a violation
        c.usage = 1e10 + 1.0
        assert sys.is_feasible(tolerance=1e-6)

    def test_sharing_system_uses_relative_slack_too(self):
        from repro.simgrid.maxmin import SharingSystem

        system = SharingSystem()
        vid = system.add_variable(1.0, usages=((("tiny",), 1e-9, 1.0),))
        system.solve()
        assert system.is_feasible(tolerance=1e-6)
        slot = system._key_to_slot[("tiny",)]
        system._usages[slot] = 1e-9 + 1e-7
        assert not system.is_feasible(tolerance=1e-6)
        system._usages[slot] = 1e-9 * (1.0 + 1e-8)  # within relative slack
        assert system.is_feasible(tolerance=1e-6)
        # an infinite allocation on a constrained variable is never feasible
        system._values[vid] = math.inf
        assert not system.is_feasible(tolerance=1e-6)
