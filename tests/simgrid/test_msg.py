"""MSG layer: processes, mailboxes, rendezvous, wait_all."""

import math

import pytest

from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.msg import ProcessError, add_process, transfer_processes


class TestProcesses:
    def test_plain_function_runs_at_start_time(self, star4):
        sim = Simulation(star4)
        ran = []
        add_process(sim, "p", "star-1", lambda ctx: ran.append(ctx.now),
                    start_time=2.5)
        sim.run()
        assert ran == [2.5]

    def test_process_result_is_return_value(self, star4):
        sim = Simulation(star4)

        def worker(ctx):
            yield ctx.sleep(1.0)
            return 42

        proc = add_process(sim, "w", "star-1", worker)
        sim.run()
        assert proc.result == 42
        assert proc.done

    def test_join_another_process(self, star4):
        sim = Simulation(star4)
        order = []

        def slow(ctx):
            yield ctx.sleep(3.0)
            order.append("slow")
            return "done"

        def waiter(ctx, other):
            result = yield other
            order.append(f"waiter-got-{result}")

        proc = add_process(sim, "slow", "star-1", slow)
        add_process(sim, "waiter", "star-2", waiter, proc)
        sim.run()
        assert order == ["slow", "waiter-got-done"]

    def test_yielding_non_waitable_raises(self, star4):
        sim = Simulation(star4)

        def bad(ctx):
            yield 42

        add_process(sim, "bad", "star-1", bad)
        with pytest.raises(ProcessError):
            sim.run()

    def test_negative_start_time_rejected(self, star4):
        sim = Simulation(star4)
        with pytest.raises(ProcessError):
            add_process(sim, "p", "star-1", lambda ctx: None, start_time=-1.0)

    def test_context_exposes_host_and_name(self, star4):
        sim = Simulation(star4)
        seen = {}

        def probe(ctx):
            seen["host"] = ctx.host.name
            seen["name"] = ctx.name

        add_process(sim, "probe", "star-3", probe)
        sim.run()
        assert seen == {"host": "star-3", "name": "probe"}


class TestMailboxes:
    def test_send_recv_transfers_payload(self, star4):
        sim = Simulation(star4)
        received = []

        def sender(ctx):
            yield ctx.send("mb", 1e6, payload={"hello": "world"})

        def receiver(ctx):
            payload = yield ctx.recv("mb")
            received.append((ctx.now, payload))

        add_process(sim, "snd", "star-1", sender)
        add_process(sim, "rcv", "star-2", receiver)
        sim.run()
        assert received[0][1] == {"hello": "world"}
        assert received[0][0] > 0.0

    def test_rendezvous_waits_for_receiver(self, star4):
        sim = Simulation(star4)
        finish = {}

        def sender(ctx):
            yield ctx.send("mb", 1e6)
            finish["send"] = ctx.now

        def late_receiver(ctx):
            yield ctx.sleep(5.0)
            yield ctx.recv("mb")
            finish["recv"] = ctx.now

        add_process(sim, "snd", "star-1", sender)
        add_process(sim, "rcv", "star-2", late_receiver)
        sim.run()
        # data only flows after the receiver posts at t=5
        assert finish["send"] >= 5.0
        assert finish["recv"] == pytest.approx(finish["send"])

    def test_fifo_matching_order(self, star4):
        sim = Simulation(star4)
        got = []

        def sender(ctx, tag):
            yield ctx.send("mb", 1e5, payload=tag)

        def receiver(ctx):
            a = yield ctx.recv("mb")
            b = yield ctx.recv("mb")
            got.extend([a, b])

        add_process(sim, "s1", "star-1", sender, "first")
        add_process(sim, "s2", "star-2", sender, "second", start_time=0.1)
        add_process(sim, "rcv", "star-3", receiver)
        sim.run()
        assert got == ["first", "second"]

    def test_wait_all_collects_results(self, star4):
        sim = Simulation(star4)
        collected = []

        def sender(ctx, mb, tag):
            yield ctx.send(mb, 1e5, payload=tag)

        def receiver(ctx):
            handles = [ctx.recv("mb-a"), ctx.recv("mb-b")]
            results = yield ctx.wait_all(handles)
            collected.extend(results)

        add_process(sim, "sa", "star-1", sender, "mb-a", "A")
        add_process(sim, "sb", "star-2", sender, "mb-b", "B")
        add_process(sim, "rcv", "star-3", receiver)
        sim.run()
        assert collected == ["A", "B"]

    def test_wait_all_empty_completes_immediately(self, star4):
        sim = Simulation(star4)
        done = []

        def proc(ctx):
            result = yield ctx.wait_all([])
            done.append(result)

        add_process(sim, "p", "star-1", proc)
        sim.run()
        assert done == [[]]


class TestTransferProcesses:
    def test_paper_pattern_records_durations(self, star4):
        sim = Simulation(star4, CM02())
        records = transfer_processes(
            sim, [("star-1", "star-2", 1e9), ("star-3", "star-4", 1e9)]
        )
        expected = 2e-4 + 8.0
        for record in records:
            assert record["duration"] == pytest.approx(expected, rel=1e-3)
            assert record["start"] == 0.0
            assert not math.isnan(record["finish"])

    def test_matches_direct_simulation(self, star4):
        direct = Simulation(star4, CM02()).simulate_transfers(
            [("star-1", "star-3", 5e8), ("star-2", "star-3", 5e8)]
        )
        msg_sim = Simulation(star4, CM02())
        records = transfer_processes(
            msg_sim, [("star-1", "star-3", 5e8), ("star-2", "star-3", 5e8)]
        )
        for comm, record in zip(direct, records):
            assert record["duration"] == pytest.approx(comm.duration, rel=1e-6)
