"""Routing analysis utilities: validation, flattening, accounting."""

import pytest

from repro.simgrid.builder import build_star_cluster, build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.platform import NoRouteError, Platform
from repro.simgrid.routing import (
    flatten_platform,
    route_signature,
    route_table_bytes,
    validate_all_routes,
)


class TestValidateAllRoutes:
    def test_valid_platform_summary(self):
        p = build_two_level_grid({"a": 3, "b": 3})
        summary = validate_all_routes(p)
        assert summary["pairs"] == 30
        assert summary["min_hops"] == 2
        assert summary["max_hops"] == 3
        assert summary["asymmetric_pairs"] == 0

    def test_sampling(self):
        p = build_two_level_grid({"a": 4, "b": 4})
        summary = validate_all_routes(p, sample=10, seed=1)
        assert summary["pairs"] == 10

    def test_detects_missing_route(self):
        p = Platform("p")
        p.root.add_host("a")
        p.root.add_host("b")
        with pytest.raises(NoRouteError):
            validate_all_routes(p)


class TestFlatten:
    def test_flat_platform_has_quadratic_table(self):
        p = build_two_level_grid({"a": 3, "b": 3})
        flat = flatten_platform(p)
        assert flat.root.route_table_size() == 30  # 6*5 ordered pairs

    def test_flat_routes_identical_to_hierarchical(self):
        p = build_two_level_grid({"a": 3, "b": 3})
        flat = flatten_platform(p)
        for a in ("a-1", "b-2"):
            for b in ("a-3", "b-1"):
                if a != b:
                    assert route_signature(flat.route(a, b)) == route_signature(
                        p.route(a, b)
                    )

    def test_flat_simulation_matches(self):
        p = build_two_level_grid({"a": 2, "b": 2})
        flat = flatten_platform(p)
        transfers = [("a-1", "b-1", 1e8), ("a-2", "b-2", 1e8)]
        original = Simulation(p, CM02()).simulate_transfers(transfers)
        flattened = Simulation(flat, CM02()).simulate_transfers(transfers)
        for c1, c2 in zip(original, flattened):
            assert c2.duration == pytest.approx(c1.duration, rel=1e-9)

    def test_flat_table_memory_exceeds_hierarchical(self):
        p = build_two_level_grid({"a": 6, "b": 6, "c": 6})
        flat = flatten_platform(p)
        assert route_table_bytes(flat) > route_table_bytes(p)
        assert flat.root.route_table_size() > p.total_route_table_entries()
