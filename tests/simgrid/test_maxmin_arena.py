"""Arena hygiene under sustained churn.

The metrology loop (PRs 4-5) holds one :class:`SharingSystem` alive for the
whole recalibration campaign — days of add/remove cycles.  These tests churn
an arena through ~1e5 cycles and pin the properties that keep that loop
healthy: freed vids never alias live ones, constraint capacities never
drift, buffer growth stays bounded by the compaction policy, and
``allocations()`` keeps its slot-order contract across compactions.
"""

from __future__ import annotations

import random

import pytest

from repro.simgrid.maxmin import MaxMinError, SharingSystem

CYCLES = 100_000


def test_no_vid_aliasing_and_no_capacity_drift_under_churn():
    rng = random.Random(0xA11A5)
    system = SharingSystem(vectorized=True)
    live: dict[int, int] = {}  # vid -> payload
    payload_counter = 0
    for step in range(CYCLES):
        if live and rng.random() < 0.5:
            vid = rng.choice(list(live))
            del live[vid]
            system.remove_variable(vid)
            # a removed vid must not answer as live
            with pytest.raises(MaxMinError):
                system.value(vid)
        else:
            cons = rng.randrange(16)
            vid = system.add_variable(
                1.0, payload=payload_counter,
                usages=((("c", cons), 100.0 + cons, 1.0),),
            )
            # a fresh vid must never collide with a currently-live one
            assert vid not in live, f"step {step}: vid {vid} aliased"
            live[vid] = payload_counter
            payload_counter += 1
        if step % 1000 == 0:
            system.solve()
            remap = system.maybe_compact()
            if remap is not None:
                # compaction renumbers every live vid
                live = {remap[vid]: payload for vid, payload in live.items()}
            assert len(live) == system.variable_count, "live count drifted"
    system.solve()
    assert system.variable_count == len(live)
    # the tracking map and the arena agree on payload identity after the
    # full churn (catches any silent slot crossover)
    for vid, payload in live.items():
        assert system.payload(vid) == payload
    # interned capacities are exactly what every add wrote — no drift
    # through ~1e5 re-interns of the same 16 keys
    for cons in range(16):
        try:
            assert system.constraint_capacity(("c", cons)) == 100.0 + cons
        except MaxMinError:
            pass  # constraint currently has no users


def test_compaction_bounds_buffer_growth():
    rng = random.Random(7)
    system = SharingSystem(vectorized=True)
    live: list[int] = []
    # grow to a large arena, then drain almost entirely and keep churning a
    # handful of flows: maybe_compact must pull the buffers back down
    for i in range(4000):
        live.append(system.add_variable(
            1.0, payload=i, usages=(((i % 64,), 50.0, 1.0),)
        ))
    system.solve()
    assert system.variable_capacity >= 4000
    rng.shuffle(live)
    while len(live) > 8:
        system.remove_variable(live.pop())
    system.solve()
    remap = system.maybe_compact()
    assert remap is not None, "an almost-empty huge arena must compact"
    live = [remap[vid] for vid in live]
    assert system.variable_capacity <= 256
    peak_capacity = 0
    for _ in range(CYCLES // 10):
        vid = system.add_variable(1.0, usages=((("k",), 10.0, 1.0),))
        system.remove_variable(vid)
        peak_capacity = max(peak_capacity, system.variable_capacity)
    # steady-state churn of ~9 live flows must not grow the arena at all
    assert peak_capacity <= 256
    system.solve()
    assert system.variable_count == len(live)
    assert system.stats["compactions"] >= 1


def test_allocations_order_stable_across_compaction():
    system = SharingSystem(vectorized=True)
    vids = [
        system.add_variable(1.0, payload=f"flow-{i}",
                            usages=(((i,), float(i + 1), 1.0),))
        for i in range(500)
    ]
    system.solve()
    # remove every other flow so compaction has holes to close
    for vid in vids[::2]:
        system.remove_variable(vid)
    system.solve()
    before = system.allocations()
    remap = system.compact()
    after = system.allocations()
    # compaction preserves slot order (stable remap): the surviving flows
    # come back in the same sequence with the same values
    assert [p for p, _ in after] == [p for p, _ in before]
    assert [v for _, v in after] == [v for _, v in before]
    # the remap is dense and order-preserving over the survivors
    survivors = sorted(remap)
    assert sorted(remap.values()) == list(range(len(survivors)))
    assert [remap[v] for v in survivors] == sorted(remap.values())


def test_values_survive_compaction_exactly():
    system = SharingSystem(vectorized=True)
    shared = ((("uplink",), 100.0, 1.0),)
    vids = [system.add_variable(1.0, payload=i, usages=shared)
            for i in range(40)]
    system.solve()
    for vid in vids[:30]:
        system.remove_variable(vid)
    values_before = {system.payload(v): system.value(v) for v in vids[30:]}
    remap = system.compact()
    survivors = [remap[v] for v in vids[30:]]
    values_after = {system.payload(v): system.value(v) for v in survivors}
    assert values_before == values_after
    system.solve()  # removals left the component dirty
    for vid in survivors:
        assert system.value(vid) == pytest.approx(10.0, rel=1e-12)


# -- update_variable: the time-varying sharing hook --------------------------


class TestUpdateVariable:
    """Retuning live variables (the TCP-fluid per-round weight/bound path)."""

    def _contended(self, system):
        shared = ((("bottleneck",), 100.0, 1.0),)
        return [system.add_variable(1.0, payload=i, usages=shared)
                for i in range(4)]

    def test_retune_matches_a_fresh_system(self):
        # mutate weights/bounds in place, then check the solve against a
        # system built with those parameters from scratch
        system = SharingSystem(vectorized=True)
        vids = self._contended(system)
        system.solve()
        weights = [1.0, 2.0, 4.0, 8.0]
        bounds = [float("inf"), 30.0, float("inf"), 5.0]
        for vid, weight, bound in zip(vids, weights, bounds):
            system.update_variable(vid, weight=weight, bound=bound)
        system.solve()

        fresh = SharingSystem(vectorized=True)
        shared_key = (("bottleneck",), 100.0, 1.0)
        fresh_vids = [fresh.add_variable(w, bound=b, payload=i,
                                         usages=(shared_key,))
                      for i, (w, b) in enumerate(zip(weights, bounds))]
        fresh.solve()
        for vid, fvid in zip(vids, fresh_vids):
            assert system.value(vid) == pytest.approx(fresh.value(fvid),
                                                      rel=1e-12)

    def test_incremental_equals_full_after_updates(self):
        system = SharingSystem(vectorized=True)
        vids = self._contended(system)
        system.solve()
        system.update_variable(vids[1], weight=3.0)
        system.update_variable(vids[3], bound=2.0)
        system.solve()  # incremental: only the dirty component
        incremental = [system.value(v) for v in vids]
        system.solve_raw(full=True)
        assert [system.value(v) for v in vids] == pytest.approx(incremental,
                                                                rel=1e-12)

    def test_partial_update_leaves_other_parameter(self):
        system = SharingSystem(vectorized=True)
        vid = system.add_variable(2.0, bound=7.0,
                                  usages=((("l",), 100.0, 1.0),))
        system.update_variable(vid, weight=4.0)  # bound untouched
        system.solve()
        assert system.value(vid) == pytest.approx(7.0)
        system.update_variable(vid, bound=float("inf"))  # weight untouched
        system.solve()
        assert system.value(vid) == pytest.approx(100.0)

    def test_update_dirties_the_shared_component(self):
        # retuning one flow must re-solve its neighbours too: the other
        # flow's share moves even though it was never touched directly
        system = SharingSystem(vectorized=True)
        a, b, *_ = self._contended(system)[:2]
        system.solve()
        before_b = system.value(b)
        system.update_variable(a, weight=9.0)
        system.solve()
        assert system.value(b) != pytest.approx(before_b, rel=1e-6)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"),
                                        float("inf")])
    def test_bad_weight_rejected(self, weight):
        system = SharingSystem(vectorized=True)
        vid = system.add_variable(1.0, usages=((("l",), 10.0, 1.0),))
        with pytest.raises(MaxMinError, match=f"variable #{vid}"):
            system.update_variable(vid, weight=weight)

    @pytest.mark.parametrize("bound", [0.0, -3.0, float("nan"),
                                       float("-inf")])
    def test_bad_bound_rejected(self, bound):
        system = SharingSystem(vectorized=True)
        vid = system.add_variable(1.0, usages=((("l",), 10.0, 1.0),))
        with pytest.raises(MaxMinError, match=f"variable #{vid}"):
            system.update_variable(vid, bound=bound)

    def test_positive_infinity_bound_means_unbounded(self):
        system = SharingSystem(vectorized=True)
        vid = system.add_variable(1.0, bound=1.0,
                                  usages=((("l",), 50.0, 1.0),))
        system.update_variable(vid, bound=float("inf"))
        system.solve()
        assert system.value(vid) == pytest.approx(50.0)

    def test_dead_vid_rejected(self):
        system = SharingSystem(vectorized=True)
        vid = system.add_variable(1.0, usages=((("l",), 10.0, 1.0),))
        system.remove_variable(vid)
        with pytest.raises(MaxMinError):
            system.update_variable(vid, weight=2.0)
