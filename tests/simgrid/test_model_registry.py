"""The sharing-model registry: lookup, errors, identity, introspection."""

import pytest

from repro.simgrid.models import (
    CM02,
    LV08,
    NetworkModel,
    SharingModel,
    model_by_name,
    model_key_of,
    model_names,
    register_model,
    registered_models,
)
from repro.simgrid.tcpfluid import TcpFluidModel


class TestModelByName:
    def test_builtin_names_resolve(self):
        assert model_by_name("CM02") == CM02()
        assert model_by_name("LV08") == LV08()
        assert isinstance(model_by_name("tcp_fluid"), TcpFluidModel)

    def test_lookup_is_case_insensitive(self):
        assert model_by_name("lv08") == LV08()
        assert model_by_name("TCP_FLUID") == model_by_name("tcp_fluid")

    def test_unknown_name_lists_registered_models(self):
        with pytest.raises(ValueError) as err:
            model_by_name("no-such-model")
        message = str(err.value)
        assert "no-such-model" in message
        for name in ("CM02", "LV08", "tcp_fluid"):
            assert name in message

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'LV08'"):
            model_by_name("LV8")

    def test_kwargs_forward_to_factory(self):
        model = model_by_name("tcp_fluid", max_window_bytes=2 ** 16)
        assert model.max_window_bytes == 2 ** 16

    def test_bad_kwargs_raise_value_error_listing_parameters(self):
        with pytest.raises(ValueError, match="max_window_bytes"):
            model_by_name("tcp_fluid", no_such_parameter=1)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(model_names()) >= {"CM02", "LV08", "tcp_fluid"}

    def test_names_are_sorted(self):
        assert list(model_names()) == sorted(model_names())

    def test_entries_expose_parameters_with_defaults(self):
        by_name = {entry.name: entry for entry in registered_models()}
        assert by_name["LV08"].parameters() == {"tcp_gamma": 4194304.0}
        tcp = by_name["tcp_fluid"].parameters()
        assert tcp["max_window_bytes"] == 4194304.0
        assert tcp["cubic_beta"] == 0.7

    def test_entries_carry_descriptions(self):
        for entry in registered_models():
            assert entry.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model("CM02", CM02)


class TestModelKey:
    def test_key_pins_every_parameter(self):
        assert model_key_of(LV08()) != model_key_of(CM02())
        assert (model_key_of(NetworkModel("LV08", bandwidth_factor=0.9))
                != model_key_of(LV08()))
        assert (model_key_of(TcpFluidModel(cubic_beta=0.5))
                != model_key_of(TcpFluidModel()))

    def test_equal_models_share_a_key(self):
        assert model_key_of(LV08()) == model_key_of(LV08())
        assert model_key_of(TcpFluidModel()) == model_key_of(TcpFluidModel())

    def test_keys_are_hashable(self):
        {model_key_of(m): m
         for m in (CM02(), LV08(), TcpFluidModel())}

    def test_keyless_objects_fall_back_to_repr(self):
        class Bare:
            def __repr__(self):
                return "Bare()"

        assert model_key_of(Bare()) == "Bare()"

    def test_time_varying_flags(self):
        assert not LV08().time_varying
        assert not CM02().time_varying
        assert TcpFluidModel().time_varying

    def test_models_are_immutable(self):
        for model in (LV08(), TcpFluidModel()):
            with pytest.raises(Exception):
                model.bandwidth_factor = 2.0


class TestProtocol:
    def test_network_model_is_a_sharing_model(self):
        assert isinstance(LV08(), SharingModel)
        assert isinstance(TcpFluidModel(), SharingModel)

    def test_abstract_hooks_raise_unimplemented(self):
        base = SharingModel()
        for hook in ("model_key",):
            with pytest.raises(NotImplementedError):
                getattr(base, hook)()
        for hook in ("startup_latency", "flow_weight", "rate_bound"):
            with pytest.raises(NotImplementedError):
                getattr(base, hook)(())
        with pytest.raises(NotImplementedError):
            base.effective_bandwidth(1.0)

    def test_static_models_have_no_dynamics(self):
        assert LV08().flow_dynamics(()) is None
