"""Topology builders."""

import pytest

from repro.simgrid.builder import (
    add_grouped_cluster,
    build_dumbbell,
    build_star_cluster,
    build_two_level_grid,
)
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.platform import Platform, SharingPolicy


class TestStarCluster:
    def test_host_count_and_names(self):
        p = build_star_cluster("c", 5)
        names = sorted(h.name for h in p.hosts())
        assert names == [f"c-{i}" for i in range(1, 6)]

    def test_full_mesh_routes(self):
        p = build_star_cluster("c", 4)
        for i in range(1, 5):
            for j in range(1, 5):
                if i != j:
                    route = p.route(f"c-{i}", f"c-{j}")
                    assert len(route) == 2

    def test_private_link_per_host(self):
        p = build_star_cluster("c", 3)
        assert sorted(l.name for l in p.links()) == [
            "c-1-link", "c-2-link", "c-3-link"]


class TestGroupedCluster:
    def test_graphene_like_numbering(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        names = sorted(h.name for h in p.hosts())
        assert names == ["g-1", "g-2", "g-3", "g-4", "g-5"]

    def test_intra_group_route_skips_uplink(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        route = p.route("g-1", "g-2")
        assert [u.link.name for u in route] == ["g-1-link", "g-2-link"]

    def test_inter_group_route_crosses_both_uplinks(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        route = p.route("g-1", "g-4")
        assert [u.link.name for u in route] == [
            "g-1-link", "g-uplink1", "g-uplink2", "g-4-link"]

    def test_uplink_policy_configurable(self):
        p = Platform("p")
        cluster = add_grouped_cluster(
            p, "g", (2, 2), uplink_policy=SharingPolicy.FULLDUPLEX
        )
        assert cluster.links["g-uplink1"].policy is SharingPolicy.FULLDUPLEX


class TestDumbbell:
    def test_cross_traffic_shares_bottleneck(self):
        p = build_dumbbell(2, 2, bottleneck_bandwidth="1Gbps")
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers(
            [("left-1", "right-1", 1e9), ("left-2", "right-2", 1e9)]
        )
        for comm in comms:
            assert comm.duration == pytest.approx(16.0, rel=1e-2)

    def test_same_side_pairs_bypass_bottleneck(self):
        p = build_dumbbell(2, 2)
        route = p.route("left-1", "left-2")
        assert all("bottleneck" not in u.link.name for u in route)


class TestTwoLevelGrid:
    def test_sites_and_backbone(self):
        p = build_two_level_grid({"a": 2, "b": 2, "c": 2})
        bb_links = [l for l in p.links() if l.name.startswith("bb-")]
        assert len(bb_links) == 3  # full mesh of 3 sites

    def test_cross_site_route_uses_backbone(self):
        p = build_two_level_grid({"a": 2, "b": 2})
        route = p.route("a-1", "b-2")
        assert [u.link.name for u in route] == ["a-1-link", "bb-a-b", "b-2-link"]

    def test_intra_site_route_stays_local(self):
        p = build_two_level_grid({"a": 3, "b": 2})
        route = p.route("a-1", "a-3")
        assert all(not u.link.name.startswith("bb-") for u in route)
