"""Topology builders."""

import pytest

from repro.simgrid.builder import (
    add_grouped_cluster,
    build_dragonfly,
    build_dumbbell,
    build_fat_tree,
    build_star_cluster,
    build_torus,
    build_two_level_grid,
)
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.platform import Direction, Platform, SharingPolicy


def assert_route_symmetric(platform, a: str, b: str) -> None:
    """``route(b, a)`` must be ``route(a, b)`` reversed, link by link, with
    every traversal direction flipped (exact for Full-routing platforms)."""
    forward = platform.route(a, b)
    backward = platform.route(b, a)
    assert [(u.link.name, u.direction) for u in backward] == [
        (u.link.name, u.direction.reversed()) for u in reversed(forward)
    ]


def assert_route_cost_symmetric(platform, a: str, b: str) -> None:
    """Dijkstra tie-breaking may pick different equal-cost paths per
    direction; latency, bottleneck and hop count must still agree."""
    forward = platform.route(a, b)
    backward = platform.route(b, a)
    assert len(forward) == len(backward)
    assert platform.route_latency(a, b) == pytest.approx(
        platform.route_latency(b, a), rel=1e-12
    )
    assert platform.route_bottleneck(a, b) == pytest.approx(
        platform.route_bottleneck(b, a), rel=1e-12
    )


class TestStarCluster:
    def test_host_count_and_names(self):
        p = build_star_cluster("c", 5)
        names = sorted(h.name for h in p.hosts())
        assert names == [f"c-{i}" for i in range(1, 6)]

    def test_full_mesh_routes(self):
        p = build_star_cluster("c", 4)
        for i in range(1, 5):
            for j in range(1, 5):
                if i != j:
                    route = p.route(f"c-{i}", f"c-{j}")
                    assert len(route) == 2

    def test_private_link_per_host(self):
        p = build_star_cluster("c", 3)
        assert sorted(l.name for l in p.links()) == [
            "c-1-link", "c-2-link", "c-3-link"]


class TestGroupedCluster:
    def test_graphene_like_numbering(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        names = sorted(h.name for h in p.hosts())
        assert names == ["g-1", "g-2", "g-3", "g-4", "g-5"]

    def test_intra_group_route_skips_uplink(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        route = p.route("g-1", "g-2")
        assert [u.link.name for u in route] == ["g-1-link", "g-2-link"]

    def test_inter_group_route_crosses_both_uplinks(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        route = p.route("g-1", "g-4")
        assert [u.link.name for u in route] == [
            "g-1-link", "g-uplink1", "g-uplink2", "g-4-link"]

    def test_uplink_policy_configurable(self):
        p = Platform("p")
        cluster = add_grouped_cluster(
            p, "g", (2, 2), uplink_policy=SharingPolicy.FULLDUPLEX
        )
        assert cluster.links["g-uplink1"].policy is SharingPolicy.FULLDUPLEX


class TestDumbbell:
    def test_cross_traffic_shares_bottleneck(self):
        p = build_dumbbell(2, 2, bottleneck_bandwidth="1Gbps")
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers(
            [("left-1", "right-1", 1e9), ("left-2", "right-2", 1e9)]
        )
        for comm in comms:
            assert comm.duration == pytest.approx(16.0, rel=1e-2)

    def test_same_side_pairs_bypass_bottleneck(self):
        p = build_dumbbell(2, 2)
        route = p.route("left-1", "left-2")
        assert all("bottleneck" not in u.link.name for u in route)


class TestTwoLevelGrid:
    def test_sites_and_backbone(self):
        p = build_two_level_grid({"a": 2, "b": 2, "c": 2})
        bb_links = [l for l in p.links() if l.name.startswith("bb-")]
        assert len(bb_links) == 3  # full mesh of 3 sites

    def test_cross_site_route_uses_backbone(self):
        p = build_two_level_grid({"a": 2, "b": 2})
        route = p.route("a-1", "b-2")
        assert [u.link.name for u in route] == ["a-1-link", "bb-a-b", "b-2-link"]

    def test_intra_site_route_stays_local(self):
        p = build_two_level_grid({"a": 3, "b": 2})
        route = p.route("a-1", "a-3")
        assert all(not u.link.name.startswith("bb-") for u in route)


class TestRouteSymmetry:
    """route(b, a) mirrors route(a, b) on every builder topology."""

    def test_star_cluster(self):
        p = build_star_cluster("c", 4)
        assert_route_symmetric(p, "c-1", "c-3")

    def test_grouped_cluster(self):
        p = Platform("p")
        add_grouped_cluster(p, "g", (3, 2))
        assert_route_symmetric(p, "g-1", "g-2")   # intra-group
        assert_route_symmetric(p, "g-1", "g-4")   # inter-group

    def test_dumbbell(self):
        p = build_dumbbell(2, 2)
        assert_route_symmetric(p, "left-1", "right-2")
        assert_route_symmetric(p, "left-1", "left-2")

    def test_two_level_grid(self):
        p = build_two_level_grid({"a": 2, "b": 2})
        assert_route_symmetric(p, "a-1", "b-2")
        assert_route_symmetric(p, "a-1", "a-2")

    def test_fat_tree(self):
        p = build_fat_tree(4)
        assert_route_cost_symmetric(p, "ft-1", "ft-16")   # cross-pod
        assert_route_cost_symmetric(p, "ft-1", "ft-2")    # same edge
        assert_route_cost_symmetric(p, "ft-1", "ft-3")    # same pod

    def test_torus(self):
        p = build_torus((3, 3))
        assert_route_cost_symmetric(p, "torus-0-0", "torus-2-2")
        assert_route_cost_symmetric(p, "torus-0-0", "torus-0-1")

    def test_dragonfly(self):
        p = build_dragonfly(3, 2, 2)
        assert_route_cost_symmetric(p, "dfly-1", "dfly-12")  # cross-group
        assert_route_cost_symmetric(p, "dfly-1", "dfly-2")   # same router


class TestFatTree:
    def test_element_counts(self):
        # k-ary fat tree: k³/4 hosts, (k/2)² cores, k·k/2 edges and aggs,
        # and 3·k³/4 links (host, edge-agg, agg-core — k³/4 each)
        for k in (2, 4, 6):
            p = build_fat_tree(k)
            assert len(p.hosts()) == k**3 // 4
            assert len(p.routers()) == (k // 2) ** 2 + k * (k // 2) * 2
            assert len(p.links()) == 3 * k**3 // 4

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(3)

    def test_cross_pod_route_climbs_to_core(self):
        p = build_fat_tree(4)
        route = [u.link.name for u in p.route("ft-1", "ft-16")]
        assert len(route) == 6  # host + edge-agg + agg-core, both sides
        assert any("-c" in name for name in route)

    def test_same_edge_route_stays_local(self):
        p = build_fat_tree(4)
        route = [u.link.name for u in p.route("ft-1", "ft-2")]
        assert route == ["ft-1-link", "ft-2-link"]

    def test_transfers_complete(self):
        p = build_fat_tree(4)
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers([("ft-1", "ft-16", 1e8)])
        assert comms[0].duration > 0


class TestTorus:
    def test_element_counts(self):
        # every node owns one +1 link per dimension; size-2 dimensions skip
        # the duplicate wraparound
        p = build_torus((4, 4))
        assert len(p.hosts()) == 16
        assert len(p.links()) == 32
        p3 = build_torus((2, 3))
        assert len(p3.hosts()) == 6
        assert len(p3.links()) == 3 + 6  # dim0 (size 2): 3, dim1 (size 3): 6

    def test_three_dimensional(self):
        p = build_torus((3, 3, 3))
        assert len(p.hosts()) == 27
        assert len(p.links()) == 3 * 27

    def test_wraparound_shortens_routes(self):
        p = build_torus((5, 5))
        # 0 -> 4 is one wraparound hop, not four forward hops
        assert len(p.route("torus-0-0", "torus-4-0")) == 1

    def test_degenerate_dims_rejected(self):
        with pytest.raises(ValueError):
            build_torus((1, 4))
        with pytest.raises(ValueError):
            build_torus(())

    def test_transfers_complete(self):
        p = build_torus((3, 3))
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers([("torus-0-0", "torus-2-2", 1e8)])
        assert comms[0].duration > 0


class TestDragonfly:
    def test_element_counts(self):
        g, r, h = 4, 3, 2
        p = build_dragonfly(g, r, h)
        assert len(p.hosts()) == g * r * h
        assert len(p.routers()) == g * r
        # host links + local all-to-all per group + one global per group pair
        assert len(p.links()) == g * r * h + g * r * (r - 1) // 2 + g * (g - 1) // 2

    def test_cross_group_route_uses_one_global_link(self):
        p = build_dragonfly(4, 3, 2)
        for dst in range(7, 25):  # every host outside group 0
            route = [u.link.name for u in p.route("dfly-1", f"dfly-{dst}")]
            assert sum("global" in name for name in route) == 1

    def test_same_router_route_is_two_hops(self):
        p = build_dragonfly(4, 3, 2)
        assert len(p.route("dfly-1", "dfly-2")) == 2

    def test_degenerate_shapes_rejected(self):
        with pytest.raises(ValueError):
            build_dragonfly(1, 3, 2)
        with pytest.raises(ValueError):
            build_dragonfly(4, 0, 2)

    def test_transfers_complete(self):
        p = build_dragonfly(3, 2, 2)
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers([("dfly-1", "dfly-12", 1e8)])
        assert comms[0].duration > 0
