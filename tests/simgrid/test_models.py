"""Network models: factors, weights, bounds."""

import math

import pytest

from repro.simgrid.models import CM02, LV08, model_by_name
from repro.simgrid.platform import Direction, Link, LinkUse, SharingPolicy


def route(*links):
    return [LinkUse(l, Direction.UP) for l in links]


class TestConstants:
    def test_lv08_published_values(self):
        model = LV08()
        assert model.bandwidth_factor == pytest.approx(0.97)
        assert model.latency_factor == pytest.approx(13.01)
        assert model.weight_S == pytest.approx(20537.0)
        assert model.tcp_gamma == pytest.approx(4194304.0)

    def test_cm02_is_uncorrected(self):
        model = CM02()
        assert model.bandwidth_factor == 1.0
        assert model.latency_factor == 1.0
        assert model.weight_S == 0.0

    def test_registry(self):
        assert model_by_name("LV08").name == "LV08"
        assert model_by_name("CM02").name == "CM02"
        with pytest.raises(ValueError):
            model_by_name("NS3")

    def test_with_gamma(self):
        model = LV08().with_gamma(8388608)
        assert model.tcp_gamma == 8388608
        assert model.latency_factor == pytest.approx(13.01)


class TestRouteQuantities:
    def test_startup_latency_scales_by_factor(self):
        l1 = Link("l1", 1e8, 1e-4)
        l2 = Link("l2", 1e9, 2.25e-3)
        model = LV08()
        assert model.startup_latency(route(l1, l2)) == pytest.approx(
            13.01 * 2.35e-3
        )

    def test_cm02_startup_latency_is_raw(self):
        l1 = Link("l1", 1e8, 1e-3)
        assert CM02().startup_latency(route(l1)) == pytest.approx(1e-3)

    def test_flow_weight_includes_weight_s_term(self):
        link = Link("l", 1.25e8, 1e-4)
        model = LV08()
        expected = 1e-4 + 20537.0 / 1.25e8
        assert model.flow_weight(route(link)) == pytest.approx(expected)

    def test_flow_weight_zero_latency_clamped(self):
        link = Link("l", 1.25e8, 0.0)
        assert CM02().flow_weight(route(link)) > 0.0

    def test_gamma_rate_bound(self):
        link = Link("l", 1.25e9, 2.25e-3)
        model = LV08()
        assert model.rate_bound(route(link)) == pytest.approx(
            4194304.0 / (2 * 2.25e-3)
        )

    def test_gamma_disabled_means_unbounded(self):
        link = Link("l", 1.25e9, 2.25e-3)
        assert math.isinf(CM02().rate_bound(route(link)))

    def test_zero_latency_route_unbounded_by_gamma(self):
        link = Link("l", 1.25e9, 0.0)
        assert math.isinf(LV08().rate_bound(route(link)))

    def test_fatpipe_contributes_to_bound_not_constraint(self):
        fat = Link("fat", 1e9, 1e-3, policy=SharingPolicy.FATPIPE)
        model = LV08()
        bound = model.rate_bound(route(fat))
        assert bound <= 0.97 * 1e9

    def test_effective_bandwidth(self):
        assert LV08().effective_bandwidth(1.25e8) == pytest.approx(0.97 * 1.25e8)
