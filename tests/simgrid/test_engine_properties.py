"""Kernel-level invariants checked over randomized transfer sets."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simgrid.builder import build_star_cluster, build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02, LV08

HOSTS = [f"net-{i}" for i in range(1, 7)]


@st.composite
def transfer_sets(draw):
    n = draw(st.integers(1, 8))
    transfers = []
    for _ in range(n):
        src_i = draw(st.integers(1, 6))
        dst_i = draw(st.integers(1, 6).filter(lambda x: x != src_i))
        size = draw(st.floats(1e4, 1e10))
        transfers.append((f"net-{src_i}", f"net-{dst_i}", size))
    return transfers


def fresh_platform():
    return build_star_cluster("net", 6)


class TestInvariants:
    @given(transfer_sets())
    @settings(max_examples=80, deadline=None)
    def test_durations_positive_and_finite(self, transfers):
        sim = Simulation(fresh_platform(), LV08())
        comms = sim.simulate_transfers(transfers)
        for comm in comms:
            assert math.isfinite(comm.duration)
            assert comm.duration > 0

    @given(transfer_sets())
    @settings(max_examples=80, deadline=None)
    def test_duration_at_least_ideal(self, transfers):
        # no transfer can beat its unshared bottleneck time + latency phase
        platform = fresh_platform()
        sim = Simulation(platform, LV08())
        model = sim.model
        comms = sim.simulate_transfers(transfers)
        for (src, dst, size), comm in zip(transfers, comms):
            route = platform.route(src, dst)
            ideal = model.startup_latency(route) + size / min(
                model.effective_bandwidth(u.link.bandwidth) for u in route
            )
            assert comm.duration >= ideal * (1 - 1e-9)

    @given(transfer_sets())
    @settings(max_examples=60, deadline=None)
    def test_makespan_bounded_by_serialization(self, transfers):
        # full contention cannot be slower than running everything one by one
        platform = fresh_platform()
        sim = Simulation(platform, CM02())
        comms = sim.simulate_transfers(transfers)
        makespan = max(c.finish_time for c in comms)
        serial = 0.0
        for src, dst, size in transfers:
            route = platform.route(src, dst)
            serial += sum(u.link.latency for u in route) + size / min(
                u.link.bandwidth for u in route
            )
        assert makespan <= serial * (1 + 1e-6)

    @given(transfer_sets())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, transfers):
        d1 = [c.duration for c in
              Simulation(fresh_platform(), LV08()).simulate_transfers(transfers)]
        d2 = [c.duration for c in
              Simulation(fresh_platform(), LV08()).simulate_transfers(transfers)]
        assert d1 == d2

    @given(st.integers(1, 4), st.floats(1e6, 1e9))
    @settings(max_examples=60, deadline=None)
    def test_single_bottleneck_monotone_in_flow_count(self, n, size):
        # on ONE shared constraint (a destination NIC) max-min is monotone:
        # adding a flow never speeds up the others
        def durations(count):
            transfers = [(f"net-{i + 1}", "net-6", size) for i in range(count)]
            return [c.duration for c in
                    Simulation(fresh_platform(), CM02()).simulate_transfers(transfers)]

        base = durations(n)
        more = durations(n + 1)
        for before, after in zip(base, more):
            assert after >= before * (1 - 1e-9)

    def test_multi_bottleneck_nonmonotonicity_is_real(self):
        # Documented max-min behaviour (found by hypothesis): adding a flow
        # can SPEED UP a third flow by squeezing its competitor on another
        # link.  Here net-3->net-1 gains when net-1->net-2 traffic doubles,
        # because net-3->net-2 loses share on the net-2 NIC.
        transfers = [("net-1", "net-2", 1e4), ("net-3", "net-1", 1e4),
                     ("net-3", "net-2", 1e4)]
        base = Simulation(fresh_platform(), CM02()).simulate_transfers(transfers)
        more = Simulation(fresh_platform(), CM02()).simulate_transfers(
            transfers + [("net-1", "net-2", 1e4)]
        )
        assert more[1].duration < base[1].duration  # the bystander speeds up
        assert more[2].duration > base[2].duration  # its competitor slows down

    @given(st.floats(1e5, 1e10), st.floats(1.1, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_size(self, size, factor):
        p = fresh_platform()
        small = Simulation(p, LV08()).simulate_transfers(
            [("net-1", "net-2", size)])[0].duration
        big = Simulation(p, LV08()).simulate_transfers(
            [("net-1", "net-2", size * factor)])[0].duration
        assert big > small

    @given(transfer_sets())
    @settings(max_examples=40, deadline=None)
    def test_grid_platform_invariants_hold_too(self, transfers):
        platform = build_two_level_grid({"a": 3, "b": 3})
        renamed = [
            (f"a-{int(s.split('-')[1]) % 3 + 1}", f"b-{int(d.split('-')[1]) % 3 + 1}", z)
            for s, d, z in transfers
        ]
        comms = Simulation(platform, LV08()).simulate_transfers(renamed)
        assert all(math.isfinite(c.duration) and c.duration > 0 for c in comms)
