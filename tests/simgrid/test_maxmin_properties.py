"""Property-based tests of the max-min solver front-ends.

Random systems (hypothesis-generated) must satisfy the defining max-min
invariants regardless of how they were built:

- no constraint consumes over its capacity,
- every variable not limited by its own bound is blocked by at least one
  saturated constraint (otherwise the allocation is not Pareto-max-min),
- allocations are independent of variable insertion order,
- an incrementally-built :class:`SharingSystem` (adds and removes in any
  order) agrees with a from-scratch solve of the same final system, and a
  solve with an empty dirty set re-solves nothing.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simgrid.maxmin import MaxMinSystem, SharingSystem

TOL = 1e-9


@st.composite
def sharing_problem(draw):
    """A random sharing problem plus a removal subset.

    Returns (variables, capacities, remove_idx) where each variable is
    (weight, bound-or-None, [(constraint index, coefficient), ...]).
    """
    n_cons = draw(st.integers(1, 6))
    capacities = draw(
        st.lists(st.floats(1.0, 1000.0), min_size=n_cons, max_size=n_cons)
    )
    n_vars = draw(st.integers(1, 14))
    variables = []
    for _ in range(n_vars):
        weight = draw(st.floats(0.01, 100.0))
        bound = draw(st.one_of(st.none(), st.floats(0.1, 1000.0)))
        members = draw(st.lists(st.integers(0, n_cons - 1), max_size=3))
        uses = [(ci, draw(st.floats(0.5, 3.0))) for ci in sorted(set(members))]
        variables.append((weight, bound, uses))
    remove_idx = draw(
        st.lists(st.integers(0, n_vars - 1), max_size=n_vars, unique=True)
    )
    return variables, capacities, remove_idx


def build_sharing(variables, capacities):
    system = SharingSystem()
    vids = []
    for i, (weight, bound, uses) in enumerate(variables):
        usages = tuple(
            (("cons", ci), capacities[ci], coeff) for ci, coeff in uses
        )
        vids.append(
            system.add_variable(weight, bound=bound, payload=i, usages=usages)
        )
    system.solve()
    return system, vids


class TestMaxMinInvariants:
    @given(sharing_problem())
    @settings(max_examples=150, deadline=None)
    def test_no_constraint_over_capacity(self, problem):
        variables, capacities, _ = problem
        system, _ = build_sharing(variables, capacities)
        assert system.is_feasible(tolerance=1e-6)

    @given(sharing_problem())
    @settings(max_examples=150, deadline=None)
    def test_unbounded_variables_blocked_by_saturated_constraint(self, problem):
        variables, capacities, _ = problem
        system, vids = build_sharing(variables, capacities)
        for (weight, bound, uses), vid in zip(variables, vids):
            value = system.value(vid)
            if not math.isfinite(value):
                assert bound is None and not uses
                continue
            at_bound = bound is not None and value >= bound * (1 - 1e-6)
            saturated = any(
                system.constraint_usage(("cons", ci))
                >= system.constraint_capacity(("cons", ci)) * (1 - 1e-6)
                for ci, _ in uses
            )
            assert at_bound or saturated, (
                f"variable {vid} (value {value}) neither at bound nor on a "
                f"saturated constraint"
            )

    @given(sharing_problem(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_insertion_order_independence(self, problem, rand):
        variables, capacities, _ = problem
        system_a, vids_a = build_sharing(variables, capacities)
        shuffled = list(enumerate(variables))
        rand.shuffle(shuffled)
        system_b = SharingSystem()
        vids_b = {}
        for original_idx, (weight, bound, uses) in shuffled:
            usages = tuple(
                (("cons", ci), capacities[ci], coeff) for ci, coeff in uses
            )
            vids_b[original_idx] = system_b.add_variable(
                weight, bound=bound, payload=original_idx, usages=usages
            )
        system_b.solve()
        for i, vid_a in enumerate(vids_a):
            value_a = system_a.value(vid_a)
            value_b = system_b.value(vids_b[i])
            if math.isinf(value_a):
                assert math.isinf(value_b)
            else:
                assert value_b == pytest.approx(value_a, rel=TOL, abs=TOL)


class TestIncrementalAgainstScratch:
    @given(sharing_problem())
    @settings(max_examples=100, deadline=None)
    def test_removals_match_fresh_build(self, problem):
        variables, capacities, remove_idx = problem
        system, vids = build_sharing(variables, capacities)
        removed = set(remove_idx)
        for i in remove_idx:
            system.remove_variable(vids[i])
        system.solve()

        survivors = [v for i, v in enumerate(variables) if i not in removed]
        fresh, fresh_vids = build_sharing(survivors, capacities)
        fresh_values = [fresh.value(v) for v in fresh_vids]
        kept_values = [
            system.value(v) for i, v in enumerate(vids) if i not in removed
        ]
        assert len(kept_values) == len(fresh_values)
        for incremental, scratch in zip(kept_values, fresh_values):
            if math.isinf(scratch):
                assert math.isinf(incremental)
            else:
                assert incremental == pytest.approx(scratch, rel=TOL, abs=TOL)

    @given(sharing_problem())
    @settings(max_examples=60, deadline=None)
    def test_clean_solve_is_a_no_op(self, problem):
        variables, capacities, _ = problem
        system, vids = build_sharing(variables, capacities)
        resolved_before = system.stats["variables_resolved"]
        assert system.solve() == []
        assert system.stats["variables_resolved"] == resolved_before

    @given(sharing_problem())
    @settings(max_examples=60, deadline=None)
    def test_full_solve_matches_incremental_state(self, problem):
        variables, capacities, remove_idx = problem
        system, vids = build_sharing(variables, capacities)
        for i in remove_idx:
            system.remove_variable(vids[i])
        system.solve()
        before = dict(system.allocations())
        system.solve(full=True)
        after = dict(system.allocations())
        assert set(before) == set(after)
        for payload, value in before.items():
            if math.isinf(value):
                assert math.isinf(after[payload])
            else:
                assert after[payload] == pytest.approx(value, rel=TOL, abs=TOL)

    @given(sharing_problem())
    @settings(max_examples=60, deadline=None)
    def test_matches_maxmin_system(self, problem):
        """Both front-ends allocate the same rates for the same system."""
        variables, capacities, _ = problem
        sharing, vids = build_sharing(variables, capacities)

        reference = MaxMinSystem()
        constraints = [reference.new_constraint(c) for c in capacities]
        ref_vars = []
        for weight, bound, uses in variables:
            var = reference.new_variable(weight=weight, bound=bound)
            for ci, coeff in uses:
                reference.expand(constraints[ci], var, coeff)
            ref_vars.append(var)
        reference.solve()

        for vid, ref in zip(vids, ref_vars):
            value = sharing.value(vid)
            if math.isinf(ref.value):
                assert math.isinf(value)
            else:
                assert value == pytest.approx(ref.value, rel=1e-6, abs=1e-6)


class TestArenaMechanics:
    def test_slot_reuse_after_removal(self):
        system = SharingSystem(initial_variables=2, initial_constraints=2)
        v1 = system.add_variable(1.0, usages=((("c", 0), 100.0, 1.0),))
        system.solve()
        system.remove_variable(v1)
        v2 = system.add_variable(1.0, usages=((("c", 1), 50.0, 1.0),))
        system.solve()
        assert v2 == v1  # freed slot reused
        assert system.variable_count == 1
        assert system.constraint_count == 1
        assert system.value(v2) == pytest.approx(50.0)

    def test_growth_preserves_state(self):
        system = SharingSystem(initial_variables=1, initial_constraints=1)
        vids = [
            system.add_variable(1.0, usages=((("c", i), 100.0, 1.0),))
            for i in range(20)
        ]
        system.solve()
        for vid in vids:
            assert system.value(vid) == pytest.approx(100.0)

    def test_shared_constraint_splits(self):
        system = SharingSystem()
        usage = ((("link", "up"), 100.0, 1.0),)
        v1 = system.add_variable(1.0, usages=usage)
        v2 = system.add_variable(1.0, usages=usage)
        system.solve()
        assert system.value(v1) == pytest.approx(50.0)
        assert system.value(v2) == pytest.approx(50.0)
        system.remove_variable(v1)
        updates = dict(system.solve())
        assert updates == {None: pytest.approx(100.0)}
        assert system.value(v2) == pytest.approx(100.0)

    def test_untouched_component_not_resolved(self):
        system = SharingSystem()
        a = system.add_variable(1.0, payload="a", usages=((("c", "a"), 10.0, 1.0),))
        b = system.add_variable(1.0, payload="b", usages=((("c", "b"), 20.0, 1.0),))
        system.solve()
        c = system.add_variable(1.0, payload="c", usages=((("c", "c"), 30.0, 1.0),))
        updates = system.solve()
        assert [payload for payload, _ in updates] == ["c"]
        assert system.value(a) == pytest.approx(10.0)
        assert system.value(b) == pytest.approx(20.0)

    def test_rejects_bad_inputs_with_context(self):
        system = SharingSystem()
        with pytest.raises(Exception, match=r"payload='flow'"):
            system.add_variable(-1.0, payload="flow")
        with pytest.raises(Exception, match=r"bound must be positive"):
            system.add_variable(1.0, bound=-2.0)
        with pytest.raises(Exception, match=r"key=\('c', 0\)"):
            system.add_variable(1.0, usages=((("c", 0), 10.0, -1.0),))
        with pytest.raises(Exception, match=r"capacity must be positive"):
            system.add_variable(1.0, usages=((("c", 0), 0.0, 1.0),))
