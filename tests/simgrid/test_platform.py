"""Platform model: construction rules, indexes, route declarations."""

import pytest

from repro.simgrid.platform import (
    AutonomousSystem,
    Direction,
    DuplicateNameError,
    Host,
    Link,
    LinkUse,
    NoRouteError,
    Platform,
    PlatformError,
    Router,
    SharingPolicy,
    UnknownElementError,
)


def make_simple():
    p = Platform("p")
    a = p.root.add_host("a")
    b = p.root.add_host("b")
    link = p.root.add_link("l", "1Gbps", "100us")
    p.root.add_route("a", "b", [link])
    return p, a, b, link


class TestLink:
    def test_parses_units(self):
        link = Link("l", "10Gbps", "2.25ms")
        assert link.bandwidth == pytest.approx(1.25e9)
        assert link.latency == pytest.approx(2.25e-3)

    def test_default_policy_is_shared(self):
        assert Link("l", 1e8).policy is SharingPolicy.SHARED

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(PlatformError):
            Link("l", 0.0)

    def test_shared_constraint_key_ignores_direction(self):
        link = Link("l", 1e8)
        assert link.constraint_key(Direction.UP) == link.constraint_key(Direction.DOWN)

    def test_fullduplex_constraint_key_per_direction(self):
        link = Link("l", 1e8, policy=SharingPolicy.FULLDUPLEX)
        assert link.constraint_key(Direction.UP) != link.constraint_key(Direction.DOWN)

    def test_linkuse_reversed(self):
        link = Link("l", 1e8)
        use = LinkUse(link, Direction.UP)
        assert use.reversed().direction is Direction.DOWN
        assert use.reversed().reversed() == use


class TestHostRouter:
    def test_host_attributes(self):
        host = Host("h", speed=2.4e9, cores=2)
        assert host.speed == 2.4e9
        assert host.cores == 2

    def test_host_rejects_bad_speed(self):
        with pytest.raises(PlatformError):
            Host("h", speed=-1)

    def test_host_rejects_zero_cores(self):
        with pytest.raises(PlatformError):
            Host("h", cores=0)

    def test_router_is_not_host(self):
        p = Platform("p")
        p.root.add_router("r")
        assert not p.has_host("r")
        with pytest.raises(UnknownElementError):
            p.host("r")


class TestRegistration:
    def test_duplicate_host_rejected(self):
        p = Platform("p")
        p.root.add_host("a")
        with pytest.raises(DuplicateNameError):
            p.root.add_host("a")

    def test_duplicate_link_rejected(self):
        p = Platform("p")
        p.root.add_link("l", 1e8)
        with pytest.raises(DuplicateNameError):
            p.root.add_link("l", 1e8)

    def test_duplicate_across_ases_rejected(self):
        p = Platform("p")
        p.root.add_host("a")
        child = AutonomousSystem("child")
        child.add_host("a")
        with pytest.raises(DuplicateNameError):
            p.root.add_child(child)

    def test_child_attaches_and_indexes(self):
        p = Platform("p")
        child = AutonomousSystem("child")
        child.add_host("x")
        p.root.add_child(child, gateway="x")
        assert p.host("x").name == "x"
        assert p.autonomous_system("child") is child

    def test_child_cannot_have_two_parents(self):
        p1, p2 = Platform("p1"), Platform("p2")
        child = AutonomousSystem("child")
        p1.root.add_child(child)
        with pytest.raises(PlatformError):
            p2.root.add_child(child)

    def test_unknown_lookups_raise(self):
        p = Platform("p")
        with pytest.raises(UnknownElementError):
            p.netpoint("ghost")
        with pytest.raises(UnknownElementError):
            p.link("ghost")
        with pytest.raises(UnknownElementError):
            p.autonomous_system("ghost")


class TestRoutes:
    def test_simple_route_resolves(self):
        p, a, b, link = make_simple()
        route = p.route("a", "b")
        assert [u.link.name for u in route] == ["l"]
        assert route[0].direction is Direction.UP

    def test_symmetrical_reverse_auto_declared(self):
        p, a, b, link = make_simple()
        back = p.route("b", "a")
        assert [u.link.name for u in back] == ["l"]
        assert back[0].direction is Direction.DOWN

    def test_asymmetrical_route_missing_reverse(self):
        p = Platform("p")
        p.root.add_host("a")
        p.root.add_host("b")
        link = p.root.add_link("l", 1e8)
        p.root.add_route("a", "b", [link], symmetrical=False)
        assert p.route("a", "b")
        with pytest.raises(NoRouteError):
            p.route("b", "a")

    def test_route_to_self_is_empty(self):
        p, *_ = make_simple()
        assert p.route("a", "a") == []

    def test_route_to_unknown_element_rejected_at_declaration(self):
        p = Platform("p")
        p.root.add_host("a")
        link = p.root.add_link("l", 1e8)
        with pytest.raises(UnknownElementError):
            p.root.add_route("a", "ghost", [link])

    def test_self_route_rejected(self):
        p = Platform("p")
        p.root.add_host("a")
        with pytest.raises(PlatformError):
            p.root.add_route("a", "a", [])

    def test_duplicate_route_rejected(self):
        p, a, b, link = make_simple()
        with pytest.raises(DuplicateNameError):
            p.root.add_route("a", "b", [link])

    def test_route_latency_and_bottleneck(self):
        p = Platform("p")
        p.root.add_host("a")
        p.root.add_host("b")
        l1 = p.root.add_link("l1", "10Gbps", "1ms")
        l2 = p.root.add_link("l2", "1Gbps", "2ms")
        p.root.add_route("a", "b", [l1, l2])
        assert p.route_latency("a", "b") == pytest.approx(3e-3)
        assert p.route_bottleneck("a", "b") == pytest.approx(1.25e8)

    def test_route_cache_invalidation(self):
        p = Platform("p")
        p.root.add_host("a")
        p.root.add_host("b")
        p.root.add_host("c")
        l1 = p.root.add_link("l1", 1e8)
        p.root.add_route("a", "b", [l1])
        assert len(p.route("a", "b")) == 1  # cached now
        l2 = p.root.add_link("l2", 1e8)
        p.root.add_route("a", "c", [l1, l2])  # invalidates the cache
        assert len(p._route_cache) == 0
        # both old and new routes resolve after invalidation
        assert len(p.route("a", "b")) == 1
        assert [u.link.name for u in p.route("a", "c")] == ["l1", "l2"]

    def test_mutating_link_attributes_affects_resolved_routes(self):
        p, a, b, link = make_simple()
        route = p.route("a", "b")
        link.latency = 0.5
        assert route[0].link.latency == 0.5
        assert p.route_latency("a", "b") == 0.5


class TestHierarchicalRouting:
    def build_two_sites(self):
        p = Platform("grid")
        for site in ("lyon", "nancy"):
            as_ = AutonomousSystem(f"AS_{site}")
            p.root.add_child(as_, gateway=f"gw-{site}")
            as_.add_router(f"gw-{site}")
            host = as_.add_host(f"{site}-1")
            link = as_.add_link(f"{site}-1-link", "1Gbps", "100us")
            as_.add_route(f"{site}-1", f"gw-{site}", [link])
        bb = p.root.add_link("bb", "10Gbps", "2.25ms",
                             policy=SharingPolicy.FULLDUPLEX)
        p.root.add_route("AS_lyon", "AS_nancy", [bb])
        return p

    def test_cross_as_route_stitches_through_gateways(self):
        p = self.build_two_sites()
        route = p.route("lyon-1", "nancy-1")
        assert [u.link.name for u in route] == ["lyon-1-link", "bb", "nancy-1-link"]
        assert [u.direction for u in route] == [
            Direction.UP, Direction.UP, Direction.DOWN]

    def test_reverse_cross_as_route_is_mirrored(self):
        p = self.build_two_sites()
        forward = p.route("lyon-1", "nancy-1")
        back = p.route("nancy-1", "lyon-1")
        assert [u.link.name for u in back] == [u.link.name for u in reversed(forward)]
        assert all(
            b.direction is f.direction.reversed()
            for b, f in zip(back, reversed(forward))
        )

    def test_explicit_gateways_override_default(self):
        p = Platform("p")
        child = AutonomousSystem("child")
        p.root.add_child(child, gateway="r1")
        r1 = child.add_router("r1")
        r2 = child.add_router("r2")
        h = child.add_host("h")
        l1 = child.add_link("l1", 1e8)
        l2 = child.add_link("l2", 1e8)
        child.add_route("h", "r1", [l1])
        child.add_route("h", "r2", [l2])
        out = p.root.add_host("out")
        bb = p.root.add_link("bb", 1e9)
        p.root.add_route("child", "out", [bb], gw_src="r2")
        route = p.route("h", "out")
        assert [u.link.name for u in route] == ["l2", "bb"]

    def test_missing_gateway_raises(self):
        p = Platform("p")
        child = AutonomousSystem("child")
        p.root.add_child(child)  # no gateway
        child.add_host("h")
        out = p.root.add_host("out")
        bb = p.root.add_link("bb", 1e9)
        p.root.add_route("child", "out", [bb])
        with pytest.raises(NoRouteError, match="gateway"):
            p.route("h", "out")

    def test_three_level_nesting(self):
        p = Platform("p")
        site = AutonomousSystem("site")
        p.root.add_child(site, gateway="site-gw")
        site.add_router("site-gw")
        rack = AutonomousSystem("rack")
        site.add_child(rack, gateway="rack-gw")
        rack.add_router("rack-gw")
        h = rack.add_host("h")
        hl = rack.add_link("hl", 1e8)
        rack.add_route("h", "rack-gw", [hl])
        up = site.add_link("up", 1e9)
        site.add_route("rack", "site-gw", [up])
        out = p.root.add_host("out")
        bb = p.root.add_link("bb", 1e9)
        p.root.add_route("site", "out", [bb])
        assert [u.link.name for u in p.route("h", "out")] == ["hl", "up", "bb"]


class TestDijkstraRouting:
    def build(self):
        p = Platform("p", routing="Dijkstra")
        as_ = p.root
        for name in ("a", "b"):
            as_.add_host(name)
        for name in ("s1", "s2"):
            as_.add_router(name)
        la = as_.add_link("la", 1e8, "10us")
        lb = as_.add_link("lb", 1e8, "10us")
        mid = as_.add_link("mid", 1e9, "10us")
        slow = as_.add_link("slow", 1e9, "10ms")
        as_.add_connection("a", "s1", la)
        as_.add_connection("b", "s2", lb)
        as_.add_connection("s1", "s2", mid)
        as_.add_connection("a", "s2", slow)  # direct but high latency
        return p

    def test_shortest_path_by_latency(self):
        p = self.build()
        assert [u.link.name for u in p.route("a", "b")] == ["la", "mid", "lb"]

    def test_direction_of_reverse_traversal(self):
        p = self.build()
        back = p.route("b", "a")
        names_dirs = [(u.link.name, u.direction) for u in back]
        assert names_dirs == [
            ("lb", Direction.UP), ("mid", Direction.DOWN), ("la", Direction.DOWN)]

    def test_no_path_raises(self):
        p = Platform("p", routing="Dijkstra")
        p.root.add_host("a")
        p.root.add_host("b")
        with pytest.raises(NoRouteError):
            p.route("a", "b")

    def test_connection_requires_dijkstra_mode(self):
        p = Platform("p", routing="Full")
        p.root.add_host("a")
        p.root.add_host("b")
        link = p.root.add_link("l", 1e8)
        with pytest.raises(PlatformError):
            p.root.add_connection("a", "b", link)

    def test_multi_link_edge(self):
        p = Platform("p", routing="Dijkstra")
        p.root.add_host("a")
        p.root.add_host("b")
        port = p.root.add_link("port", 1e8, "10us")
        backplane = p.root.add_link("bp", 1e10, 0.0)
        p.root.add_connection("a", "b", [port, backplane])
        route = p.route("a", "b")
        assert [u.link.name for u in route] == ["port", "bp"]
        back = p.route("b", "a")
        assert [u.link.name for u in back] == ["bp", "port"]
        assert all(u.direction is Direction.DOWN for u in back)

    def test_dijkstra_matches_networkx(self):
        import networkx as nx

        p = self.build()
        g = nx.Graph()
        for name, latency in (("la", 1e-5), ("lb", 1e-5), ("mid", 1e-5),
                              ("slow", 1e-2)):
            pass
        g.add_edge("a", "s1", weight=1e-5)
        g.add_edge("b", "s2", weight=1e-5)
        g.add_edge("s1", "s2", weight=1e-5)
        g.add_edge("a", "s2", weight=1e-2)
        expected = nx.shortest_path(g, "a", "b", weight="weight")
        route = p.route("a", "b")
        assert len(route) == len(expected) - 1


class TestRouteCache:
    def _mesh(self, n=4, cache_size=131072):
        from repro.simgrid.platform import Platform as P

        p = P("mesh", route_cache_size=cache_size)
        hosts = [p.root.add_host(f"h{i}") for i in range(n)]
        links = {}
        for i in range(n):
            for j in range(i + 1, n):
                links[(i, j)] = p.root.add_link(f"l{i}-{j}", 1e8)
                p.root.add_route(f"h{i}", f"h{j}", [links[(i, j)]])
        return p

    def test_hits_and_misses_counted(self):
        p = self._mesh()
        info = p.route_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0
        p.route("h0", "h1")
        p.route("h0", "h1")
        p.route("h0", "h2")
        info = p.route_cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 1
        assert info["size"] == 2

    def test_cached_route_is_reused_object(self):
        p = self._mesh()
        first = p.route("h0", "h1")
        assert p.route("h0", "h1") is first

    def test_lru_eviction_bounds_size(self):
        p = self._mesh(cache_size=3)
        pairs = [("h0", "h1"), ("h0", "h2"), ("h0", "h3"), ("h1", "h2")]
        for a, b in pairs:
            p.route(a, b)
        info = p.route_cache_info()
        assert info["size"] == 3
        assert info["evictions"] == 1
        # the oldest entry (h0->h1) was evicted: re-resolving is a miss
        misses_before = info["misses"]
        p.route("h0", "h1")
        assert p.route_cache_info()["misses"] == misses_before + 1

    def test_lru_recency_refresh(self):
        p = self._mesh(cache_size=2)
        p.route("h0", "h1")
        p.route("h0", "h2")
        p.route("h0", "h1")          # refresh: h0->h2 is now the LRU entry
        p.route("h0", "h3")          # evicts h0->h2
        misses_before = p.route_cache_info()["misses"]
        p.route("h0", "h1")          # still cached
        assert p.route_cache_info()["misses"] == misses_before

    def test_invalidation_clears_but_keeps_counters(self):
        p = self._mesh()
        p.route("h0", "h1")
        p.invalidate_route_cache()
        info = p.route_cache_info()
        assert info["size"] == 0
        assert info["misses"] == 1

    def test_rejects_nonpositive_cache_size(self):
        from repro.simgrid.platform import PlatformError, RouteCache

        with pytest.raises(PlatformError):
            RouteCache(maxsize=0)

    def test_model_spec_memo_invalidated_by_link_mutation(self):
        from repro.simgrid.models import LV08

        p = self._mesh()
        model = LV08()
        route = p.route("h0", "h1")
        startup_before = model.comm_spec(route)[0]
        route[0].link.latency = route[0].link.latency * 10
        startup_after = model.comm_spec(route)[0]
        assert startup_after == pytest.approx(startup_before * 10)


class TestRouteTableAccounting:
    def test_counts_all_as_levels(self):
        p = Platform("p")
        child = AutonomousSystem("child")
        p.root.add_child(child, gateway="r")
        child.add_router("r")
        h = child.add_host("h")
        link = child.add_link("l", 1e8)
        child.add_route("h", "r", [link])
        out = p.root.add_host("out")
        bb = p.root.add_link("bb", 1e8)
        p.root.add_route("child", "out", [bb])
        # each symmetrical declaration creates 2 entries
        assert p.total_route_table_entries() == 4
