"""Sharing semantics that the paper's numbers depend on.

These tests pin the behaviours behind the §IV-C2 worked example and the
figure mechanisms: RTT-biased shares on a common NIC, FATPIPE links,
SHARED-uplink contention growth, and the weight_S term.
"""

import math

import pytest

from repro.simgrid.builder import add_grouped_cluster, build_star_cluster
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02, LV08, NetworkModel
from repro.simgrid.platform import (
    Direction,
    LinkUse,
    Platform,
    SharingPolicy,
)


class TestRttBias:
    def build(self):
        # one source with two destinations: one nearby, one far (high-latency
        # link) — the §IV-C2 example's structure
        p = Platform("p")
        src = p.root.add_host("src")
        near = p.root.add_host("near")
        far = p.root.add_host("far")
        src_link = p.root.add_link("src-link", "1Gbps", "100us")
        near_link = p.root.add_link("near-link", "1Gbps", "100us",
                                    policy=SharingPolicy.FULLDUPLEX)
        wan = p.root.add_link("wan", "10Gbps", "2.25ms",
                              policy=SharingPolicy.FULLDUPLEX)
        far_link = p.root.add_link("far-link", "1Gbps", "100us",
                                   policy=SharingPolicy.FULLDUPLEX)
        p.root.add_route("src", "near", [src_link, near_link])
        p.root.add_route("src", "far", [src_link, wan, far_link])
        return p

    def test_local_flow_wins_the_shared_nic(self):
        # "bandwidth allocated to flows competing on a bottleneck link is
        # inversely proportional to the flows' round trip time" (§IV-A)
        p = self.build()
        sim = Simulation(p, LV08())
        comms = sim.simulate_transfers(
            [("src", "far", 5e8), ("src", "near", 5e8)]
        )
        far_comm, near_comm = comms
        assert near_comm.duration < far_comm.duration
        # the local flow should get the lion's share initially: its
        # completion is within ~25% of running alone
        alone = Simulation(self.build(), LV08()).simulate_transfers(
            [("src", "near", 5e8)]
        )[0]
        assert near_comm.duration < alone.duration * 1.35

    def test_share_ratio_matches_weight_ratio(self):
        p = self.build()
        model = LV08()
        w_near = model.flow_weight(p.route("src", "near"))
        w_far = model.flow_weight(p.route("src", "far"))
        assert w_far > 4 * w_near  # the latency asymmetry dominates


class TestFatpipe:
    def test_fatpipe_never_aggregates(self):
        p = Platform("p")
        a, b, c, d = (p.root.add_host(n) for n in "abcd")
        la = p.root.add_link("la", "10Gbps", "1us", policy=SharingPolicy.FULLDUPLEX)
        lb = p.root.add_link("lb", "10Gbps", "1us", policy=SharingPolicy.FULLDUPLEX)
        lc = p.root.add_link("lc", "10Gbps", "1us", policy=SharingPolicy.FULLDUPLEX)
        ld = p.root.add_link("ld", "10Gbps", "1us", policy=SharingPolicy.FULLDUPLEX)
        fat = p.root.add_link("fat", "1Gbps", "1ms", policy=SharingPolicy.FATPIPE)
        p.root.add_route("a", "b", [la, fat, lb])
        p.root.add_route("c", "d", [lc, fat, ld])
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers([("a", "b", 1e9), ("c", "d", 1e9)])
        # both flows individually capped at the fatpipe rate, no sharing
        for comm in comms:
            assert comm.duration == pytest.approx(1e-3 * 3 + 8.0, rel=1e-2)


class TestSharedUplinkMechanism:
    """The documented g5k_test artifact at builder level (DESIGN.md §3)."""

    def build(self, uplink_policy):
        p = Platform("p")
        add_grouped_cluster(p, "g", (12, 12), uplink_policy=uplink_policy,
                            host_policy=SharingPolicy.FULLDUPLEX)
        return p

    def transfers(self):
        # 6 flows group1 -> group2 and 6 flows group2 -> group1: 12 Gbps of
        # combined demand — a half-duplex 10G uplink binds (each uplink
        # carries all 12 flow-traversals on ONE constraint), while a
        # full-duplex uplink sees only 6 Gbps per direction
        fwd = [(f"g-{i}", f"g-{i + 12}", 1e9) for i in (1, 2, 3, 4, 5, 6)]
        back = [(f"g-{i + 12}", f"g-{i}", 1e9) for i in (7, 8, 9, 10, 11, 12)]
        return fwd + back

    def median_duration(self, policy):
        sim = Simulation(self.build(policy), CM02())
        durations = sorted(
            c.duration for c in sim.simulate_transfers(self.transfers())
        )
        return durations[len(durations) // 2]

    def test_shared_uplink_slower_than_fullduplex(self):
        shared = self.median_duration(SharingPolicy.SHARED)
        duplex = self.median_duplex = self.median_duration(SharingPolicy.FULLDUPLEX)
        assert shared > duplex * 1.05

    def test_fullduplex_uplinks_leave_flows_nic_limited(self):
        sim = Simulation(self.build(SharingPolicy.FULLDUPLEX), CM02())
        comms = sim.simulate_transfers(self.transfers())
        for comm in comms:
            assert comm.duration == pytest.approx(8.0, rel=0.01)

    def test_shared_uplink_share_matches_formula(self):
        # 12 traversals on one 10G constraint -> ~0.833 Gbps per flow
        sim = Simulation(self.build(SharingPolicy.SHARED), CM02())
        comms = sim.simulate_transfers(self.transfers())
        expected = 1e9 / (1.25e9 / 12.0)
        for comm in comms:
            assert comm.duration == pytest.approx(expected, rel=0.02)


class TestWeightS:
    def test_weight_s_term_biases_against_slow_links(self):
        model = NetworkModel(name="t", weight_S=20537.0)
        fast = LinkUse(
            __import__("repro.simgrid.platform", fromlist=["Link"]).Link(
                "fast", 1.25e9, 0.0
            ),
            Direction.UP,
        )
        slow = LinkUse(
            __import__("repro.simgrid.platform", fromlist=["Link"]).Link(
                "slow", 1.25e7, 0.0
            ),
            Direction.UP,
        )
        assert model.flow_weight([slow]) > 50 * model.flow_weight([fast])

    def test_zero_weight_s_gives_equal_split_on_zero_latency(self):
        p = build_star_cluster("z", 3, host_latency=0.0)
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers(
            [("z-1", "z-3", 1e9), ("z-2", "z-3", 1e9)]
        )
        assert comms[0].duration == pytest.approx(comms[1].duration, rel=1e-6)
