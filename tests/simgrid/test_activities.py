"""Activity objects: states, phases, waitable protocol."""

import math

import pytest

from repro.simgrid.activities import (
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
    Waitable,
)
from repro.simgrid.platform import Host


def make_comm(size=1e6, latency=1e-3):
    src, dst = Host("src"), Host("dst")
    return CommActivity("c", src, dst, size, route=[],
                        startup_latency=latency, weight=1.0, bound=math.inf)


class TestWaitable:
    def test_callback_after_fire(self):
        w = Waitable()
        seen = []
        w.add_done_callback(lambda x: seen.append("first"))
        w._fire()
        assert seen == ["first"]
        # registering after completion fires immediately
        w.add_done_callback(lambda x: seen.append("late"))
        assert seen == ["first", "late"]

    def test_fire_idempotent(self):
        w = Waitable()
        seen = []
        w.add_done_callback(lambda x: seen.append(1))
        w._fire()
        w._fire()
        assert seen == [1]


class TestCommPhases:
    def test_starts_in_latency_phase(self):
        comm = make_comm()
        assert comm.state is ActivityState.LATENCY
        assert comm.remaining == pytest.approx(1e-3)
        assert comm.rate == 1.0

    def test_latency_phase_transitions_to_transfer(self):
        comm = make_comm()
        comm.advance(1e-3)
        assert comm.remaining == 0.0
        finished = comm.phase_complete(now=1e-3)
        assert not finished
        assert comm.state is ActivityState.RUNNING
        assert comm.remaining == pytest.approx(1e6)
        assert comm.rate == 0.0  # waits for the next share

    def test_transfer_completion(self):
        comm = make_comm()
        comm.phase_complete(now=1e-3)
        comm.rate = 1e6
        comm.advance(1.0)
        assert comm.remaining == 0.0
        assert comm.phase_complete(now=1.001)
        assert comm.state is ActivityState.DONE
        assert comm.finish_time == 1.001

    def test_zero_latency_skips_phase(self):
        comm = make_comm(latency=0.0)
        assert comm.state is ActivityState.RUNNING
        assert comm.remaining == pytest.approx(1e6)

    def test_zero_size_completes_after_latency(self):
        comm = make_comm(size=0.0)
        comm.advance(1e-3)
        assert comm.phase_complete(now=1e-3)
        assert comm.state is ActivityState.DONE

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_comm(size=-1.0)

    def test_cancel_fires_once(self):
        comm = make_comm()
        seen = []
        comm.add_done_callback(lambda w: seen.append("done"))
        comm.cancel(now=0.5)
        comm.cancel(now=0.7)
        assert comm.state is ActivityState.CANCELED
        assert comm.finish_time == 0.5
        assert seen == ["done"]


class TestTimeToCompletion:
    def test_infinite_when_rate_zero(self):
        comm = make_comm()
        comm.phase_complete(now=0.0)
        assert comm.time_to_completion() == math.inf

    def test_finite_with_rate(self):
        comm = make_comm(latency=0.0)
        comm.rate = 2e6
        assert comm.time_to_completion() == pytest.approx(0.5)

    def test_done_activity_never_schedules(self):
        comm = make_comm(size=0.0, latency=0.0)
        comm.phase_complete(now=0.0)
        assert comm.time_to_completion() == math.inf


class TestExecAndSleep:
    def test_exec_validation(self):
        with pytest.raises(ValueError):
            ExecActivity("e", Host("h"), -1.0)

    def test_exec_progress(self):
        activity = ExecActivity("e", Host("h"), 1e9)
        activity.rate = 5e8
        activity.advance(1.0)
        assert activity.remaining == pytest.approx(5e8)

    def test_sleep_drains_in_real_time(self):
        sleep = SleepActivity("s", 2.0)
        assert sleep.rate == 1.0
        sleep.advance(1.5)
        assert sleep.remaining == pytest.approx(0.5)

    def test_sleep_validation(self):
        with pytest.raises(ValueError):
            SleepActivity("s", -0.1)

    def test_duration_nan_until_finished(self):
        activity = ExecActivity("e", Host("h"), 1e9)
        assert math.isnan(activity.duration)
