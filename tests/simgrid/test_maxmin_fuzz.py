"""Differential fuzz: every max-min front-end agrees on every system.

Random churn scripts (hypothesis-generated adds, removes, capacity bumps and
interleaved solves) are replayed against four independent solvers:

- the scalar :class:`SharingSystem` walk (``solve(vectorized=False)``),
- the vectorized batched kernel (``solve(vectorized=True)`` — forced, so the
  adaptive dispatch threshold cannot silently route tiny systems back to the
  scalar path),
- a from-scratch :class:`MaxMinSystem` rebuild of the final state (what the
  engine's ``full_resolve`` mode does every event),
- the :func:`progressive_fill` reference kernel on the final dense matrix.

All four must agree within 1e-9 relative.  The scripts cover the regimes the
engine produces: many small components, one big coupled component, duplicate
constraint keys, weight/bound/capacity spreads of several orders of
magnitude, and capacity re-interning mid-life (the metrology loop's link
recalibration epoch bumps).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simgrid.maxmin import MaxMinSystem, SharingSystem, progressive_fill

RTOL = 1e-9


def agree(label: str, reference: float, candidate: float) -> None:
    if math.isinf(reference):
        assert math.isinf(candidate), f"{label}: {reference} vs {candidate}"
        return
    assert candidate == pytest.approx(reference, rel=RTOL, abs=1e-12), (
        f"{label}: {reference} vs {candidate}"
    )


@st.composite
def churn_script(draw):
    """A capacity vector plus an op list replayable on any solver.

    Ops are ``("add", payload, weight, bound, uses)``, ``("remove", payload)``,
    ``("bump", cons_idx, factor)`` (capacity re-intern, the solver-level view
    of a link recalibration) and ``("solve",)``.
    """
    n_cons = draw(st.integers(1, 8))
    capacities = draw(st.lists(
        st.floats(1e-2, 1e8), min_size=n_cons, max_size=n_cons
    ))
    n_ops = draw(st.integers(1, 30))
    ops = []
    live: list[int] = []
    payload_counter = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["add", "add", "add", "remove", "bump", "solve"]
        ))
        if kind == "add":
            weight = draw(st.floats(1e-4, 1e4))
            bound = draw(st.one_of(st.none(), st.floats(1e-3, 1e7)))
            members = draw(st.lists(st.integers(0, n_cons - 1), max_size=4))
            # duplicates intentionally kept: duplicate keys must aggregate
            uses = [(ci, draw(st.floats(0.25, 4.0))) for ci in members]
            ops.append(("add", payload_counter, weight, bound, uses))
            live.append(payload_counter)
            payload_counter += 1
        elif kind == "remove" and live:
            victim = live.pop(draw(st.integers(0, len(live) - 1)))
            ops.append(("remove", victim))
        elif kind == "bump":
            ci = draw(st.integers(0, n_cons - 1))
            ops.append(("bump", ci, draw(st.floats(0.5, 2.0))))
        else:
            ops.append(("solve",))
    return capacities, ops


class Replay:
    """Replays a churn script on a SharingSystem, tracking shadow state."""

    def __init__(self, vectorized: bool) -> None:
        self.vectorized = vectorized
        self.system = SharingSystem(vectorized=vectorized)
        self.vids: dict[int, int] = {}
        #: payload -> (weight, bound, [(cons index, coefficient), ...])
        self.shadow: dict[int, tuple[float, float | None, list]] = {}

    def apply(self, capacities: list[float], ops: list) -> None:
        caps = list(capacities)
        for op in ops:
            if op[0] == "add":
                _, payload, weight, bound, uses = op
                usages = tuple(
                    (("c", ci), caps[ci], coeff) for ci, coeff in uses
                )
                self.vids[payload] = self.system.add_variable(
                    weight, bound=bound, payload=payload, usages=usages
                )
                self.shadow[payload] = (weight, bound, list(uses))
            elif op[0] == "remove":
                _, payload = op
                self.system.remove_variable(self.vids.pop(payload))
                del self.shadow[payload]
            elif op[0] == "bump":
                _, ci, factor = op
                caps[ci] *= factor
                # a re-intern under the same key adopts the new capacity and
                # dirties the component — the dummy flow below carries it in
                # and leaves no other trace
                vid = self.system.add_variable(
                    1.0, usages=((("c", ci), caps[ci], 1.0),)
                )
                self.system.remove_variable(vid)
            else:
                self.system.solve(vectorized=self.vectorized)
        self.system.solve(vectorized=self.vectorized)
        self.caps_final = caps

    def values(self) -> dict[int, float]:
        return {p: self.system.value(vid) for p, vid in self.vids.items()}


def maxmin_reference(replay: Replay) -> dict[int, float]:
    """From-scratch MaxMinSystem rebuild — the full_resolve baseline."""
    system = MaxMinSystem()
    constraints: dict[int, object] = {}
    out = {}
    for payload, (weight, bound, uses) in replay.shadow.items():
        var = system.new_variable(weight=weight, bound=bound, payload=payload)
        for ci, coeff in uses:
            cons = constraints.get(ci)
            if cons is None:
                cons = system.new_constraint(replay.caps_final[ci])
                constraints[ci] = cons
            system.expand(cons, var, coeff)
        out[payload] = var
    system.solve()
    return {p: v.value for p, v in out.items()}


def progressive_fill_reference(replay: Replay) -> dict[int, float]:
    """One dense progressive_fill call over the final live system."""
    payloads = sorted(replay.shadow)
    used_cons = sorted({
        ci for _, _, uses in replay.shadow.values() for ci, _ in uses
    })
    cons_index = {ci: i for i, ci in enumerate(used_cons)}
    n, m = len(payloads), len(used_cons)
    weights = np.empty(n)
    bounds = np.empty(n)
    incidence = np.zeros((m, n))
    for j, payload in enumerate(payloads):
        weight, bound, uses = replay.shadow[payload]
        weights[j] = weight
        bounds[j] = math.inf if bound is None else bound
        for ci, coeff in uses:
            incidence[cons_index[ci], j] += coeff
    capacities = np.array([replay.caps_final[ci] for ci in used_cons])
    values, _usage = progressive_fill(weights, bounds, incidence, capacities)
    return {p: float(v) for p, v in zip(payloads, values)}


@given(churn_script())
@settings(max_examples=120, deadline=None)
def test_scalar_vs_vectorized(script):
    capacities, ops = script
    scalar = Replay(vectorized=False)
    batched = Replay(vectorized=True)
    scalar.apply(capacities, ops)
    batched.apply(capacities, ops)
    scalar_values = scalar.values()
    batched_values = batched.values()
    assert scalar_values.keys() == batched_values.keys()
    for payload, value in scalar_values.items():
        agree(f"payload {payload} scalar vs vectorized",
              value, batched_values[payload])


@given(churn_script())
@settings(max_examples=120, deadline=None)
def test_incremental_vs_full_resolve(script):
    capacities, ops = script
    for vectorized in (False, True):
        replay = Replay(vectorized=vectorized)
        replay.apply(capacities, ops)
        reference = maxmin_reference(replay)
        candidate = replay.values()
        assert reference.keys() == candidate.keys()
        for payload, value in reference.items():
            agree(f"payload {payload} full_resolve vs "
                  f"{'vectorized' if vectorized else 'scalar'}",
                  value, candidate[payload])


@given(churn_script())
@settings(max_examples=120, deadline=None)
def test_incremental_vs_progressive_fill(script):
    capacities, ops = script
    for vectorized in (False, True):
        replay = Replay(vectorized=vectorized)
        replay.apply(capacities, ops)
        reference = progressive_fill_reference(replay)
        candidate = replay.values()
        assert reference.keys() == candidate.keys()
        for payload, value in reference.items():
            agree(f"payload {payload} progressive_fill vs "
                  f"{'vectorized' if vectorized else 'scalar'}",
                  value, candidate[payload])


@given(churn_script())
@settings(max_examples=60, deadline=None)
def test_feasible_after_churn(script):
    capacities, ops = script
    for vectorized in (False, True):
        replay = Replay(vectorized=vectorized)
        replay.apply(capacities, ops)
        assert replay.system.is_feasible(tolerance=1e-6)


class TestExtremeSpreads:
    """Deterministic pins for the regimes most likely to lose precision."""

    def test_nine_orders_of_weight_spread_on_one_link(self):
        for vectorized in (False, True):
            system = SharingSystem(vectorized=vectorized)
            usage = ((("link",), 1000.0, 1.0),)
            heavy = system.add_variable(1e6, usages=usage)
            light = system.add_variable(1e-3, usages=usage)
            system.solve(vectorized=vectorized)
            # weighted max-min: value_i = phi / w_i with a shared level phi
            ratio = system.value(light) / system.value(heavy)
            assert ratio == pytest.approx(1e9, rel=1e-9)
            usage_sum = system.value(heavy) + system.value(light)
            assert usage_sum == pytest.approx(1000.0, rel=1e-12)

    def test_tiny_capacity_next_to_huge(self):
        for vectorized in (False, True):
            system = SharingSystem(vectorized=vectorized)
            tiny = system.add_variable(1.0, usages=((("t",), 1e-6, 1.0),))
            huge = system.add_variable(1.0, usages=((("h",), 1e12, 1.0),))
            both = system.add_variable(
                1.0, usages=((("t",), 1e-6, 1.0), (("h",), 1e12, 1.0))
            )
            system.solve(vectorized=vectorized)
            assert system.value(tiny) == pytest.approx(5e-7, rel=1e-9)
            assert system.value(both) == pytest.approx(5e-7, rel=1e-9)
            assert system.value(huge) == pytest.approx(1e12 - 5e-7, rel=1e-9)
            assert system.is_feasible()

    def test_batched_kernel_engaged_above_dispatch_threshold(self):
        """A wide many-small-components solve actually exercises the batched
        kernel (the adaptive dispatch must not leak it to the scalar walk)."""
        system = SharingSystem(vectorized=True)
        vids = [
            system.add_variable(
                1.0, payload=i, usages=(((i // 2,), 100.0, 1.0),)
            )
            for i in range(2 * system.vectorize_min_dirty)
        ]
        system.solve()
        assert system.stats["vectorized_solves"] == 1
        for vid in vids:
            assert system.value(vid) == pytest.approx(50.0, rel=1e-12)
