"""Tier-1 hook for the sharing-model registry smoke check.

Every registered model must build from factory defaults and answer
identically through all three solver paths on contended star/dumbbell
topologies — see ``tools/check_model_smoke.py``.  Models are
millisecond-scale, so like the scenario preset smoke this runs in-process
on every tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_model_smoke  # noqa: E402

from repro.simgrid.models import registered_models  # noqa: E402


@pytest.mark.parametrize(
    "entry", registered_models(), ids=lambda e: e.name)
def test_model_smokes_in_all_solver_modes(entry):
    assert check_model_smoke.smoke_model(entry) > 0


def test_standalone_runner_passes(capsys):
    assert check_model_smoke.main() == 0
    out = capsys.readouterr().out
    assert "FAIL" not in out
    assert f"{len(registered_models())} sharing models" in out
