"""XML platform serialisation round-trips."""

import pytest

from repro.simgrid.builder import build_dumbbell, build_star_cluster, build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.platform import Direction, Platform, SharingPolicy
from repro.simgrid.routing import route_signature
from repro.simgrid.xml_io import (
    PlatformXMLError,
    load_platform,
    platform_from_xml,
    platform_to_xml,
    save_platform,
)


def roundtrip(platform):
    return platform_from_xml(platform_to_xml(platform))


class TestRoundTrip:
    def test_hosts_links_preserved(self, star4):
        clone = roundtrip(star4)
        assert sorted(h.name for h in clone.hosts()) == sorted(
            h.name for h in star4.hosts()
        )
        for link in star4.links():
            other = clone.link(link.name)
            assert other.bandwidth == pytest.approx(link.bandwidth)
            assert other.latency == pytest.approx(link.latency)
            assert other.policy is link.policy

    def test_routes_preserved(self, star4):
        clone = roundtrip(star4)
        for a in ("star-1", "star-2", "star-3"):
            for b in ("star-2", "star-4"):
                if a == b:
                    continue
                assert route_signature(clone.route(a, b)) == route_signature(
                    star4.route(a, b)
                )

    def test_simulation_identical_after_roundtrip(self, dumbbell):
        transfers = [("left-1", "right-1", 1e9), ("right-2", "left-2", 1e9)]
        original = Simulation(dumbbell, CM02()).simulate_transfers(transfers)
        clone = Simulation(roundtrip(dumbbell), CM02()).simulate_transfers(transfers)
        for c1, c2 in zip(original, clone):
            assert c2.duration == pytest.approx(c1.duration, rel=1e-9)

    def test_hierarchical_grid_roundtrip(self):
        grid = build_two_level_grid({"lyon": 3, "nancy": 3})
        clone = roundtrip(grid)
        sig1 = route_signature(grid.route("lyon-1", "nancy-2"))
        sig2 = route_signature(clone.route("lyon-1", "nancy-2"))
        assert sig1 == sig2

    def test_gateway_attribute_preserved(self):
        grid = build_two_level_grid({"lyon": 2, "nancy": 2})
        clone = roundtrip(grid)
        assert clone.autonomous_system("AS_lyon").default_gateway == "lyon-router"

    def test_properties_preserved(self, star4):
        star4.properties["network/TCP_gamma"] = "4194304"
        clone = roundtrip(star4)
        assert clone.properties["network/TCP_gamma"] == "4194304"

    def test_dijkstra_connections_roundtrip(self):
        p = Platform("p", routing="Dijkstra")
        p.root.add_host("a")
        p.root.add_host("b")
        p.root.add_router("s")
        la = p.root.add_link("la", 1e8, "10us")
        lb = p.root.add_link("lb", 1e8, "10us")
        p.root.add_connection("a", "s", la)
        p.root.add_connection("s", "b", lb)
        clone = roundtrip(p)
        assert route_signature(clone.route("a", "b")) == route_signature(
            p.route("a", "b")
        )

    def test_fullduplex_direction_attribute(self):
        p = Platform("p")
        p.root.add_host("a")
        p.root.add_host("b")
        link = p.root.add_link("l", 1e8, policy=SharingPolicy.FULLDUPLEX)
        from repro.simgrid.platform import LinkUse

        p.root.add_route("a", "b", [LinkUse(link, Direction.DOWN)])
        clone = roundtrip(p)
        assert clone.route("a", "b")[0].direction is Direction.DOWN


class TestFileIO:
    def test_save_load(self, tmp_path, star4):
        path = tmp_path / "platform.xml"
        save_platform(star4, str(path))
        clone = load_platform(str(path))
        assert len(clone.hosts()) == len(star4.hosts())


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(PlatformXMLError):
            platform_from_xml("<platform><AS id='x'")

    def test_wrong_root_tag(self):
        with pytest.raises(PlatformXMLError, match="platform"):
            platform_from_xml("<plat></plat>")

    def test_missing_top_as(self):
        with pytest.raises(PlatformXMLError, match="top-level"):
            platform_from_xml("<platform version='4.1'></platform>")

    def test_missing_required_attribute(self):
        xml = """<platform version='4.1'><AS id='r' routing='Full'>
        <host speed='1Gf'/></AS></platform>"""
        with pytest.raises(PlatformXMLError, match="id"):
            platform_from_xml(xml)

    def test_route_references_unknown_link(self):
        xml = """<platform version='4.1'><AS id='r' routing='Full'>
        <host id='a' speed='1Gf'/><host id='b' speed='1Gf'/>
        <route src='a' dst='b'><link_ctn id='ghost'/></route></AS></platform>"""
        with pytest.raises(PlatformXMLError, match="ghost"):
            platform_from_xml(xml)

    def test_unexpected_tag_in_route(self):
        xml = """<platform version='4.1'><AS id='r' routing='Full'>
        <host id='a' speed='1Gf'/><host id='b' speed='1Gf'/>
        <link id='l' bandwidth='1Gbps'/>
        <route src='a' dst='b'><surprise/></route></AS></platform>"""
        with pytest.raises(PlatformXMLError, match="surprise"):
            platform_from_xml(xml)
