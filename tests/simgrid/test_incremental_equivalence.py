"""Incremental vs. full re-solve equivalence.

The engine's default mode re-solves only the max-min components touched by
activities that started or finished since the last event; ``full_resolve=True``
rebuilds the whole system at every event (the historical behavior).  These
tests drive randomized workloads (seeded through :mod:`repro._util.rng`)
through both modes and assert identical completion times and allocations
within 1e-9 — the escape hatch exists precisely to make this check possible.
"""

from __future__ import annotations

import math

import pytest

from repro._util.rng import rng_for
from repro.simgrid.builder import build_dumbbell, build_star_cluster, build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02, LV08

RTOL = 1e-9


def close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))


def draw_comm_events(hosts: list[str], seed: int, n_comms: int,
                     horizon: float = 3.0, max_size: float = 5e8) -> list[tuple]:
    """Random staggered transfers: (start time, src, dst, size) tuples."""
    rng = rng_for(seed, "incremental-equivalence")
    events = []
    for i in range(n_comms):
        src_i, dst_i = rng.choice(len(hosts), size=2, replace=False)
        size = float(rng.uniform(1e5, max_size))
        start = float(rng.uniform(0.0, horizon))
        events.append((start, hosts[int(src_i)], hosts[int(dst_i)], size))
    return events


def run_comms(platform, events, model, full_resolve, until=None):
    """Run staggered transfers; returns (sim, {name: comm})."""
    sim = Simulation(platform, model, full_resolve=full_resolve)
    comms: dict[str, object] = {}

    def start(src, dst, size, name):
        comms[name] = sim.add_comm(src, dst, size, name=name)

    for i, (at, src, dst, size) in enumerate(events):
        sim.schedule(at, lambda s=src, d=dst, z=size, n=f"c{i}": start(s, d, z, n))
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
    return sim, comms


def assert_comm_equivalence(full_comms, inc_comms):
    assert set(full_comms) == set(inc_comms)
    for name, full in full_comms.items():
        inc = inc_comms[name]
        assert close(full.finish_time, inc.finish_time), (
            f"{name}: finish {full.finish_time!r} (full) vs {inc.finish_time!r} "
            f"(incremental)"
        )
        assert close(full.duration, inc.duration), (
            f"{name}: duration {full.duration!r} vs {inc.duration!r}"
        )


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_star_cluster_staggered_transfers(self, seed):
        platform = build_star_cluster("star", 10)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=16)
        _, full = run_comms(platform, events, LV08(), full_resolve=True)
        _, inc = run_comms(platform, events, LV08(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_dumbbell_shared_bottleneck(self, seed):
        # everything funnels through one SHARED link: a single big component,
        # so the incremental path re-solves overlapping subsets repeatedly
        platform = build_dumbbell(4, 4)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=12)
        _, full = run_comms(platform, events, CM02(), full_resolve=True)
        _, inc = run_comms(platform, events, CM02(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    @pytest.mark.parametrize("seed", [20, 21])
    def test_two_level_grid(self, seed):
        platform = build_two_level_grid({"lyon": 6, "nancy": 6, "lille": 4})
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=14)
        _, full = run_comms(platform, events, LV08(), full_resolve=True)
        _, inc = run_comms(platform, events, LV08(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    def test_mixed_comms_execs_sleeps(self):
        results = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 6)
            sim = Simulation(platform, LV08(), full_resolve=mode)
            comms = [
                sim.add_comm("star-1", "star-2", 2e8, name="a"),
                sim.add_comm("star-3", "star-2", 1e8, name="b"),
            ]
            execs = [sim.add_exec("star-1", 3e9), sim.add_exec("star-1", 1e9)]
            sleep = sim.add_sleep(1.5)
            sim.schedule(0.5, lambda s=sim: s.add_exec("star-4", 2e9, name="late"))
            sim.run()
            results[mode] = [a.finish_time for a in (*comms, *execs, sleep)]
        for full_t, inc_t in zip(results[True], results[False]):
            assert close(full_t, inc_t)


class TestMidRunAllocations:
    @pytest.mark.parametrize("seed", [30, 31])
    def test_rates_match_at_checkpoints(self, seed):
        """Allocations (activity rates), not just completion times, agree."""
        platform = build_dumbbell(3, 3)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=10, horizon=2.0)
        for checkpoint in (0.5, 1.0, 2.5):
            sim_full, full = run_comms(platform, events, CM02(), True, until=checkpoint)
            sim_inc, inc = run_comms(platform, events, CM02(), False, until=checkpoint)
            assert set(full) == set(inc)
            for name in full:
                rate_f, rate_i = full[name].rate, inc[name].rate
                assert close(rate_f, rate_i), (
                    f"{name} at t={checkpoint}: rate {rate_f!r} vs {rate_i!r}"
                )
                assert close(full[name].remaining, inc[name].remaining)

    def test_cancel_mid_run(self):
        results = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, CM02(), full_resolve=mode)
            keep = sim.add_comm("star-1", "star-3", 2e9, name="keep")
            victim = sim.add_comm("star-2", "star-3", 2e9, name="victim")
            sim.schedule(2.0, lambda: victim.cancel(sim.clock))
            sim.run()
            results[mode] = (keep.finish_time, victim.state.value)
        assert close(results[True][0], results[False][0])
        assert results[True][1] == results[False][1] == "canceled"

    def test_process_cancels_and_starts_in_same_step(self):
        """A process cancels a flow and starts another before the re-share:
        the canceled flow must leave the arena immediately, as in full mode."""
        from repro.simgrid.msg import add_process

        finishes = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, CM02(), full_resolve=mode)
            keep = sim.add_comm("star-1", "star-3", 2e9, name="keep")
            victim = sim.add_comm("star-2", "star-3", 2e9, name="victim")

            def swapper(ctx, sim=sim, victim=victim):
                yield ctx.sleep(2.0)
                victim.cancel(ctx.now)
                yield sim.add_comm("star-4", "star-3", 1e8, name="replacement")

            add_process(sim, "swapper", "star-4", swapper)
            sim.run()
            finishes[mode] = keep.finish_time
        assert close(finishes[True], finishes[False]), (
            f"full {finishes[True]!r} vs incremental {finishes[False]!r}"
        )

    def test_resume_after_until(self):
        """run(until=...) then run(): the arena rebuild path stays exact."""
        finish = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, LV08(), full_resolve=mode)
            comm = sim.add_comm("star-1", "star-2", 1e9, name="c")
            sim.run(until=3.0)
            assert 0.0 < comm.remaining < 1e9
            sim.run()
            finish[mode] = comm.finish_time
        assert close(finish[True], finish[False])


class TestCampaignShape:
    def test_g5k_30x30_size_sweep(self, g5k_test_platform):
        """The 30x30 campaign shape on the real platform, all ten sizes."""
        from repro.experiments.figures import FIGURES
        from repro.experiments.protocol import TRANSFER_SIZES, draw_transfer_pairs

        pairs = draw_transfer_pairs(FIGURES["fig5"].spec, 20120917)
        workload = [
            (src, dst, TRANSFER_SIZES[i % len(TRANSFER_SIZES)])
            for i, (src, dst) in enumerate(pairs)
        ]
        durations = {}
        for mode in (True, False):
            sim = Simulation(g5k_test_platform, LV08(), full_resolve=mode)
            comms = sim.simulate_transfers(workload)
            durations[mode] = [c.duration for c in comms]
        for full_d, inc_d in zip(durations[True], durations[False]):
            assert close(full_d, inc_d)

    def test_forecast_service_exposes_escape_hatch(self, forecast_service):
        from repro.core.forecast import TransferSpec

        transfers = [
            TransferSpec("sagittaire-1.lyon.grid5000.fr",
                         "sagittaire-2.lyon.grid5000.fr", 5e8),
            TransferSpec("sagittaire-3.lyon.grid5000.fr",
                         "sagittaire-2.lyon.grid5000.fr", 5e8),
        ]
        inc = forecast_service.predict_transfers("g5k_test", transfers)
        full = forecast_service.predict_transfers("g5k_test", transfers,
                                                  full_resolve=True)
        for a, b in zip(inc, full):
            assert close(a.duration, b.duration)


SAGITTAIRE = [f"sagittaire-{i}.lyon.grid5000.fr" for i in range(1, 5)]


class TestVectorizedScalarServing:
    """The second escape hatch (``vectorized=False``) end to end.

    The batched numpy kernel and the scalar arena walk must agree after a
    mid-transfer ``touch_sharing()`` recalibration, and the serving stack
    must keep the two kernel modes straight: cache on and cache off answer
    bit-identically within a mode, and the two modes occupy distinct cache
    entries (a scalar request never gets a vectorized hit, or vice versa).
    """

    def test_touch_sharing_mid_transfer_matches_scalar(self):
        """A timer halves a link and calls ``touch_sharing()`` mid-transfer;
        vectorized, scalar and full-resolve runs agree within 1e-9."""
        finishes = {}
        for label, kwargs in {
            "vectorized": {"vectorized": True},
            "scalar": {"vectorized": False},
            "full": {"full_resolve": True},
        }.items():
            platform = build_star_cluster("star", 6)
            sim = Simulation(platform, LV08(), **kwargs)
            comms = [
                sim.add_comm("star-1", "star-2", 2e9, name="a"),
                sim.add_comm("star-3", "star-2", 2e9, name="b"),
                sim.add_comm("star-4", "star-5", 1e9, name="c"),
            ]

            def degrade(sim=sim, platform=platform):
                for link in platform.links_matching("star-2-link"):
                    link.bandwidth = link.bandwidth * 0.5
                sim.touch_sharing()

            sim.schedule(1.0, degrade)
            sim.run()
            finishes[label] = [c.finish_time for c in comms]
        assert finishes["vectorized"] == finishes["scalar"], (
            "touch_sharing mid-transfer: vectorized and scalar kernels "
            f"diverged: {finishes['vectorized']!r} vs {finishes['scalar']!r}"
        )
        for vec_t, full_t in zip(finishes["vectorized"], finishes["full"]):
            assert close(vec_t, full_t)

    def test_serving_answers_identical_cache_on_and_off(self, forecast_service):
        """Both kernel modes through the serving path, with the ForecastCache
        enabled (4096) and disabled (0): caching never changes an answer,
        and scalar agrees with vectorized within 1e-9."""
        from repro.serving.service import ForecastServingService

        transfers = [(SAGITTAIRE[0], SAGITTAIRE[1], 5e8),
                     (SAGITTAIRE[2], SAGITTAIRE[1], 5e8)]
        ongoing = [(SAGITTAIRE[3], SAGITTAIRE[1], 2e8)]  # mid-transfer flows
        answers = {}
        for vectorized in (True, False):
            for cache_size in (4096, 0):
                with ForecastServingService(
                        forecast_service, cache_size=cache_size) as serving:
                    got = serving.predict(
                        "g5k_test", transfers, ongoing=ongoing,
                        vectorized=vectorized)
                    answers[(vectorized, cache_size)] = [
                        f.duration for f in got]
        assert answers[(True, 4096)] == answers[(True, 0)]
        assert answers[(False, 4096)] == answers[(False, 0)]
        for a, b in zip(answers[(True, 4096)], answers[(False, 4096)]):
            assert close(a, b)

    def test_modes_occupy_distinct_cache_entries(self, forecast_service):
        """A scalar request after an identical vectorized one is a clean
        cache miss (distinct key), then each mode hits its own entry."""
        from repro.serving.service import ForecastServingService

        transfers = [(SAGITTAIRE[0], SAGITTAIRE[1], 5e8)]
        with ForecastServingService(forecast_service) as serving:
            vec = serving.predict("g5k_test", transfers, vectorized=True)
            scal = serving.predict("g5k_test", transfers, vectorized=False)
            assert serving.cache.info()["misses"] == 2
            assert serving.cache.info()["size"] == 2
            vec_again = serving.predict("g5k_test", transfers, vectorized=True)
            scal_again = serving.predict("g5k_test", transfers,
                                         vectorized=False)
            assert serving.cache.info()["hits"] == 2
        assert [f.duration for f in vec] == [f.duration for f in vec_again]
        assert [f.duration for f in scal] == [f.duration for f in scal_again]
        for a, b in zip(vec, scal):
            assert close(a.duration, b.duration)
