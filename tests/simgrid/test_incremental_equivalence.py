"""Incremental vs. full re-solve equivalence.

The engine's default mode re-solves only the max-min components touched by
activities that started or finished since the last event; ``full_resolve=True``
rebuilds the whole system at every event (the historical behavior).  These
tests drive randomized workloads (seeded through :mod:`repro._util.rng`)
through both modes and assert identical completion times and allocations
within 1e-9 — the escape hatch exists precisely to make this check possible.
"""

from __future__ import annotations

import math

import pytest

from repro._util.rng import rng_for
from repro.simgrid.builder import build_dumbbell, build_star_cluster, build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02, LV08

RTOL = 1e-9


def close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= RTOL * max(1.0, abs(a), abs(b))


def draw_comm_events(hosts: list[str], seed: int, n_comms: int,
                     horizon: float = 3.0, max_size: float = 5e8) -> list[tuple]:
    """Random staggered transfers: (start time, src, dst, size) tuples."""
    rng = rng_for(seed, "incremental-equivalence")
    events = []
    for i in range(n_comms):
        src_i, dst_i = rng.choice(len(hosts), size=2, replace=False)
        size = float(rng.uniform(1e5, max_size))
        start = float(rng.uniform(0.0, horizon))
        events.append((start, hosts[int(src_i)], hosts[int(dst_i)], size))
    return events


def run_comms(platform, events, model, full_resolve, until=None):
    """Run staggered transfers; returns (sim, {name: comm})."""
    sim = Simulation(platform, model, full_resolve=full_resolve)
    comms: dict[str, object] = {}

    def start(src, dst, size, name):
        comms[name] = sim.add_comm(src, dst, size, name=name)

    for i, (at, src, dst, size) in enumerate(events):
        sim.schedule(at, lambda s=src, d=dst, z=size, n=f"c{i}": start(s, d, z, n))
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
    return sim, comms


def assert_comm_equivalence(full_comms, inc_comms):
    assert set(full_comms) == set(inc_comms)
    for name, full in full_comms.items():
        inc = inc_comms[name]
        assert close(full.finish_time, inc.finish_time), (
            f"{name}: finish {full.finish_time!r} (full) vs {inc.finish_time!r} "
            f"(incremental)"
        )
        assert close(full.duration, inc.duration), (
            f"{name}: duration {full.duration!r} vs {inc.duration!r}"
        )


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_star_cluster_staggered_transfers(self, seed):
        platform = build_star_cluster("star", 10)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=16)
        _, full = run_comms(platform, events, LV08(), full_resolve=True)
        _, inc = run_comms(platform, events, LV08(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_dumbbell_shared_bottleneck(self, seed):
        # everything funnels through one SHARED link: a single big component,
        # so the incremental path re-solves overlapping subsets repeatedly
        platform = build_dumbbell(4, 4)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=12)
        _, full = run_comms(platform, events, CM02(), full_resolve=True)
        _, inc = run_comms(platform, events, CM02(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    @pytest.mark.parametrize("seed", [20, 21])
    def test_two_level_grid(self, seed):
        platform = build_two_level_grid({"lyon": 6, "nancy": 6, "lille": 4})
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=14)
        _, full = run_comms(platform, events, LV08(), full_resolve=True)
        _, inc = run_comms(platform, events, LV08(), full_resolve=False)
        assert_comm_equivalence(full, inc)

    def test_mixed_comms_execs_sleeps(self):
        results = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 6)
            sim = Simulation(platform, LV08(), full_resolve=mode)
            comms = [
                sim.add_comm("star-1", "star-2", 2e8, name="a"),
                sim.add_comm("star-3", "star-2", 1e8, name="b"),
            ]
            execs = [sim.add_exec("star-1", 3e9), sim.add_exec("star-1", 1e9)]
            sleep = sim.add_sleep(1.5)
            sim.schedule(0.5, lambda s=sim: s.add_exec("star-4", 2e9, name="late"))
            sim.run()
            results[mode] = [a.finish_time for a in (*comms, *execs, sleep)]
        for full_t, inc_t in zip(results[True], results[False]):
            assert close(full_t, inc_t)


class TestMidRunAllocations:
    @pytest.mark.parametrize("seed", [30, 31])
    def test_rates_match_at_checkpoints(self, seed):
        """Allocations (activity rates), not just completion times, agree."""
        platform = build_dumbbell(3, 3)
        hosts = [h.name for h in platform.hosts()]
        events = draw_comm_events(hosts, seed, n_comms=10, horizon=2.0)
        for checkpoint in (0.5, 1.0, 2.5):
            sim_full, full = run_comms(platform, events, CM02(), True, until=checkpoint)
            sim_inc, inc = run_comms(platform, events, CM02(), False, until=checkpoint)
            assert set(full) == set(inc)
            for name in full:
                rate_f, rate_i = full[name].rate, inc[name].rate
                assert close(rate_f, rate_i), (
                    f"{name} at t={checkpoint}: rate {rate_f!r} vs {rate_i!r}"
                )
                assert close(full[name].remaining, inc[name].remaining)

    def test_cancel_mid_run(self):
        results = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, CM02(), full_resolve=mode)
            keep = sim.add_comm("star-1", "star-3", 2e9, name="keep")
            victim = sim.add_comm("star-2", "star-3", 2e9, name="victim")
            sim.schedule(2.0, lambda: victim.cancel(sim.clock))
            sim.run()
            results[mode] = (keep.finish_time, victim.state.value)
        assert close(results[True][0], results[False][0])
        assert results[True][1] == results[False][1] == "canceled"

    def test_process_cancels_and_starts_in_same_step(self):
        """A process cancels a flow and starts another before the re-share:
        the canceled flow must leave the arena immediately, as in full mode."""
        from repro.simgrid.msg import add_process

        finishes = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, CM02(), full_resolve=mode)
            keep = sim.add_comm("star-1", "star-3", 2e9, name="keep")
            victim = sim.add_comm("star-2", "star-3", 2e9, name="victim")

            def swapper(ctx, sim=sim, victim=victim):
                yield ctx.sleep(2.0)
                victim.cancel(ctx.now)
                yield sim.add_comm("star-4", "star-3", 1e8, name="replacement")

            add_process(sim, "swapper", "star-4", swapper)
            sim.run()
            finishes[mode] = keep.finish_time
        assert close(finishes[True], finishes[False]), (
            f"full {finishes[True]!r} vs incremental {finishes[False]!r}"
        )

    def test_resume_after_until(self):
        """run(until=...) then run(): the arena rebuild path stays exact."""
        finish = {}
        for mode in (True, False):
            platform = build_star_cluster("star", 5)
            sim = Simulation(platform, LV08(), full_resolve=mode)
            comm = sim.add_comm("star-1", "star-2", 1e9, name="c")
            sim.run(until=3.0)
            assert 0.0 < comm.remaining < 1e9
            sim.run()
            finish[mode] = comm.finish_time
        assert close(finish[True], finish[False])


class TestCampaignShape:
    def test_g5k_30x30_size_sweep(self, g5k_test_platform):
        """The 30x30 campaign shape on the real platform, all ten sizes."""
        from repro.experiments.figures import FIGURES
        from repro.experiments.protocol import TRANSFER_SIZES, draw_transfer_pairs

        pairs = draw_transfer_pairs(FIGURES["fig5"].spec, 20120917)
        workload = [
            (src, dst, TRANSFER_SIZES[i % len(TRANSFER_SIZES)])
            for i, (src, dst) in enumerate(pairs)
        ]
        durations = {}
        for mode in (True, False):
            sim = Simulation(g5k_test_platform, LV08(), full_resolve=mode)
            comms = sim.simulate_transfers(workload)
            durations[mode] = [c.duration for c in comms]
        for full_d, inc_d in zip(durations[True], durations[False]):
            assert close(full_d, inc_d)

    def test_forecast_service_exposes_escape_hatch(self, forecast_service):
        from repro.core.forecast import TransferSpec

        transfers = [
            TransferSpec("sagittaire-1.lyon.grid5000.fr",
                         "sagittaire-2.lyon.grid5000.fr", 5e8),
            TransferSpec("sagittaire-3.lyon.grid5000.fr",
                         "sagittaire-2.lyon.grid5000.fr", 5e8),
        ]
        inc = forecast_service.predict_transfers("g5k_test", transfers)
        full = forecast_service.predict_transfers("g5k_test", transfers,
                                                  full_resolve=True)
        for a, b in zip(inc, full):
            assert close(a.duration, b.duration)
