"""Task graph model."""

import pytest

from repro.simgrid.tasks import Task, TaskGraph


class TestTask:
    def test_valid(self):
        t = Task("t", flops=1e9, output_bytes=1e6)
        assert t.flops == 1e9

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            Task("t", flops=-1)

    def test_rejects_negative_output(self):
        with pytest.raises(ValueError):
            Task("t", output_bytes=-1)


class TestTaskGraph:
    def build_diamond(self):
        g = TaskGraph()
        for name in ("a", "b", "c", "d"):
            g.add_task(Task(name, flops=1e9, output_bytes=1e6), host=f"h-{name}")
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        return g

    def test_relations(self):
        g = self.build_diamond()
        assert sorted(g.successors("a")) == ["b", "c"]
        assert sorted(g.predecessors("d")) == ["b", "c"]
        assert g.roots() == ["a"]

    def test_validate_accepts_dag(self):
        self.build_diamond().validate()

    def test_cycle_detected(self):
        g = TaskGraph()
        g.add_task(Task("a"), "h1")
        g.add_task(Task("b"), "h2")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.validate()

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"), "h1")
        with pytest.raises(ValueError):
            g.add_task(Task("a"), "h2")

    def test_duplicate_edge_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"), "h1")
        g.add_task(Task("b"), "h2")
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            g.add_edge("a", "b")

    def test_edge_to_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task(Task("a"), "h1")
        with pytest.raises(ValueError):
            g.add_edge("a", "ghost")
