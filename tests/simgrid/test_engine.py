"""DES kernel: timings, sharing, phases, events."""

import math

import pytest

from repro.simgrid.builder import build_dumbbell, build_star_cluster
from repro.simgrid.engine import Simulation, SimulationError
from repro.simgrid.models import CM02, LV08
from repro.simgrid.trace import Trace


class TestSingleTransfer:
    def test_duration_matches_analytic_lv08(self, star4):
        sim = Simulation(star4, LV08())
        comm = sim.simulate_transfers([("star-1", "star-2", 1e9)])[0]
        expected = 13.01 * 2e-4 + 1e9 / (0.97 * 1.25e8)
        assert comm.duration == pytest.approx(expected, rel=1e-6)

    def test_duration_matches_analytic_cm02(self, star4):
        sim = Simulation(star4, CM02())
        comm = sim.simulate_transfers([("star-1", "star-2", 1e9)])[0]
        expected = 2e-4 + 1e9 / 1.25e8
        assert comm.duration == pytest.approx(expected, rel=1e-6)

    def test_zero_size_transfer_costs_latency_only(self, star4):
        sim = Simulation(star4, LV08())
        comm = sim.simulate_transfers([("star-1", "star-2", 0.0)])[0]
        assert comm.duration == pytest.approx(13.01 * 2e-4, rel=1e-6)

    def test_finish_times_set(self, star4):
        sim = Simulation(star4)
        comm = sim.simulate_transfers([("star-1", "star-2", 1e6)])[0]
        assert comm.start_time == 0.0
        assert comm.finish_time == pytest.approx(comm.duration)
        assert sim.clock == pytest.approx(comm.finish_time)


class TestSharing:
    def test_two_flows_same_destination_halve(self, star4):
        sim = Simulation(star4, CM02())
        comms = sim.simulate_transfers(
            [("star-1", "star-3", 1e9), ("star-2", "star-3", 1e9)]
        )
        lone = 1e9 / 1.25e8
        for comm in comms:
            assert comm.duration == pytest.approx(2 * lone, rel=1e-3)

    def test_disjoint_flows_do_not_interact(self, star4):
        sim = Simulation(star4, CM02())
        comms = sim.simulate_transfers(
            [("star-1", "star-2", 1e9), ("star-3", "star-4", 1e9)]
        )
        lone = 2e-4 + 1e9 / 1.25e8
        for comm in comms:
            assert comm.duration == pytest.approx(lone, rel=1e-6)

    def test_shared_bottleneck_counts_both_directions(self, dumbbell):
        sim = Simulation(dumbbell, CM02())
        comms = sim.simulate_transfers(
            [("left-1", "right-1", 1e9), ("right-2", "left-2", 1e9)]
        )
        # SHARED policy: opposite directions compete on one constraint
        for comm in comms:
            assert comm.duration == pytest.approx(2 * 1e9 / 1.25e8, rel=1e-2)

    def test_fullduplex_directions_are_independent(self):
        from repro.simgrid.platform import SharingPolicy

        p = build_dumbbell(2, 2, bottleneck_bandwidth="1Gbps",
                           bottleneck_policy=SharingPolicy.FULLDUPLEX)
        sim = Simulation(p, CM02())
        comms = sim.simulate_transfers(
            [("left-1", "right-1", 1e9), ("right-2", "left-2", 1e9)]
        )
        for comm in comms:
            assert comm.duration == pytest.approx(1e9 / 1.25e8, rel=1e-2)

    def test_early_completion_releases_bandwidth(self, star4):
        # a short flow and a long flow to the same NIC: after the short one
        # finishes, the long one speeds up — total < twice-the-lone-time
        sim = Simulation(star4, CM02())
        comms = sim.simulate_transfers(
            [("star-1", "star-3", 2e9), ("star-2", "star-3", 2e8)]
        )
        long, short = comms
        lone_long = 2e9 / 1.25e8
        assert short.duration == pytest.approx(2 * 2e8 / 1.25e8, rel=1e-2)
        # long flow: shares for ~3.2s, then full rate
        assert lone_long < long.duration < lone_long + short.duration + 0.1

    def test_gamma_caps_long_fat_paths(self):
        p = build_dumbbell(1, 1, bottleneck_bandwidth="10Gbps",
                           bottleneck_latency="20ms")
        sim = Simulation(p, LV08())
        comm = sim.simulate_transfers([("left-1", "right-1", 1e9)])[0]
        lat = 2 * 5e-5 + 2e-2
        cap = 4194304.0 / (2 * lat)
        expected_transfer = 1e9 / cap
        assert comm.duration == pytest.approx(
            13.01 * lat + expected_transfer, rel=1e-3
        )


class TestLoopback:
    def test_same_host_transfer_uses_loopback(self, star4):
        sim = Simulation(star4, LV08(), loopback_bandwidth=1e10,
                         loopback_latency=1e-6)
        comm = sim.simulate_transfers([("star-1", "star-1", 1e8)])[0]
        assert comm.duration == pytest.approx(1e-6 + 1e-2, rel=1e-6)

    def test_loopback_not_shared(self, star4):
        sim = Simulation(star4, LV08(), loopback_bandwidth=1e10)
        comms = sim.simulate_transfers(
            [("star-1", "star-1", 1e8), ("star-1", "star-1", 1e8)]
        )
        assert comms[0].duration == pytest.approx(comms[1].duration)
        assert comms[0].duration < 2 * 1e-2


class TestExec:
    def test_exec_duration(self, star4):
        sim = Simulation(star4)
        activity = sim.add_exec("star-1", 2e9)
        sim.run()
        assert activity.duration == pytest.approx(2.0)  # 1 Gf host

    def test_execs_share_host(self, star4):
        sim = Simulation(star4)
        a1 = sim.add_exec("star-1", 1e9)
        a2 = sim.add_exec("star-1", 1e9)
        sim.run()
        assert a1.duration == pytest.approx(2.0, rel=1e-6)
        assert a2.duration == pytest.approx(2.0, rel=1e-6)

    def test_multicore_host_runs_parallel_execs_at_full_speed(self):
        from repro.simgrid.platform import Platform

        p = Platform("p")
        p.root.add_host("h", speed=1e9, cores=4)
        sim = Simulation(p)
        activities = [sim.add_exec("h", 1e9) for _ in range(4)]
        sim.run()
        for a in activities:
            assert a.duration == pytest.approx(1.0, rel=1e-6)

    def test_single_exec_capped_at_one_core(self):
        from repro.simgrid.platform import Platform

        p = Platform("p")
        p.root.add_host("h", speed=1e9, cores=4)
        sim = Simulation(p)
        a = sim.add_exec("h", 1e9)
        sim.run()
        assert a.duration == pytest.approx(1.0, rel=1e-6)


class TestKernel:
    def test_run_until_stops_clock(self, star4):
        sim = Simulation(star4, CM02())
        sim.add_comm("star-1", "star-2", 1e9)  # ~8s
        sim.run(until=1.0)
        assert sim.clock == pytest.approx(1.0)

    def test_run_until_preserves_progress(self, star4):
        sim = Simulation(star4, CM02())
        comm = sim.add_comm("star-1", "star-2", 1e9)
        sim.run(until=4.0)
        remaining_before = comm.remaining
        assert 0 < remaining_before < 1e9
        sim.run()
        assert comm.state.value == "done"
        assert comm.finish_time == pytest.approx(2e-4 + 8.0, rel=1e-3)

    def test_timers_fire_in_order(self, star4):
        sim = Simulation(star4)
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.clock == pytest.approx(3.0)

    def test_negative_delay_rejected(self, star4):
        sim = Simulation(star4)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_unknown_host_rejected(self, star4):
        from repro.simgrid.platform import UnknownElementError

        sim = Simulation(star4)
        with pytest.raises(UnknownElementError):
            sim.add_comm("ghost", "star-1", 1e6)

    def test_trace_records_start_and_end(self, star4):
        trace = Trace()
        sim = Simulation(star4, trace=trace)
        sim.simulate_transfers([("star-1", "star-2", 1e6)])
        assert len(trace.of_kind("comm_start")) == 1
        assert len(trace.of_kind("activity_end")) == 1

    def test_cancel_releases_bandwidth(self, star4):
        sim = Simulation(star4, CM02())
        c1 = sim.add_comm("star-1", "star-3", 1e9)
        c2 = sim.add_comm("star-2", "star-3", 1e9)
        sim.run(until=1.0)
        c2.cancel(sim.clock)
        sim.run()
        # c1 shared only briefly; duration well below the full-sharing 16s
        assert c1.finish_time < 10.0

    def test_clock_monotonic_across_many_events(self, star4):
        sim = Simulation(star4, CM02())
        times = []
        for i in range(20):
            sim.schedule(i * 0.1, lambda: times.append(sim.clock))
        sim.simulate_transfers([("star-1", "star-2", 1e8)])
        assert times == sorted(times)


class TestIncrementalSharing:
    def test_incremental_is_the_default(self, star4):
        assert Simulation(star4).full_resolve is False
        assert Simulation(star4, full_resolve=True).full_resolve is True

    def test_full_resolve_matches_incremental(self, star4):
        durations = {}
        for mode in (True, False):
            sim = Simulation(star4, LV08(), full_resolve=mode)
            comms = sim.simulate_transfers(
                [("star-1", "star-3", 1e9), ("star-2", "star-3", 2e8),
                 ("star-1", "star-4", 5e8)]
            )
            durations[mode] = [c.duration for c in comms]
        for full_d, inc_d in zip(durations[True], durations[False]):
            assert inc_d == pytest.approx(full_d, rel=1e-9)

    def test_untouched_flows_are_not_resolved(self, star4):
        # two disjoint transfers plus one that finishes early: the finisher's
        # component is re-solved, the disjoint survivor's is not
        sim = Simulation(star4, CM02())
        sim.add_comm("star-1", "star-2", 2e9)
        sim.add_comm("star-3", "star-4", 1e8)
        sim.run()
        stats = sim.sharing_stats
        assert stats["peak_variables"] == 2
        # 2 initial singleton components; the early finisher frees its
        # constraints without dirtying the survivor
        assert stats["variables_resolved"] == 2

    def test_sharing_stats_exposed(self, star4):
        sim = Simulation(star4, CM02())
        sim.simulate_transfers([("star-1", "star-2", 1e8)])
        stats = sim.sharing_stats
        assert stats["solves"] >= 1
        assert stats["components_solved"] >= 1
        assert stats["peak_variables"] == 1

    def test_usages_cached_on_activities(self, star4):
        sim = Simulation(star4, LV08())
        comm = sim.add_comm("star-1", "star-2", 1e8)
        assert len(comm.usages) == 2  # src uplink + dst downlink
        for _key, capacity, coefficient in comm.usages:
            assert capacity == pytest.approx(0.97 * 1.25e8)
            assert coefficient == 1.0
        ex = sim.add_exec("star-1", 1e9)
        assert ex.usages == ((("host", "star-1"), 1e9, 1.0),)

    def test_capacity_factors_scale_cached_usages(self, star4):
        link_name = star4.links()[0].name
        sim = Simulation(star4, CM02(), capacity_factors={link_name: 0.5})
        comm = sim.add_comm("star-1", "star-2", 1e8)
        by_link = {key[0].name: capacity for key, capacity, _ in comm.usages}
        assert by_link[link_name] == pytest.approx(0.5 * 1.25e8)

    @pytest.mark.parametrize("full_resolve", [False, True])
    def test_link_bandwidth_edit_reaches_inflight_comms(self, full_resolve):
        # in-place link recalibration between runs must affect running
        # transfers (cached usages are epoch-invalidated, both modes)
        p = build_dumbbell(1, 1)
        sim = Simulation(p, CM02(), full_resolve=full_resolve)
        comm = sim.add_comm("left-1", "right-1", 1e9)
        sim.run(until=1.0)
        for link in p.links():
            link.bandwidth = link.bandwidth / 2.0
        sim.run()
        # 1s at 1.25e8 B/s, remaining 8.75e8 at 6.25e7 B/s => ~15s total
        assert comm.finish_time == pytest.approx(1.0 + 8.75e8 / 6.25e7, rel=1e-3)

    def test_full_resolve_does_not_accumulate_finished_activities(self, star4):
        sim = Simulation(star4, CM02(), full_resolve=True)
        for i in range(5):
            sim.add_comm("star-1", "star-2", 1e6)
            sim.run()
        assert sim._started == []
        assert sim._handles == {}

    @pytest.mark.parametrize("full_resolve", [False, True])
    def test_capacity_factor_change_between_runs(self, star4, full_resolve):
        sim = Simulation(star4, CM02(), full_resolve=full_resolve)
        comm = sim.add_comm("star-1", "star-2", 1e9)
        sim.run(until=1.0)
        # background traffic appears: halve every link's available capacity
        sim.capacity_factors = {link.name: 0.5 for link in star4.links()}
        sim.run()
        # 1s at 1.25e8, remaining 8.75e8 at 6.25e7 => ~15s
        assert comm.finish_time == pytest.approx(1.0 + 8.75e8 / 6.25e7, rel=1e-3)

    def test_comm_route_does_not_alias_cached_route(self, star4):
        sim = Simulation(star4, CM02())
        comm = sim.add_comm("star-1", "star-2", 1e6)
        cached = star4.route("star-1", "star-2")
        assert comm.route == list(cached)
        comm.route.clear()  # per-activity state only
        assert len(star4.route("star-1", "star-2")) == len(cached) != 0
