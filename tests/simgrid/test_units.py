"""Unit parsing/formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.simgrid.units import (
    UnitError,
    format_bandwidth,
    format_size,
    format_time,
    parse_bandwidth,
    parse_size,
    parse_speed,
    parse_time,
)


class TestParseBandwidth:
    def test_bare_number_is_bytes_per_second(self):
        assert parse_bandwidth(1.25e8) == 1.25e8
        assert parse_bandwidth("1.25e8") == 1.25e8

    def test_gigabit(self):
        assert parse_bandwidth("1Gbps") == pytest.approx(1.25e8)

    def test_ten_gigabit(self):
        assert parse_bandwidth("10Gbps") == pytest.approx(1.25e9)

    def test_megabytes_per_second(self):
        assert parse_bandwidth("125MBps") == pytest.approx(1.25e8)

    def test_gbps_equals_mbps_conversion(self):
        assert parse_bandwidth("1Gbps") == parse_bandwidth("125MBps")

    def test_binary_prefix(self):
        assert parse_bandwidth("1KiBps") == 1024.0

    def test_kilo_lowercase_and_uppercase(self):
        assert parse_bandwidth("1kbps") == parse_bandwidth("1Kbps") == 125.0

    def test_rejects_garbage(self):
        with pytest.raises(UnitError):
            parse_bandwidth("fast")

    def test_rejects_unknown_suffix(self):
        with pytest.raises(UnitError):
            parse_bandwidth("10Gxps")

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            parse_bandwidth(-1.0)

    def test_scientific_notation_with_unit(self):
        assert parse_bandwidth("1e1Gbps") == pytest.approx(1.25e9)


class TestParseTime:
    def test_bare_seconds(self):
        assert parse_time(2.25e-3) == 2.25e-3

    def test_paper_backbone_latency(self):
        assert parse_time("2.25ms") == pytest.approx(2.25e-3)

    def test_microseconds_both_spellings(self):
        assert parse_time("225us") == pytest.approx(2.25e-4)
        assert parse_time("225µs") == pytest.approx(2.25e-4)

    def test_nanoseconds(self):
        assert parse_time("10ns") == pytest.approx(1e-8)

    def test_minutes_hours(self):
        assert parse_time("2m") == 120.0
        assert parse_time("1h") == 3600.0

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            parse_time("-3ms")


class TestParseSize:
    def test_bare_bytes(self):
        assert parse_size(5e8) == 5e8

    def test_paper_500mb(self):
        assert parse_size("500MB") == pytest.approx(5e8)

    def test_gibibyte(self):
        assert parse_size("1GiB") == 2.0**30

    def test_bits(self):
        assert parse_size("8Mb") == pytest.approx(1e6)

    def test_rejects_nonsense_suffix(self):
        with pytest.raises(UnitError):
            parse_size("1Gx")


class TestParseSpeed:
    def test_gigaflops(self):
        assert parse_speed("1Gf") == pytest.approx(1e9)

    def test_bare(self):
        assert parse_speed(2.4e9) == 2.4e9

    def test_rejects_bad_suffix(self):
        with pytest.raises(UnitError):
            parse_speed("1Ghz")


class TestFormatting:
    def test_format_bandwidth_gbps(self):
        assert format_bandwidth(1.25e8) == "1Gbps"

    def test_format_time_us(self):
        assert format_time(2.25e-4) == "225us"

    def test_format_size_mb(self):
        assert format_size(5e8) == "500MB"

    @given(st.floats(min_value=1.0, max_value=1e13))
    def test_format_parse_bandwidth_roundtrip(self, value):
        assert parse_bandwidth(format_bandwidth(value)) == pytest.approx(
            value, rel=1e-5
        )

    @given(st.floats(min_value=1e-9, max_value=1e4))
    def test_format_parse_time_roundtrip(self, value):
        assert parse_time(format_time(value)) == pytest.approx(value, rel=1e-5)

    @given(st.floats(min_value=1.0, max_value=1e14))
    def test_format_parse_size_roundtrip(self, value):
        assert parse_size(format_size(value)) == pytest.approx(value, rel=1e-5)
