"""The TCP-fluid sharing model, pinned against the synthetic testbed.

``testbed/fluid.py`` + ``testbed/tcp.py`` are the seed's reference for
protocol-realistic flows: RTT-weighted water-filling with slow-start/CUBIC
window ramps and loss-triggered backoff.  :class:`TcpFluidModel` re-expresses
those dynamics as time-varying sharing weights inside the SimGrid kernel,
so on matched topologies (idealized host profiles: zero startup, zero
stack latency, efficiency-1 links) the two implementations must agree —
star, dumbbell and cross-traffic profiles, the acceptance gate of the
pluggable-model refactor.
"""

import pytest

from repro.simgrid.builder import add_star_cluster
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08
from repro.simgrid.platform import Direction, LinkUse, Platform, SharingPolicy
from repro.simgrid.tcpfluid import TcpFluidModel
from repro.testbed.fluid import FluidSimulator, Hop, TestbedNetwork
from repro.testbed.profiles import HostProfile
from repro.testbed.tcp import TcpParams

CAP = 1.25e8
LAT = 1e-4

#: Idealized host: no startup jitter, no stack latency — so only the
#: fluid/window dynamics differ between the two implementations.
IDEAL = HostProfile(name="ideal", startup_median=0.0, startup_sigma=0.0,
                    nic_bandwidth=CAP, nic_efficiency=1.0,
                    stack_latency=0.0, tcp=TcpParams())

#: Single-bottleneck agreement is floating-point exact; multi-bottleneck
#: reduction orders may differ, so allow a sliver.
REL_TOL = 1e-9


# -- matched topology pairs (simgrid platform, testbed network) --------------


def star_platform(n=6):
    platform = Platform("star")
    add_star_cluster(platform, "c", n, host_bandwidth=CAP, host_latency=LAT,
                     routing="Dijkstra")
    return platform


def star_testbed(n=6):
    net = TestbedNetwork("star")
    links = {}
    for i in range(1, n + 1):
        net.add_node(f"c-{i}", IDEAL)
        links[i] = net.add_link(f"c-{i}-link", CAP, LAT, efficiency=1.0)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            if i != j:
                net.add_route(f"c-{i}", f"c-{j}",
                              [Hop(links[i], 0), Hop(links[j], 1)],
                              symmetrical=False)
    return net


def dumbbell_platform(bottleneck=2.5e8, bottleneck_latency=5e-4):
    platform = Platform("dumbbell", routing="Full")
    root = platform.root
    bb = root.add_link("bottleneck", bottleneck, bottleneck_latency,
                       policy=SharingPolicy.FULLDUPLEX)
    edges = {}
    for side in ("left", "right"):
        for i in (1, 2):
            name = f"{side}-{i}"
            root.add_host(name)
            edges[name] = root.add_link(f"{name}-link", CAP, LAT,
                                        policy=SharingPolicy.FULLDUPLEX)
    for li in (1, 2):
        for ri in (1, 2):
            root.add_route(f"left-{li}", f"right-{ri}", [
                LinkUse(edges[f"left-{li}"], Direction.UP),
                LinkUse(bb, Direction.UP),
                LinkUse(edges[f"right-{ri}"], Direction.DOWN),
            ])
    root.add_route("left-1", "left-2", [
        LinkUse(edges["left-1"], Direction.UP),
        LinkUse(edges["left-2"], Direction.DOWN),
    ])
    return platform


def dumbbell_testbed(bottleneck=2.5e8, bottleneck_latency=5e-4):
    net = TestbedNetwork("dumbbell")
    bb = net.add_link("bottleneck", bottleneck, bottleneck_latency,
                      efficiency=1.0)
    edges = {}
    for side in ("left", "right"):
        for i in (1, 2):
            name = f"{side}-{i}"
            net.add_node(name, IDEAL)
            edges[name] = net.add_link(f"{name}-link", CAP, LAT,
                                       efficiency=1.0)
    for li in (1, 2):
        for ri in (1, 2):
            net.add_route(f"left-{li}", f"right-{ri}", [
                Hop(edges[f"left-{li}"], 0),
                Hop(bb, 0),
                Hop(edges[f"right-{ri}"], 1),
            ])
    net.add_route("left-1", "left-2",
                  [Hop(edges["left-1"], 0), Hop(edges["left-2"], 1)])
    return net


def run_simgrid(platform, transfers, **kwargs):
    sim = Simulation(platform, TcpFluidModel(), **kwargs)
    return [c.duration for c in sim.simulate_transfers(transfers)]


def run_testbed(network, transfers):
    sim = FluidSimulator(network, seed=0)
    flows = [sim.submit(src, dst, size) for src, dst, size in transfers]
    sim.run()
    return [f.completion_time_raw for f in flows]


def assert_pinned(simgrid_durations, testbed_durations, rel=REL_TOL):
    assert len(simgrid_durations) == len(testbed_durations)
    for got, want in zip(simgrid_durations, testbed_durations):
        assert got == pytest.approx(want, rel=rel)


# -- the pinning gates -------------------------------------------------------


class TestPinnedAgainstTestbed:
    def test_star_incast(self):
        transfers = [(f"c-{i}", "c-6", 2e8) for i in range(1, 6)]
        assert_pinned(run_simgrid(star_platform(), transfers),
                      run_testbed(star_testbed(), transfers))

    def test_star_solo_ramps(self):
        # small transfers finish mid-slow-start; medium ones cross into
        # the window cap — every phase boundary must agree
        for size in (1e4, 1e5, 1e6, 1e7, 1e9):
            transfers = [("c-1", "c-2", size)]
            assert_pinned(run_simgrid(star_platform(), transfers),
                          run_testbed(star_testbed(), transfers))

    def test_star_pairwise_mix(self):
        transfers = [("c-1", "c-4", 5e7), ("c-2", "c-4", 1.5e8),
                     ("c-3", "c-5", 3e7), ("c-5", "c-1", 8e7)]
        assert_pinned(run_simgrid(star_platform(), transfers),
                      run_testbed(star_testbed(), transfers))

    def test_dumbbell_congestion(self):
        # four flows over one shared bottleneck with unequal sizes
        transfers = [("left-1", "right-1", 2e8), ("left-2", "right-2", 1e8),
                     ("left-1", "right-2", 5e7), ("left-2", "right-1", 5e7)]
        assert_pinned(run_simgrid(dumbbell_platform(), transfers),
                      run_testbed(dumbbell_testbed(), transfers))

    def test_dumbbell_cross_traffic(self):
        # bottleneck flows plus a local flow contending only on edge links
        transfers = [("left-1", "right-1", 1.2e8),
                     ("left-2", "right-2", 9e7),
                     ("left-1", "left-2", 6e7)]
        assert_pinned(run_simgrid(dumbbell_platform(), transfers),
                      run_testbed(dumbbell_testbed(), transfers))

    def test_dumbbell_narrow_bottleneck_forces_backoff(self):
        # fair share far below the window rate: every flow must take the
        # loss-triggered multiplicative decrease at the same round
        transfers = [("left-1", "right-1", 5e7), ("left-2", "right-2", 5e7),
                     ("left-1", "right-2", 5e7)]
        assert_pinned(
            run_simgrid(dumbbell_platform(bottleneck=2.5e7), transfers),
            run_testbed(dumbbell_testbed(bottleneck=2.5e7), transfers))


class TestTcpDynamics:
    def test_rtt_unfairness(self):
        # same size, same bottleneck, 10x the RTT: the long-RTT flow gets
        # ~1/10 the share while both compete, so it finishes later
        platform = dumbbell_platform(bottleneck_latency=5e-3)
        long_rtt, = run_simgrid(platform, [("left-1", "right-1", 2e8)])
        platform = dumbbell_platform(bottleneck_latency=5e-3)
        durations = run_simgrid(platform, [("left-1", "right-1", 2e8),
                                           ("left-1", "left-2", 2e8)])
        assert durations[1] < durations[0]
        # and the contended long-RTT flow still matches the testbed
        assert_pinned(
            durations,
            run_testbed(dumbbell_testbed(bottleneck_latency=5e-3),
                        [("left-1", "right-1", 2e8),
                         ("left-1", "left-2", 2e8)]))

    def test_ramp_is_slower_than_wire_speed(self):
        # a transfer finishing mid-ramp takes much longer than the
        # uncongested handshake + size/bandwidth lower bound
        size = 1e6
        wire = 2 * (2 * LAT) + size / CAP
        fluid, = run_simgrid(star_platform(), [("c-1", "c-2", size)])
        assert fluid > 1.2 * wire

    def test_large_transfers_reach_wire_speed(self):
        # amortized over 8s the ramp must cost well under 1%
        fluid, = run_simgrid(star_platform(), [("c-1", "c-2", 1e9)])
        assert fluid == pytest.approx(1e9 / CAP, rel=1e-2)

    def test_makespan_not_inflated_by_round_timers(self):
        # flows that complete mid-ramp cancel their pending round timers;
        # the makespan is the last completion, not the last timer
        sim = Simulation(star_platform(), TcpFluidModel())
        comms = sim.simulate_transfers([("c-1", "c-2", 1e6)])
        assert sim.clock == pytest.approx(max(c.duration for c in comms))

    def test_solver_modes_agree(self):
        transfers = [(f"c-{i}", "c-6", 3e7) for i in range(1, 6)]
        reference = run_simgrid(star_platform(), transfers)
        for kwargs in ({"full_resolve": True}, {"vectorized": False}):
            assert_pinned(run_simgrid(star_platform(), transfers, **kwargs),
                          reference)

    def test_default_path_unchanged_by_refactor(self):
        # the static default (LV08) must not grow round timers or new
        # latency terms: classic startup + size/(factor * bandwidth)
        model = LV08()
        duration, = [c.duration for c in
                     Simulation(star_platform(), model)
                     .simulate_transfers([("c-1", "c-2", 1e8)])]
        route_latency = 2 * LAT
        expected = (model.latency_factor * route_latency
                    + 1e8 / (model.bandwidth_factor * CAP))
        assert duration == pytest.approx(expected, rel=1e-12)
