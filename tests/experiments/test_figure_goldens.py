"""Golden regression for the 1x10 and 10x10 figure experiments.

The summary statistics of ``fig3`` (sagittaire 1x10) and ``fig4`` (sagittaire
10x10) are frozen into ``goldens/figure_goldens.json``.  Every run of the
experiment pipeline is deterministic given the root seed, so any drift here
means a solver/model/testbed refactor changed results — loudly, instead of
silently shifting the paper-comparison tables.

To regenerate after an *intentional* change:

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_figure_goldens.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.protocol import LARGE_SIZE_THRESHOLD
from repro.experiments.summary import summarize

GOLDEN_PATH = Path(__file__).parent / "goldens" / "figure_goldens.json"
GOLDEN_FIGS = ("fig3", "fig4")
GOLDEN_SEED = 20120917
GOLDEN_REPS = 2
RTOL = 1e-9


def compute_golden(fig_id: str, forecast, network) -> dict:
    series, _failures = run_figure(
        fig_id, forecast, network, seed=GOLDEN_SEED, repetitions=GOLDEN_REPS
    )
    stats = summarize([series], size_threshold=LARGE_SIZE_THRESHOLD)
    return {
        "rows": [list(row) for row in series.rows()],
        "summary": {
            "n_observations": stats.n_observations,
            "median_abs_error": stats.median_abs_error,
            "error_stddev": stats.error_stddev,
            "fraction_below_0575": stats.fraction_below_0575,
        },
    }


@pytest.fixture(scope="module")
def goldens(forecast_service, g5k_testbed) -> dict:
    computed = {
        fig_id: compute_golden(fig_id, forecast_service, g5k_testbed)
        for fig_id in GOLDEN_FIGS
    }
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(
                {
                    "_meta": {"seed": GOLDEN_SEED, "repetitions": GOLDEN_REPS},
                    **computed,
                },
                indent=1,
            )
            + "\n",
            encoding="utf-8",
        )
    return computed


def stored() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — generate it with REPRO_UPDATE_GOLDENS=1"
    )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("fig_id", GOLDEN_FIGS)
def test_rows_match_golden(goldens, fig_id):
    frozen = stored()[fig_id]["rows"]
    fresh = goldens[fig_id]["rows"]
    assert len(fresh) == len(frozen), (
        f"{fig_id}: {len(fresh)} size points vs {len(frozen)} frozen"
    )
    for fresh_row, frozen_row in zip(fresh, frozen):
        # size, median error, q1, q3, median duration, n
        assert fresh_row[0] == pytest.approx(frozen_row[0], rel=RTOL)
        for got, want, column in zip(
            fresh_row[1:5], frozen_row[1:5],
            ("median error", "q1", "q3", "median duration"),
        ):
            assert got == pytest.approx(want, rel=RTOL, abs=1e-12), (
                f"{fig_id} size {fresh_row[0]:.3g}: {column} drifted "
                f"({got!r} vs frozen {want!r})"
            )
        assert fresh_row[5] == frozen_row[5]


@pytest.mark.parametrize("fig_id", GOLDEN_FIGS)
def test_summary_matches_golden(goldens, fig_id):
    frozen = stored()[fig_id]["summary"]
    fresh = goldens[fig_id]["summary"]
    assert fresh["n_observations"] == frozen["n_observations"]
    for key in ("median_abs_error", "error_stddev", "fraction_below_0575"):
        assert fresh[key] == pytest.approx(frozen[key], rel=RTOL, abs=1e-12), (
            f"{fig_id}: summary statistic {key} drifted "
            f"({fresh[key]!r} vs frozen {frozen[key]!r})"
        )


def test_golden_metadata_matches_parameters():
    meta = stored()["_meta"]
    assert meta["seed"] == GOLDEN_SEED
    assert meta["repetitions"] == GOLDEN_REPS
