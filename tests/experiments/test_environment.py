"""Cached experiment environment and its env-var knobs."""

import pytest

from repro.experiments import environment


class TestCaches:
    def test_platforms_cached(self):
        assert environment.g5k_test_platform() is environment.g5k_test_platform()
        assert environment.testbed() is environment.testbed()

    def test_forecast_service_has_both_platforms(self):
        service = environment.forecast_service()
        assert service.platform_names() == ["g5k_cabinets", "g5k_test"]

    def test_equipment_limits_platform_distinct(self):
        limited = environment.g5k_test_with_equipment_limits()
        assert limited is not environment.g5k_test_platform()
        assert limited.link("sgraphene1-backplane")


class TestEnvKnobs:
    def test_default_repetitions(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert environment.default_repetitions() == 5
        monkeypatch.setenv("REPRO_REPS", "10")
        assert environment.default_repetitions() == 10
        monkeypatch.setenv("REPRO_REPS", "0")
        assert environment.default_repetitions() == 1  # clamped
        monkeypatch.setenv("REPRO_REPS", "many")
        assert environment.default_repetitions() == 5  # fallback

    def test_root_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert environment.root_seed() == 20120917
        monkeypatch.setenv("REPRO_SEED", "7")
        assert environment.root_seed() == 7
        monkeypatch.setenv("REPRO_SEED", "xyz")
        assert environment.root_seed() == 20120917
