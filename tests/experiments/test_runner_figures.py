"""Experiment runner and figure specs (fast reduced sweeps)."""

import pytest

from repro.analysis.errors import ErrorSeries
from repro.experiments.figures import (
    FIGURES,
    converges_with_size,
    plateau_within,
    small_size_error_at_least,
    small_size_error_at_most,
)
from repro.experiments.protocol import ExperimentSpec, Topology
from repro.experiments.runner import run_experiment

FAST_SIZES = (1e5, 2.15e8, 1e10)


class TestRunner:
    def test_series_structure(self, forecast_service, g5k_testbed):
        spec = ExperimentSpec("t", Topology.CLUSTER, 2, 2, cluster="sagittaire")
        series = run_experiment(spec, forecast_service, g5k_testbed,
                                seed=1, repetitions=2, sizes=FAST_SIZES)
        assert series.sizes() == sorted(FAST_SIZES)
        for point in series.points:
            assert point.count == 2 * 2  # transfers x repetitions

    def test_deterministic_given_seed(self, forecast_service, g5k_testbed):
        spec = ExperimentSpec("t", Topology.CLUSTER, 2, 2, cluster="graphene")
        s1 = run_experiment(spec, forecast_service, g5k_testbed, seed=5,
                            repetitions=1, sizes=(1e7,))
        s2 = run_experiment(spec, forecast_service, g5k_testbed, seed=5,
                            repetitions=1, sizes=(1e7,))
        assert s1.points[0].errors == s2.points[0].errors

    def test_repetitions_redraw_endpoints(self, forecast_service, g5k_testbed):
        spec = ExperimentSpec("t", Topology.CLUSTER, 1, 1, cluster="sagittaire")
        series = run_experiment(spec, forecast_service, g5k_testbed, seed=2,
                                repetitions=4, sizes=(1e9,))
        # different node pairs + different noise => dispersed errors
        assert len(set(series.points[0].errors)) > 1

    def test_progress_callback_invoked(self, forecast_service, g5k_testbed):
        calls = []
        spec = ExperimentSpec("t", Topology.CLUSTER, 1, 1, cluster="sagittaire")
        run_experiment(spec, forecast_service, g5k_testbed, seed=1,
                       repetitions=2, sizes=(1e6, 1e8),
                       progress=lambda rep, size: calls.append((rep, size)))
        assert len(calls) == 4


class TestFigureRegistry:
    def test_all_paper_figures_present(self):
        assert {f"fig{i}" for i in range(3, 12)} <= set(FIGURES)

    def test_specs_match_paper_parameters(self):
        assert FIGURES["fig3"].spec.cluster == "sagittaire"
        assert (FIGURES["fig3"].spec.n_sources,
                FIGURES["fig3"].spec.n_destinations) == (1, 10)
        assert FIGURES["fig9"].spec.cluster == "graphene"
        assert (FIGURES["fig9"].spec.n_sources,
                FIGURES["fig9"].spec.n_destinations) == (50, 50)
        assert FIGURES["fig10"].spec.topology is Topology.GRID_MULTI
        assert (FIGURES["fig11"].spec.n_sources,
                FIGURES["fig11"].spec.n_destinations) == (60, 60)

    def test_asymmetric_cases_present(self):
        assert "fig9-asym-30x50" in FIGURES
        assert "fig9-asym-50x30" in FIGURES

    def test_default_repetitions_match_paper(self):
        assert FIGURES["fig3"].spec.repetitions == 10


class TestChecks:
    def series_with(self, small_error, plateau_error):
        series = ErrorSeries("synthetic")
        for size, err in ((1e5, small_error), (5.99e7, plateau_error),
                          (1e10, plateau_error)):
            point = series.point(size)
            for _ in range(3):
                point.add(prediction=2.0**err, measure=1.0)
        return series

    def test_small_size_checks(self):
        series = self.series_with(-4.0, 0.0)
        assert small_size_error_at_most(-2.0)(series) is None
        assert small_size_error_at_most(-5.0)(series) is not None
        assert small_size_error_at_least(0.5)(series) is not None

    def test_plateau_check(self):
        series = self.series_with(-4.0, 0.3)
        assert plateau_within(0.0, 0.6)(series) is None
        assert plateau_within(-0.2, 0.2)(series) is not None

    def test_convergence_check(self):
        good = self.series_with(-4.0, -0.1)
        assert converges_with_size(1.0)(good) is None
        flat = self.series_with(-0.5, -0.4)
        assert converges_with_size(1.0)(flat) is not None

    def test_verify_collects_failures(self):
        figure = FIGURES["fig3"]
        bad = self.series_with(+1.0, +2.0)  # wrong sign everywhere
        failures = figure.verify(bad)
        assert failures
        assert all("fig3/" in f for f in failures)
