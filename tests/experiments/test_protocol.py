"""Experiment protocol: sizes, endpoint drawing rules."""

import math

import pytest

from repro.experiments.protocol import (
    ENDPOINT_COUNTS,
    LARGE_SIZE_THRESHOLD,
    TRANSFER_SIZES,
    ExperimentSpec,
    Topology,
    draw_transfer_pairs,
)
from repro.g5k.sites import CLUSTERS, cluster_spec


class TestSizes:
    def test_ten_sizes_geometric(self):
        assert len(TRANSFER_SIZES) == 10
        ratios = {TRANSFER_SIZES[i + 1] / TRANSFER_SIZES[i] for i in range(9)}
        assert all(math.isclose(r, 10 ** (5 / 9), rel_tol=1e-9) for r in ratios)

    def test_paper_tick_labels(self):
        # the figures label: 1.00e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7, 5.99e7,
        # 2.15e8, 7.74e8, 2.78e9, 1.00e10
        labels = [f"{s:.2e}" for s in TRANSFER_SIZES]
        assert labels == ["1.00e+05", "3.59e+05", "1.29e+06", "4.64e+06",
                          "1.67e+07", "5.99e+07", "2.15e+08", "7.74e+08",
                          "2.78e+09", "1.00e+10"]

    def test_large_threshold_is_fifth_size(self):
        assert LARGE_SIZE_THRESHOLD == TRANSFER_SIZES[4]
        assert f"{LARGE_SIZE_THRESHOLD:.2e}" == "1.67e+07"

    def test_endpoint_counts(self):
        assert ENDPOINT_COUNTS == (1, 10, 30, 50, 60)


class TestSpecValidation:
    def test_cluster_topology_requires_cluster(self):
        with pytest.raises(ValueError):
            ExperimentSpec("x", Topology.CLUSTER, 10, 10)

    def test_cluster_capacity_checked(self):
        # sagittaire has 79 nodes: 50+50 disjoint endpoints are impossible
        with pytest.raises(ValueError):
            ExperimentSpec("x", Topology.CLUSTER, 50, 50, cluster="sagittaire")

    def test_n_transfers_is_max(self):
        spec = ExperimentSpec("x", Topology.CLUSTER, 10, 30, cluster="graphene")
        assert spec.n_transfers == 30

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            ExperimentSpec("x", Topology.GRID_MULTI, 0, 10)


class TestClusterDraw:
    def spec(self, n_src, n_dst):
        return ExperimentSpec("t", Topology.CLUSTER, n_src, n_dst,
                              cluster="graphene")

    def test_transfer_count_rule(self):
        assert len(draw_transfer_pairs(self.spec(10, 30), seed=1)) == 30
        assert len(draw_transfer_pairs(self.spec(30, 10), seed=1)) == 30
        assert len(draw_transfer_pairs(self.spec(10, 10), seed=1)) == 10

    def test_endpoints_within_cluster(self):
        pairs = draw_transfer_pairs(self.spec(10, 10), seed=2)
        nodes = set(cluster_spec("graphene").node_uids())
        for src, dst in pairs:
            assert src in nodes and dst in nodes

    def test_sources_and_destinations_disjoint(self):
        pairs = draw_transfer_pairs(self.spec(30, 30), seed=3)
        sources = {s for s, _ in pairs}
        destinations = {d for _, d in pairs}
        assert not sources & destinations

    def test_fewer_sources_cycle(self):
        # "when nsources < ndestinations, some will be source of more than
        # one TCP transfer"
        pairs = draw_transfer_pairs(self.spec(10, 30), seed=4)
        sources = [s for s, _ in pairs]
        assert len(set(sources)) == 10
        counts = {s: sources.count(s) for s in set(sources)}
        assert all(c == 3 for c in counts.values())
        destinations = [d for _, d in pairs]
        assert len(set(destinations)) == 30

    def test_fewer_destinations_cycle(self):
        pairs = draw_transfer_pairs(self.spec(30, 10), seed=5)
        destinations = [d for _, d in pairs]
        assert len(set(destinations)) == 10
        assert len({s for s, _ in pairs}) == 30

    def test_deterministic_given_seed(self):
        assert draw_transfer_pairs(self.spec(10, 10), seed=6) == \
            draw_transfer_pairs(self.spec(10, 10), seed=6)

    def test_different_seeds_differ(self):
        assert draw_transfer_pairs(self.spec(10, 10), seed=7) != \
            draw_transfer_pairs(self.spec(10, 10), seed=8)


class TestGridDraw:
    def spec(self, n_src, n_dst):
        return ExperimentSpec("g", Topology.GRID_MULTI, n_src, n_dst)

    def site_of(self, uid):
        return uid.split(".")[1]

    def test_all_transfers_cross_sites(self):
        # §V-A: "all transfers are across Grid'5000 site boundaries"
        for seed in range(5):
            pairs = draw_transfer_pairs(self.spec(30, 30), seed=seed)
            for src, dst in pairs:
                assert self.site_of(src) != self.site_of(dst)

    def test_cross_site_constraint_with_cycled_destinations(self):
        pairs = draw_transfer_pairs(self.spec(60, 30), seed=9)
        assert len(pairs) == 60
        for src, dst in pairs:
            assert self.site_of(src) != self.site_of(dst)

    def test_endpoints_span_multiple_sites(self):
        pairs = draw_transfer_pairs(self.spec(30, 30), seed=10)
        sites = {self.site_of(s) for s, _ in pairs} | \
                {self.site_of(d) for _, d in pairs}
        assert len(sites) >= 2

    def test_destinations_unique(self):
        pairs = draw_transfer_pairs(self.spec(10, 30), seed=11)
        destinations = [d for _, d in pairs]
        assert len(set(destinations)) == 30
