"""Full-campaign sweep and engine wiring."""

import pytest

from repro.experiments.campaign import (
    campaign_summary,
    campaign_sweep,
    run_campaign,
    spec_for,
)
from repro.experiments.protocol import Topology
from repro.orchestration.sweep import ParamSweep


class TestSweep:
    def test_infeasible_sagittaire_combinations_excluded(self):
        combos = campaign_sweep().combinations()
        for c in combos:
            if c["topology"] is Topology.CLUSTER and c["cluster"] == "sagittaire":
                assert c["n_src"] + c["n_dst"] <= 79

    def test_cluster_capacity_rules(self):
        combos = campaign_sweep().combinations()

        def pairs(cluster):
            return [
                (c["n_src"], c["n_dst"]) for c in combos
                if c["topology"] is Topology.CLUSTER and c["cluster"] == cluster
            ]

        graphene = pairs("graphene")
        assert (50, 50) in graphene        # fig9
        assert (60, 60) in graphene        # 120 endpoints fit in 144 nodes
        sagittaire = pairs("sagittaire")
        assert (30, 30) in sagittaire      # fig5
        assert (50, 50) not in sagittaire  # 100 endpoints > 79 nodes
        assert (30, 50) not in sagittaire

    def test_grid_combinations_not_duplicated_per_cluster(self):
        combos = campaign_sweep().combinations()
        grid = [c for c in combos if c["topology"] is Topology.GRID_MULTI]
        pairs = [(c["n_src"], c["n_dst"]) for c in grid]
        assert len(pairs) == len(set(pairs))

    def test_published_figures_are_in_the_campaign(self):
        combos = campaign_sweep().combinations()
        keys = {
            (c["topology"], c.get("cluster"), c["n_src"], c["n_dst"])
            for c in combos
        }
        assert (Topology.CLUSTER, "sagittaire", 1, 10) in keys      # fig3
        assert (Topology.CLUSTER, "graphene", 50, 50) in keys       # fig9
        assert (Topology.GRID_MULTI, "sagittaire", 60, 60) in keys  # fig11

    def test_spec_for_names_and_fields(self):
        spec = spec_for({"topology": Topology.CLUSTER, "cluster": "graphene",
                         "n_src": 30, "n_dst": 50})
        assert spec.name == "CLUSTER-graphene-30x50"
        assert spec.n_transfers == 50
        grid = spec_for({"topology": Topology.GRID_MULTI, "cluster": "x",
                         "n_src": 10, "n_dst": 10})
        assert grid.cluster is None


class TestRunCampaign:
    def small_sweep(self):
        sweep = ParamSweep({
            "topology": [Topology.CLUSTER],
            "cluster": ["graphene"],
            "n_src": [1, 2],
            "n_dst": [2],
        })
        return sweep

    def test_slice_runs_and_summarizes(self, forecast_service, g5k_testbed):
        results = run_campaign(
            forecast_service, g5k_testbed, sweep=self.small_sweep(),
            seed=3, repetitions=1, sizes=(5.99e7, 1e9),
        )
        assert len(results) == 2
        for series in results.values():
            assert series.sizes() == [5.99e7, 1e9]
        stats = campaign_summary(results)
        assert stats.n_observations == (2 + 2) * 2  # transfers x sizes...

    def test_progress_reported(self, forecast_service, g5k_testbed):
        seen = []
        run_campaign(
            forecast_service, g5k_testbed, sweep=self.small_sweep(),
            seed=3, repetitions=1, sizes=(1e9,),
            progress=lambda comb, res: seen.append(comb["n_src"]),
        )
        assert sorted(seen) == [1, 2]

    def test_deterministic_per_combination(self, forecast_service, g5k_testbed):
        r1 = run_campaign(forecast_service, g5k_testbed,
                          sweep=self.small_sweep(), seed=9,
                          repetitions=1, sizes=(1e9,))
        r2 = run_campaign(forecast_service, g5k_testbed,
                          sweep=self.small_sweep(), seed=9,
                          repetitions=1, sizes=(1e9,))
        for key in r1:
            assert r1[key].points[0].errors == r2[key].points[0].errors


class TestParallelCampaign:
    """The process-pool executor must be a bit-identical drop-in."""

    def sweep(self):
        return ParamSweep({
            "topology": [Topology.CLUSTER],
            "cluster": ["graphene"],
            "n_src": [1, 2, 3],
            "n_dst": [2, 4],
        })

    def test_parallel_matches_serial_bitwise(self, forecast_service, g5k_testbed):
        kwargs = dict(seed=9, repetitions=1, sizes=(5.99e7, 1e9))
        serial = run_campaign(forecast_service, g5k_testbed,
                              sweep=self.sweep(), **kwargs)
        parallel = run_campaign(forecast_service, g5k_testbed,
                                sweep=self.sweep(), workers=2, **kwargs)
        assert list(serial) == list(parallel)  # sweep-order aggregation
        for key in serial:
            assert serial[key].rows() == parallel[key].rows()
        assert campaign_summary(serial) == campaign_summary(parallel)

    def test_parallel_chunking_does_not_change_results(
            self, forecast_service, g5k_testbed):
        kwargs = dict(seed=9, repetitions=1, sizes=(1e9,))
        by_one = run_campaign(forecast_service, g5k_testbed, sweep=self.sweep(),
                              workers=2, chunk_size=1, **kwargs)
        by_three = run_campaign(forecast_service, g5k_testbed, sweep=self.sweep(),
                                workers=2, chunk_size=3, **kwargs)
        for key in by_one:
            assert by_one[key].rows() == by_three[key].rows()

    def test_parallel_progress_reported_in_sweep_order(
            self, forecast_service, g5k_testbed):
        seen = []
        run_campaign(
            forecast_service, g5k_testbed, sweep=self.sweep(), seed=3,
            repetitions=1, sizes=(1e9,), workers=2,
            progress=lambda comb, res: seen.append((comb["n_src"], comb["n_dst"])),
        )
        assert seen == [(c["n_src"], c["n_dst"])
                        for c in self.sweep().combinations()]

    def test_parallel_rejects_mismatched_custom_environment(self, g5k_testbed):
        from repro.core.forecast import NetworkForecastService

        custom = NetworkForecastService({})
        with pytest.raises(ValueError, match="environment_factory"):
            run_campaign(custom, g5k_testbed, sweep=self.sweep(), seed=3,
                         repetitions=1, sizes=(1e9,), workers=2)

    def test_parallel_failure_surfaces_combination_id(
            self, forecast_service, g5k_testbed):
        bad = ParamSweep({
            "topology": [Topology.CLUSTER],
            "cluster": ["no-such-cluster"],
            "n_src": [1],
            "n_dst": [2],
        })
        with pytest.raises(RuntimeError, match="no-such-cluster"):
            run_campaign(forecast_service, g5k_testbed, sweep=bad,
                         seed=3, repetitions=1, sizes=(1e9,), workers=2,
                         max_retries=0)
