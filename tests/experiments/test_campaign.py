"""Full-campaign sweep and engine wiring."""

import pytest

from repro.experiments.campaign import (
    campaign_summary,
    campaign_sweep,
    run_campaign,
    spec_for,
)
from repro.experiments.protocol import Topology
from repro.orchestration.sweep import ParamSweep


class TestSweep:
    def test_infeasible_sagittaire_combinations_excluded(self):
        combos = campaign_sweep().combinations()
        for c in combos:
            if c["topology"] is Topology.CLUSTER and c["cluster"] == "sagittaire":
                assert c["n_src"] + c["n_dst"] <= 79

    def test_cluster_capacity_rules(self):
        combos = campaign_sweep().combinations()

        def pairs(cluster):
            return [
                (c["n_src"], c["n_dst"]) for c in combos
                if c["topology"] is Topology.CLUSTER and c["cluster"] == cluster
            ]

        graphene = pairs("graphene")
        assert (50, 50) in graphene        # fig9
        assert (60, 60) in graphene        # 120 endpoints fit in 144 nodes
        sagittaire = pairs("sagittaire")
        assert (30, 30) in sagittaire      # fig5
        assert (50, 50) not in sagittaire  # 100 endpoints > 79 nodes
        assert (30, 50) not in sagittaire

    def test_grid_combinations_not_duplicated_per_cluster(self):
        combos = campaign_sweep().combinations()
        grid = [c for c in combos if c["topology"] is Topology.GRID_MULTI]
        pairs = [(c["n_src"], c["n_dst"]) for c in grid]
        assert len(pairs) == len(set(pairs))

    def test_published_figures_are_in_the_campaign(self):
        combos = campaign_sweep().combinations()
        keys = {
            (c["topology"], c.get("cluster"), c["n_src"], c["n_dst"])
            for c in combos
        }
        assert (Topology.CLUSTER, "sagittaire", 1, 10) in keys      # fig3
        assert (Topology.CLUSTER, "graphene", 50, 50) in keys       # fig9
        assert (Topology.GRID_MULTI, "sagittaire", 60, 60) in keys  # fig11

    def test_spec_for_names_and_fields(self):
        spec = spec_for({"topology": Topology.CLUSTER, "cluster": "graphene",
                         "n_src": 30, "n_dst": 50})
        assert spec.name == "CLUSTER-graphene-30x50"
        assert spec.n_transfers == 50
        grid = spec_for({"topology": Topology.GRID_MULTI, "cluster": "x",
                         "n_src": 10, "n_dst": 10})
        assert grid.cluster is None


class TestRunCampaign:
    def small_sweep(self):
        sweep = ParamSweep({
            "topology": [Topology.CLUSTER],
            "cluster": ["graphene"],
            "n_src": [1, 2],
            "n_dst": [2],
        })
        return sweep

    def test_slice_runs_and_summarizes(self, forecast_service, g5k_testbed):
        results = run_campaign(
            forecast_service, g5k_testbed, sweep=self.small_sweep(),
            seed=3, repetitions=1, sizes=(5.99e7, 1e9),
        )
        assert len(results) == 2
        for series in results.values():
            assert series.sizes() == [5.99e7, 1e9]
        stats = campaign_summary(results)
        assert stats.n_observations == (2 + 2) * 2  # transfers x sizes...

    def test_progress_reported(self, forecast_service, g5k_testbed):
        seen = []
        run_campaign(
            forecast_service, g5k_testbed, sweep=self.small_sweep(),
            seed=3, repetitions=1, sizes=(1e9,),
            progress=lambda comb, res: seen.append(comb["n_src"]),
        )
        assert sorted(seen) == [1, 2]

    def test_deterministic_per_combination(self, forecast_service, g5k_testbed):
        r1 = run_campaign(forecast_service, g5k_testbed,
                          sweep=self.small_sweep(), seed=9,
                          repetitions=1, sizes=(1e9,))
        r2 = run_campaign(forecast_service, g5k_testbed,
                          sweep=self.small_sweep(), seed=9,
                          repetitions=1, sizes=(1e9,))
        for key in r1:
            assert r1[key].points[0].errors == r2[key].points[0].errors
