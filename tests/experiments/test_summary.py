"""§V-B summary statistics."""

import pytest

from repro.analysis.errors import ErrorSeries
from repro.experiments.summary import (
    PAPER_FRACTION_THRESHOLD,
    PAPER_MEDIAN_ABS_ERROR,
    SummaryStats,
    summarize,
    verify_summary,
)


def series_with_errors(name, size, errors):
    series = ErrorSeries(name)
    point = series.point(size)
    for err in errors:
        point.add(prediction=2.0**err, measure=1.0)
    return series


class TestSummarize:
    def test_pools_across_series(self):
        s1 = series_with_errors("a", 1e9, [0.1, 0.2])
        s2 = series_with_errors("b", 1e8, [-0.1, -0.3])
        stats = summarize([s1, s2], size_threshold=1.67e7)
        assert stats.n_observations == 4
        assert stats.median_abs_error == pytest.approx(0.15, abs=0.01)

    def test_small_sizes_excluded(self):
        s1 = series_with_errors("a", 1e9, [0.1])
        s2 = series_with_errors("b", 1e5, [-8.0])  # must not pollute
        stats = summarize([s1, s2], size_threshold=1.67e7)
        assert stats.n_observations == 1

    def test_fraction_below_paper_threshold(self):
        errors = [0.1] * 7 + [1.0] * 3
        stats = summarize([series_with_errors("a", 1e9, errors)])
        assert stats.fraction_below_0575 == pytest.approx(0.7)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([series_with_errors("a", 1e5, [0.1])])

    def test_rows_report_paper_values(self):
        stats = summarize([series_with_errors("a", 1e9, [0.1, 0.2, 0.3])])
        rows = stats.rows()
        assert rows[0][1] == PAPER_MEDIAN_ABS_ERROR
        assert len(rows) == 3


class TestVerify:
    def test_paper_like_stats_pass(self):
        stats = SummaryStats(n_observations=1000, median_abs_error=0.149,
                             error_stddev=0.532, fraction_below_0575=0.74)
        assert verify_summary(stats) == []

    def test_bad_median_fails(self):
        stats = SummaryStats(1000, median_abs_error=0.9, error_stddev=0.5,
                             fraction_below_0575=0.74)
        failures = verify_summary(stats)
        assert any("median" in f for f in failures)

    def test_bad_fraction_fails(self):
        stats = SummaryStats(1000, 0.15, 0.5, fraction_below_0575=0.3)
        assert any("0.575" in f for f in verify_summary(stats))

    def test_threshold_constant(self):
        assert PAPER_FRACTION_THRESHOLD == 0.575
