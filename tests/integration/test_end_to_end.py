"""End-to-end integration: the paper's workflow over real components.

These tests exercise the full pipeline the paper describes: reference API →
converter → platform → PNFS over HTTP, and prediction vs. testbed
measurement on reduced workloads.
"""

import math

import pytest

from repro.analysis.errors import log2_error
from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.experiments.figures import run_figure
from repro.experiments.protocol import ExperimentSpec, Topology
from repro.experiments.runner import run_experiment
from repro.testbed.measurement import run_transfers


@pytest.fixture(scope="module")
def pilgrim(forecast_service):
    instance = Pilgrim()
    # reuse the session-cached platforms instead of rebuilding
    for name in forecast_service.platform_names():
        instance.register_platform(name, forecast_service.platform(name))
    return instance


@pytest.fixture(scope="module")
def http(pilgrim):
    server = pilgrim.serve().start()
    yield RestClient(server.url)
    server.stop()


class TestPaperExamples:
    def test_pnfs_example_request(self, http):
        """§IV-C2's example: two concurrent 500 MB transfers."""
        answers = http.predict_transfers("g5k_test", [
            ("capricorne-36.lyon.grid5000.fr",
             "griffon-50.nancy.grid5000.fr", 5e8),
            ("capricorne-36.lyon.grid5000.fr",
             "capricorne-1.lyon.grid5000.fr", 5e8),
        ])
        assert [a["src"] for a in answers] == [
            "capricorne-36.lyon.grid5000.fr"] * 2
        wan, lan = answers
        assert lan["duration"] < wan["duration"]
        assert lan["size"] == 5e8

    def test_unknown_host_maps_to_404(self, http):
        from repro.core.rest.errors import NotFound

        with pytest.raises(NotFound):
            http.predict_transfers(
                "g5k_test", [("ghost.lyon.grid5000.fr",
                              "capricorne-1.lyon.grid5000.fr", 1e6)]
            )


class TestPredictionVsMeasurement:
    def test_sagittaire_large_transfer_accurate(self, forecast_service,
                                                g5k_testbed):
        src = "sagittaire-3.lyon.grid5000.fr"
        dst = "sagittaire-7.lyon.grid5000.fr"
        predicted = forecast_service.predict_transfers(
            "g5k_test", [(src, dst, 1e9)]
        )[0].duration
        measured = run_transfers(g5k_testbed, [(src, dst, 1e9)], seed=1)
        err = log2_error(predicted, measured[0].duration)
        assert abs(err) < 0.4

    def test_sagittaire_small_transfer_underpredicted(self, forecast_service,
                                                      g5k_testbed):
        src = "sagittaire-3.lyon.grid5000.fr"
        dst = "sagittaire-7.lyon.grid5000.fr"
        predicted = forecast_service.predict_transfers(
            "g5k_test", [(src, dst, 1e5)]
        )[0].duration
        measured = run_transfers(g5k_testbed, [(src, dst, 1e5)], seed=1)
        err = log2_error(predicted, measured[0].duration)
        assert err < -2.0  # the flow model misses startup + slow start

    def test_graphene_contention_overpredicted(self, forecast_service,
                                               g5k_testbed):
        # inter-group flows on the SHARED-modeled uplinks with many peers
        spec = ExperimentSpec("mini-30x30", Topology.CLUSTER, 30, 30,
                              cluster="graphene")
        series = run_experiment(spec, forecast_service, g5k_testbed,
                                seed=3, repetitions=2, sizes=(1e9,))
        assert series.points[0].median_error > 0.0

    def test_figure_pipeline_smoke(self, forecast_service, g5k_testbed):
        series, failures = run_figure(
            "fig3", forecast_service, g5k_testbed, seed=4,
            repetitions=2, sizes=(1e5, 5.99e7, 1e10),
        )
        assert failures == []
        assert series.points[0].median_error < -2.0


class TestFailureInjection:
    def test_concurrent_platform_registration(self, pilgrim):
        from repro.simgrid.builder import build_star_cluster

        pilgrim.register_platform("tmp", build_star_cluster("tmp", 2))
        forecasts = pilgrim.predict_transfers("tmp", [("tmp-1", "tmp-2", 1e6)])
        assert forecasts[0].duration > 0

    def test_service_survives_bad_then_good_requests(self, http):
        from repro.core.rest.errors import BadRequest

        with pytest.raises(BadRequest):
            http.get("/pilgrim/predict_transfers/g5k_test",
                     [("transfer", "broken")])
        answers = http.predict_transfers(
            "g5k_test", [("sagittaire-1.lyon.grid5000.fr",
                          "sagittaire-2.lyon.grid5000.fr", 1e6)]
        )
        assert answers[0]["duration"] > 0
