"""Robustness and failure injection across the full pipeline."""

import math

import pytest

from repro._util.stats import median
from repro.analysis.errors import log2_error
from repro.experiments.protocol import ExperimentSpec, Topology, draw_transfer_pairs
from repro.experiments.runner import run_experiment
from repro.testbed.crosstraffic import CrossTrafficSpec
from repro.testbed.measurement import run_transfers


class TestCrossTrafficDegradation:
    def test_errors_grow_but_stay_bounded_under_cross_traffic(
        self, forecast_service, g5k_testbed
    ):
        # the paper minimizes cross-traffic (night reservations); with
        # moderate background the large-transfer accuracy degrades
        # gracefully, it does not collapse
        spec = ExperimentSpec("xt", Topology.CLUSTER, 4, 4, cluster="graphene")
        pairs = draw_transfer_pairs(spec, seed=17)
        transfers = [(s, d, 1e9) for s, d in pairs]
        background = CrossTrafficSpec(
            arrival_rate=1.0, duration=20.0,
            size_log_mean=19.0, size_log_sigma=1.0,
            nodes=tuple(sorted({s for s, _ in pairs}
                               | {d for _, d in pairs})),
        )
        predictions = [f.duration for f in forecast_service.predict_transfers(
            "g5k_test", transfers)]
        clean = run_transfers(g5k_testbed, transfers, seed=17)
        noisy = run_transfers(g5k_testbed, transfers, seed=17,
                              background=background)
        clean_err = median([abs(log2_error(p, m.duration))
                            for p, m in zip(predictions, clean)])
        noisy_err = median([abs(log2_error(p, m.duration))
                            for p, m in zip(predictions, noisy)])
        assert noisy_err >= clean_err
        assert noisy_err < 2.5  # degraded, not meaningless


class TestLinkDegradation:
    def test_degraded_backbone_breaks_predictions_until_recalibrated(
        self, forecast_service, g5k_testbed
    ):
        src = "sagittaire-5.lyon.grid5000.fr"
        dst = "graphene-5.nancy.grid5000.fr"
        transfer = [(src, dst, 1e9)]
        link = g5k_testbed.links["tb-bb-lyon-nancy"]
        original = link.capacity
        try:
            link.capacity = original / 50.0  # degraded to 200 Mbps
            measured = run_transfers(g5k_testbed, transfer, seed=23)
            predicted = forecast_service.predict_transfers(
                "g5k_test", transfer)[0].duration
            blind_error = log2_error(predicted, measured[0].duration)
            assert blind_error < -1.0  # model unaware of the degradation
            # a capacity factor recovers the prediction
            informed = forecast_service.predict_transfers(
                "g5k_test", transfer,
                capacity_factors={"renater-lyon-nancy": 1.0 / 50.0},
            )[0].duration
            informed_error = log2_error(informed, measured[0].duration)
            assert abs(informed_error) < abs(blind_error)
        finally:
            link.capacity = original


class TestSeedSensitivity:
    def test_conclusions_stable_across_seeds(self, forecast_service,
                                             g5k_testbed):
        # the fig8 over-prediction sign must not depend on the seed
        spec = ExperimentSpec("seed-fig8", Topology.CLUSTER, 30, 30,
                              cluster="graphene")
        plateaus = []
        for seed in (1, 2, 3):
            series = run_experiment(spec, forecast_service, g5k_testbed,
                                    seed=seed, repetitions=1, sizes=(1e9,))
            plateaus.append(series.points[0].median_error)
        assert all(p > 0 for p in plateaus)

    def test_sagittaire_sign_stable_across_seeds(self, forecast_service,
                                                 g5k_testbed):
        spec = ExperimentSpec("seed-fig4", Topology.CLUSTER, 10, 10,
                              cluster="sagittaire")
        for seed in (1, 2, 3):
            series = run_experiment(spec, forecast_service, g5k_testbed,
                                    seed=seed, repetitions=1, sizes=(1e5,))
            assert series.points[0].median_error < -2.0


class TestPlatformMutation:
    def test_latency_update_affects_next_request_only(self, forecast_service):
        # fresh platform so mutations don't leak into other tests
        from repro.g5k.converter import to_simgrid_platform
        from repro.g5k.sites import grid5000_dev_reference

        platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test",
                                       sites=("lyon",))
        forecast_service.register_platform("mutable", platform)
        transfer = [("sagittaire-1.lyon.grid5000.fr",
                     "sagittaire-2.lyon.grid5000.fr", 1e6)]
        before = forecast_service.predict_transfers("mutable", transfer)[0]
        platform.link("sagittaire-1.lyon.grid5000.fr-link").latency *= 10
        after = forecast_service.predict_transfers("mutable", transfer)[0]
        assert after.duration > before.duration
