"""Error metrics and per-size aggregation."""

import math

import pytest

from repro.analysis.errors import ErrorSeries, SizePoint, log2_error


class TestLog2Error:
    def test_paper_metric_definition(self):
        assert log2_error(2.0, 1.0) == pytest.approx(1.0)
        assert log2_error(1.0, 2.0) == pytest.approx(-1.0)
        assert log2_error(3.0, 3.0) == 0.0

    def test_positive_means_overprediction(self):
        # prediction slower than measure => positive (graphene's signature)
        assert log2_error(1.25, 1.0) == pytest.approx(math.log2(1.25))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2_error(0.0, 1.0)
        with pytest.raises(ValueError):
            log2_error(1.0, -1.0)


class TestSizePoint:
    def test_add_accumulates(self):
        point = SizePoint(size=1e6)
        point.add(prediction=2.0, measure=1.0)
        point.add(prediction=1.0, measure=1.0)
        assert point.count == 2
        assert point.median_error == pytest.approx(0.5)
        assert point.median_duration == pytest.approx(1.0)

    def test_error_stats_box(self):
        point = SizePoint(size=1e6)
        for pred in (1.0, 2.0, 4.0, 8.0, 16.0):
            point.add(prediction=pred, measure=1.0)
        stats = point.error_stats
        assert stats.minimum == 0.0
        assert stats.maximum == 4.0
        assert stats.median == 2.0


class TestErrorSeries:
    def build(self):
        series = ErrorSeries("test")
        for size, ratio in ((1e5, 0.125), (1e7, 0.5), (1e8, 1.25), (1e9, 1.25)):
            point = series.point(size)
            for _ in range(4):
                point.add(prediction=ratio, measure=1.0)
        return series

    def test_points_sorted_by_size(self):
        series = ErrorSeries("s")
        series.point(1e9)
        series.point(1e5)
        assert series.sizes() == [1e5, 1e9]

    def test_point_reuses_existing(self):
        series = ErrorSeries("s")
        p1 = series.point(1e6)
        p2 = series.point(1e6)
        assert p1 is p2

    def test_errors_above_threshold_strict(self):
        series = self.build()
        errors = series.errors_above(1e7)
        assert len(errors) == 8  # only 1e8 and 1e9 points

    def test_plateau_error(self):
        series = self.build()
        assert series.plateau_error(1e7) == pytest.approx(math.log2(1.25))

    def test_plateau_requires_data(self):
        series = self.build()
        with pytest.raises(ValueError):
            series.plateau_error(1e10)

    def test_rows_shape(self):
        series = self.build()
        rows = series.rows()
        assert len(rows) == 4
        size, med, q1, q3, duration, count = rows[0]
        assert size == 1e5
        assert med == pytest.approx(-3.0)
        assert count == 4
