"""Text rendering: figures and tables."""

from repro.analysis.asciiplot import render_error_plot
from repro.analysis.errors import ErrorSeries
from repro.analysis.tables import render_table


def sample_series():
    series = ErrorSeries("sagittaire-1x10")
    for size, ratio in ((1e5, 0.1), (1e7, 0.6), (1e9, 1.05)):
        point = series.point(size)
        for noise in (0.9, 1.0, 1.1, 1.2):
            point.add(prediction=ratio * noise, measure=1.0)
    return series


class TestAsciiPlot:
    def test_renders_one_row_per_size(self):
        text = render_error_plot(sample_series())
        size_rows = [line for line in text.splitlines()
                     if line.lstrip().startswith("1.00e")]
        assert len(size_rows) == 3
        assert "1.00e+05" in text
        assert "1.00e+09" in text

    def test_median_marker_and_axis_present(self):
        text = render_error_plot(sample_series())
        assert "M" in text
        assert "|" in text

    def test_duration_column(self):
        text = render_error_plot(sample_series())
        assert text.count("s") >= 3  # per-row duration suffix

    def test_empty_series(self):
        assert "(no data)" in render_error_plot(ErrorSeries("empty"))

    def test_title_contains_metric_definition(self):
        text = render_error_plot(sample_series())
        assert "log2(prediction) - log2(measure)" in text


class TestTables:
    def test_alignment_and_title(self):
        text = render_table(
            ["metric", "paper", "measured"],
            [["median |error|", 0.149, 0.152], ["fraction < 0.575", 0.74, 0.7]],
            title="Summary",
        )
        lines = text.splitlines()
        assert lines[0] == "Summary"
        assert "metric" in lines[1]
        widths = {len(l) for l in lines[1:]}
        assert len(widths) <= 2  # header/sep/rows aligned

    def test_number_formatting(self):
        text = render_table(["v"], [[1234567.0], [0.000123], [1.5]])
        assert "1.23e+06" in text or "1235000" in text or "1.235e+06" in text
