"""Markdown report generation."""

import pytest

from repro.analysis.errors import ErrorSeries
from repro.analysis.report import build_report, figure_section


def series_for(name, plateau=0.05):
    series = ErrorSeries(name)
    for size, err in ((1e5, -4.0), (5.99e7, plateau), (1e10, plateau)):
        point = series.point(size)
        for _ in range(3):
            point.add(prediction=2.0**err, measure=1.0)
    return series


class TestFigureSection:
    def test_contains_plot_table_and_verdict(self):
        text = figure_section("fig3", series_for("fig3"), [])
        assert "## fig3" in text
        assert "log2(prediction) - log2(measure)" in text
        assert "median err" in text
        assert "PASS" in text

    def test_failures_listed(self):
        text = figure_section("fig3", series_for("fig3"),
                              ["fig3/check: broken"])
        assert "FAILED" in text
        assert "fig3/check: broken" in text


class TestBuildReport:
    def test_summary_and_sections(self):
        results = {
            f"fig{i}": (series_for(f"fig{i}"), [])
            for i in range(3, 12)
        }
        report = build_report(results, repetitions=3, seed=1)
        assert "# Pilgrim validation campaign" in report
        assert "## Summary" in report
        assert "0.149" in report  # the paper column
        for i in range(3, 12):
            assert f"## fig{i}" in report

    def test_asym_figures_excluded_from_summary_pool(self):
        results = {
            "fig3": (series_for("fig3"), []),
            "fig9-asym-30x50": (series_for("fig9-asym-30x50", plateau=3.0), []),
        }
        report = build_report(results, repetitions=1, seed=0)
        # the asym experiment's wild plateau must not fail the summary
        assert "summary checks: **PASS**" in report


class TestCliReport:
    def test_report_command(self, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        path = tmp_path / "report.md"
        code = main([
            "report", "--figures", "fig7", "--reps", "1",
            "--sizes", "1e5,2.15e8,1e10", "--output", str(path),
        ], out=out)
        assert code == 0
        text = path.read_text()
        assert "## fig7" in text
        assert "PASS" in text

    def test_report_unknown_figure(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["report", "--figures", "fig99"], out=out) == 2
