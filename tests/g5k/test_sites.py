"""Synthetic site data and the physical-truth testbed builder."""

import pytest

from repro.g5k.sites import (
    BACKBONE_LATENCY,
    CLUSTERS,
    GATEWAYS,
    all_node_uids,
    build_grid5000_testbed,
    cluster_spec,
    grid5000_dev_reference,
    grid5000_stable_reference,
    site_clusters,
)


class TestInventory:
    def test_paper_node_counts(self):
        assert cluster_spec("sagittaire").n_nodes == 79  # §V-B1
        assert cluster_spec("graphene").n_nodes == 144

    def test_graphene_groups_match_figure2(self):
        spec = cluster_spec("graphene")
        assert spec.groups == (39, 35, 30, 40)
        # "graphene 1-39 / 40-74 / 75-104 / 105-144"
        assert spec.group_of(1) == 1
        assert spec.group_of(39) == 1
        assert spec.group_of(40) == 2
        assert spec.group_of(74) == 2
        assert spec.group_of(75) == 3
        assert spec.group_of(104) == 3
        assert spec.group_of(105) == 4
        assert spec.group_of(144) == 4

    def test_group_of_out_of_range(self):
        with pytest.raises(ValueError):
            cluster_spec("graphene").group_of(145)

    def test_flat_cluster_has_no_group(self):
        assert cluster_spec("sagittaire").group_of(5) is None

    def test_three_sites(self):
        sites = {spec.site for spec in CLUSTERS}
        assert sites == {"lille", "lyon", "nancy"}  # §V-A

    def test_node_uid_format(self):
        # matches the paper's FQDNs, e.g. capricorne-36.lyon.grid5000.fr
        assert cluster_spec("capricorne").node_uid(36) == \
            "capricorne-36.lyon.grid5000.fr"

    def test_unknown_cluster(self):
        with pytest.raises(KeyError):
            cluster_spec("ghost")


class TestReferences:
    def test_dev_reference_has_graphene_switches(self):
        nancy = grid5000_dev_reference().site("nancy")
        switch_uids = {e.uid for e in nancy.network_equipments if e.kind == "switch"}
        assert switch_uids == {"sgraphene1", "sgraphene2", "sgraphene3",
                               "sgraphene4"}

    def test_stable_reference_is_coarse(self):
        nancy = grid5000_stable_reference().site("nancy")
        assert all(e.kind == "router" for e in nancy.network_equipments)
        for node in nancy.nodes():
            assert node.primary_adapter.switch == GATEWAYS["nancy"]

    def test_dev_graphene_nodes_attach_to_their_group_switch(self):
        nancy = grid5000_dev_reference().site("nancy")
        graphene = [c for c in nancy.clusters if c.uid == "graphene"][0]
        assert graphene.nodes[0].primary_adapter.switch == "sgraphene1"
        assert graphene.nodes[39].primary_adapter.switch == "sgraphene2"
        assert graphene.nodes[143].primary_adapter.switch == "sgraphene4"

    def test_backbone_full_mesh(self):
        ref = grid5000_dev_reference()
        assert len(ref.backbone) == 3

    def test_references_validate(self):
        grid5000_dev_reference().validate()
        grid5000_stable_reference().validate()

    def test_references_cached(self):
        assert grid5000_dev_reference() is grid5000_dev_reference()


class TestTestbedBuilder:
    def test_all_nodes_present(self, g5k_testbed):
        assert len(g5k_testbed.nodes) == 463
        assert set(g5k_testbed.nodes) == set(all_node_uids())

    def test_profiles_assigned_per_cluster(self, g5k_testbed):
        node = g5k_testbed.nodes["sagittaire-1.lyon.grid5000.fr"]
        assert node.profile.name == "sagittaire"

    def test_intra_group_route_has_two_hops(self, g5k_testbed):
        route = g5k_testbed.route(
            "graphene-1.nancy.grid5000.fr", "graphene-2.nancy.grid5000.fr"
        )
        assert len(route) == 2

    def test_inter_group_route_crosses_uplinks(self, g5k_testbed):
        route = g5k_testbed.route(
            "graphene-1.nancy.grid5000.fr", "graphene-144.nancy.grid5000.fr"
        )
        names = [hop.link.name for hop in route]
        assert "tb-sgraphene1-uplink" in names
        assert "tb-sgraphene4-uplink" in names

    def test_cross_site_route_uses_backbone(self, g5k_testbed):
        route = g5k_testbed.route(
            "sagittaire-1.lyon.grid5000.fr", "graphene-1.nancy.grid5000.fr"
        )
        names = [hop.link.name for hop in route]
        assert "tb-bb-lyon-nancy" in names

    def test_backbone_direction_consistent(self, g5k_testbed):
        fwd = g5k_testbed.route(
            "sagittaire-1.lyon.grid5000.fr", "chti-1.lille.grid5000.fr"
        )
        back = g5k_testbed.route(
            "chti-1.lille.grid5000.fr", "sagittaire-1.lyon.grid5000.fr"
        )
        bb_fwd = [h for h in fwd if h.link.name.startswith("tb-bb-")][0]
        bb_back = [h for h in back if h.link.name.startswith("tb-bb-")][0]
        assert bb_fwd.direction != bb_back.direction

    def test_wan_rtt_larger_than_lan(self, g5k_testbed):
        lan = g5k_testbed.rtt(
            "sagittaire-1.lyon.grid5000.fr", "sagittaire-2.lyon.grid5000.fr"
        )
        wan = g5k_testbed.rtt(
            "sagittaire-1.lyon.grid5000.fr", "graphene-1.nancy.grid5000.fr"
        )
        assert wan > 50 * lan
        pair = frozenset(("lyon", "nancy"))
        assert wan == pytest.approx(2 * BACKBONE_LATENCY[pair], rel=0.1)

    def test_no_loopback_route(self, g5k_testbed):
        with pytest.raises(ValueError):
            g5k_testbed.route(
                "sagittaire-1.lyon.grid5000.fr", "sagittaire-1.lyon.grid5000.fr"
            )

    def test_site_clusters_accessor(self):
        assert {c.name for c in site_clusters("lyon")} == {"sagittaire",
                                                           "capricorne"}
