"""Reference API document model: validation and JSON round-trips."""

import pytest

from repro.g5k.refapi import (
    AdapterDoc,
    BackboneLinkDoc,
    ClusterDoc,
    EquipmentDoc,
    Grid5000Reference,
    NodeDoc,
    RefApiError,
    SiteDoc,
)
from repro.g5k.sites import grid5000_dev_reference, grid5000_stable_reference


class TestValidation:
    def test_adapter_rejects_zero_rate(self):
        with pytest.raises(RefApiError):
            AdapterDoc(interface="eth0", rate=0.0, switch="sw").validate()

    def test_node_requires_adapter(self):
        node = NodeDoc(uid="n", cluster="c", site="s")
        with pytest.raises(RefApiError):
            node.validate()

    def test_cluster_requires_nodes(self):
        with pytest.raises(RefApiError):
            ClusterDoc(uid="c", site="s").validate()

    def test_equipment_kind_checked(self):
        with pytest.raises(RefApiError):
            EquipmentDoc(uid="e", site="s", kind="hub").validate()

    def test_site_gateway_must_exist(self):
        site = SiteDoc(uid="s", gateway="ghost")
        with pytest.raises(RefApiError):
            site.validate()

    def test_reference_version_checked(self):
        with pytest.raises(RefApiError):
            Grid5000Reference(version="beta").validate()

    def test_backbone_endpoints_checked(self):
        ref = Grid5000Reference(
            version="dev",
            sites=(),
            backbone=(BackboneLinkDoc(uid="bb", endpoints=("x", "y"), rate=1e10),),
        )
        with pytest.raises(RefApiError):
            ref.validate()


class TestAccessors:
    def test_site_lookup(self):
        ref = grid5000_dev_reference()
        assert ref.site("lyon").uid == "lyon"
        with pytest.raises(RefApiError):
            ref.site("sophia")

    def test_equipment_lookup(self):
        site = grid5000_dev_reference().site("nancy")
        eq = site.equipment("sgraphene1")
        assert eq.kind == "switch"
        with pytest.raises(RefApiError):
            site.equipment("ghost")

    def test_all_nodes_count(self):
        ref = grid5000_dev_reference()
        # 79 + 56 + 144 + 92 + 20 + 26 + 46
        assert len(ref.all_nodes()) == 463

    def test_primary_adapter(self):
        node = grid5000_dev_reference().site("lyon").nodes()[0]
        assert node.primary_adapter.interface == "eth0"


class TestJsonRoundTrip:
    @pytest.mark.parametrize("builder", [grid5000_dev_reference,
                                         grid5000_stable_reference])
    def test_roundtrip_identity(self, builder):
        ref = builder()
        clone = Grid5000Reference.from_json(ref.to_json())
        assert clone == ref

    def test_from_json_validates(self):
        data = grid5000_dev_reference().to_json()
        data["version"] = "nope"
        with pytest.raises(RefApiError):
            Grid5000Reference.from_json(data)
