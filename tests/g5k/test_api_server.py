"""Reference API over HTTP: serving and converter-grade fetching."""

import pytest

from repro.core.rest.client import RestClient
from repro.core.rest.errors import NotFound
from repro.g5k.api_server import build_refapi_router, fetch_reference, serve_refapi
from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import grid5000_dev_reference
from repro.core.rest.router import Request


@pytest.fixture(scope="module")
def served():
    server = serve_refapi(grid5000_dev_reference()).start()
    yield server
    server.stop()


class TestRouter:
    def test_top_document(self):
        router = build_refapi_router(grid5000_dev_reference())
        status, payload = router.dispatch(Request.from_target("GET", "/g5k"))
        assert status == 200
        assert payload["version"] == "dev"
        assert sorted(payload["sites"]) == ["lille", "lyon", "nancy"]

    def test_unknown_site_404(self):
        router = build_refapi_router(grid5000_dev_reference())
        status, payload = router.dispatch(
            Request.from_target("GET", "/g5k/sites/sophia")
        )
        assert status == 404

    def test_cluster_listing(self):
        router = build_refapi_router(grid5000_dev_reference())
        status, payload = router.dispatch(
            Request.from_target("GET", "/g5k/sites/nancy/clusters")
        )
        assert status == 200
        assert sorted(payload["items"]) == ["graphene", "griffon"]


class TestOverHttp:
    def test_site_document_fetchable(self, served):
        client = RestClient(served.url)
        doc = client.get("/g5k/sites/lyon")
        assert doc["uid"] == "lyon"
        assert doc["gateway"] == "gw-lyon"

    def test_unknown_cluster_raises_notfound(self, served):
        client = RestClient(served.url)
        with pytest.raises(NotFound):
            client.get("/g5k/sites/lyon/clusters/ghost")

    def test_fetch_reference_round_trip(self, served):
        fetched = fetch_reference(served.url)
        assert fetched == grid5000_dev_reference()

    def test_fetched_reference_converts(self, served):
        fetched = fetch_reference(served.url)
        platform = to_simgrid_platform(fetched, "g5k_test", sites=("lille",))
        assert platform.has_host("chti-1.lille.grid5000.fr")
