"""Converter ↔ XML integration: the generated platforms survive
serialisation with identical predictions (the paper's tooling writes the
converted platform to a SimGrid XML file)."""

import pytest

from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import grid5000_dev_reference, grid5000_stable_reference
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08
from repro.simgrid.xml_io import platform_from_xml, platform_to_xml

TRANSFERS = [
    ("chti-1.lille.grid5000.fr", "chti-2.lille.grid5000.fr", 1e9),
    ("chti-3.lille.grid5000.fr", "chicon-1.lille.grid5000.fr", 5e8),
    ("chicon-2.lille.grid5000.fr", "chti-2.lille.grid5000.fr", 2e8),
]


def predictions(platform):
    sim = Simulation(platform, LV08())
    return [c.duration for c in sim.simulate_transfers(TRANSFERS)]


class TestRoundTrip:
    def test_g5k_test_single_site_roundtrip(self):
        platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test",
                                       sites=("lille",))
        clone = platform_from_xml(platform_to_xml(platform))
        assert predictions(clone) == pytest.approx(predictions(platform),
                                                   rel=1e-9)

    def test_cabinets_single_site_roundtrip(self):
        platform = to_simgrid_platform(grid5000_stable_reference(),
                                       "g5k_cabinets", sites=("lille",))
        clone = platform_from_xml(platform_to_xml(platform))
        assert predictions(clone) == pytest.approx(predictions(platform),
                                                   rel=1e-9)

    def test_xml_preserves_sharing_policies(self):
        platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test",
                                       sites=("nancy",))
        clone = platform_from_xml(platform_to_xml(platform))
        assert clone.link("sgraphene1-uplink").policy.value == "SHARED"

    def test_xml_file_size_reflects_size_claim(self, tmp_path):
        # g5k_test's host enumeration produces a much bigger file than the
        # cluster-abstracted cabinets (the §V-A "size" claim, on-disk form)
        test_platform = to_simgrid_platform(grid5000_dev_reference(),
                                            "g5k_test", sites=("lille",))
        cabinets = to_simgrid_platform(grid5000_stable_reference(),
                                       "g5k_cabinets", sites=("lille",))
        test_xml = platform_to_xml(test_platform)
        cab_xml = platform_to_xml(cabinets)
        assert len(test_xml) > 2 * len(cab_xml)
