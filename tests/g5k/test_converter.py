"""Reference API → platform converter: structure, policies, artifacts."""

import pytest

from repro.g5k.converter import (
    BACKBONE_LATENCY,
    INTRA_SITE_LATENCY,
    ConverterError,
    to_simgrid_platform,
)
from repro.g5k.sites import grid5000_dev_reference, grid5000_stable_reference
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08
from repro.simgrid.platform import SharingPolicy


SAG1 = "sagittaire-1.lyon.grid5000.fr"
SAG2 = "sagittaire-2.lyon.grid5000.fr"
GRA1 = "graphene-1.nancy.grid5000.fr"
GRA2 = "graphene-2.nancy.grid5000.fr"
GRA144 = "graphene-144.nancy.grid5000.fr"
CAP1 = "capricorne-1.lyon.grid5000.fr"


class TestG5kTest:
    def test_all_hosts_present(self, g5k_test_platform):
        assert len(g5k_test_platform.hosts()) == 463
        assert g5k_test_platform.has_host(SAG1)

    def test_one_as_per_site(self, g5k_test_platform):
        # §IV-C2: "one SimGrid autonomous system per Grid'5000 site"
        for site in ("lyon", "nancy", "lille"):
            assert g5k_test_platform.autonomous_system(f"AS_{site}")

    def test_sagittaire_flat_route(self, g5k_test_platform):
        route = g5k_test_platform.route(SAG1, SAG2)
        assert [u.link.name for u in route] == [f"{SAG1}-link", f"{SAG2}-link"]

    def test_graphene_intra_group_skips_uplink(self, g5k_test_platform):
        route = g5k_test_platform.route(GRA1, GRA2)
        assert [u.link.name for u in route] == [f"{GRA1}-link", f"{GRA2}-link"]

    def test_graphene_inter_group_crosses_both_uplinks(self, g5k_test_platform):
        route = g5k_test_platform.route(GRA1, GRA144)
        names = [u.link.name for u in route]
        assert names == [f"{GRA1}-link", "sgraphene1-uplink",
                         "sgraphene4-uplink", f"{GRA144}-link"]

    def test_uplinks_emitted_shared(self, g5k_test_platform):
        # the documented half-duplex artifact (DESIGN.md §3)
        uplink = g5k_test_platform.link("sgraphene1-uplink")
        assert uplink.policy is SharingPolicy.SHARED
        assert uplink.bandwidth == pytest.approx(1.25e9)

    def test_backbone_emitted_fullduplex(self, g5k_test_platform):
        bb = g5k_test_platform.link("renater-lyon-nancy")
        assert bb.policy is SharingPolicy.FULLDUPLEX
        assert bb.latency == pytest.approx(BACKBONE_LATENCY)

    def test_hardcoded_latencies(self, g5k_test_platform):
        # §IV-C2: 1e-4 intra-site, 2.25e-3 backbone
        assert g5k_test_platform.link(f"{SAG1}-link").latency == pytest.approx(1e-4)
        assert BACKBONE_LATENCY == pytest.approx(2.25e-3)
        assert INTRA_SITE_LATENCY == pytest.approx(1e-4)

    def test_cross_site_route(self, g5k_test_platform):
        route = g5k_test_platform.route(SAG1, GRA1)
        names = [u.link.name for u in route]
        assert names[0] == f"{SAG1}-link"
        assert "renater-lyon-nancy" in names
        assert names[-1] == f"{GRA1}-link"

    def test_sites_filter(self):
        platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test",
                                       sites=("lyon",))
        assert platform.has_host(SAG1)
        assert not platform.has_host(GRA1)

    def test_quadratic_route_tables(self, g5k_test_platform):
        # "it does not abstract clusters and instead enumerates all hosts"
        lyon = g5k_test_platform.autonomous_system("AS_lyon")
        n = 79 + 56
        # host-pair routes (n*(n-1)) plus host->gateway and switch routes
        assert lyon.route_table_size() >= n * (n - 1)


class TestEquipmentLimits:
    def test_backplane_links_present_when_enabled(self):
        platform = to_simgrid_platform(
            grid5000_dev_reference(), "g5k_test",
            include_equipment_limits=True, sites=("nancy",),
        )
        bp = platform.link("sgraphene1-backplane")
        assert bp.bandwidth == pytest.approx(1.76e11 / 8.0)
        route = platform.route(GRA1, GRA2)
        assert "sgraphene1-backplane" in [u.link.name for u in route]

    def test_backplanes_absent_by_default(self, g5k_test_platform):
        from repro.simgrid.platform import UnknownElementError

        with pytest.raises(UnknownElementError):
            g5k_test_platform.link("sgraphene1-backplane")

    def test_limits_not_supported_for_cabinets(self):
        with pytest.raises(ConverterError):
            to_simgrid_platform(grid5000_stable_reference(), "g5k_cabinets",
                                include_equipment_limits=True)

    def test_unknown_variant(self):
        with pytest.raises(ConverterError):
            to_simgrid_platform(grid5000_dev_reference(), "g5k_prod")


class TestCabinets:
    def test_intra_cluster_route_crosses_cabinet_once(self, g5k_cabinets_platform):
        route = g5k_cabinets_platform.route(SAG1, SAG2)
        names = [u.link.name for u in route]
        assert names == [f"{SAG1}-link", "sagittaire-cab-link", f"{SAG2}-link"]

    def test_cross_cluster_same_site(self, g5k_cabinets_platform):
        route = g5k_cabinets_platform.route(SAG1, CAP1)
        names = [u.link.name for u in route]
        assert "sagittaire-cab-link" in names
        assert "capricorne-cab-link" in names

    def test_cross_site_route(self, g5k_cabinets_platform):
        route = g5k_cabinets_platform.route(SAG1, GRA1)
        names = [u.link.name for u in route]
        assert "renater-lyon-nancy" in names

    def test_no_aggregation_switch_structure(self, g5k_cabinets_platform):
        from repro.simgrid.platform import UnknownElementError

        with pytest.raises(UnknownElementError):
            g5k_cabinets_platform.link("sgraphene1-uplink")

    def test_smaller_than_g5k_test(self, g5k_test_platform, g5k_cabinets_platform):
        # "g5k_test is less optimized than g5k_cabinets (in size…)" §V-A
        assert (g5k_cabinets_platform.total_route_table_entries()
                < g5k_test_platform.total_route_table_entries())


class TestPredictions:
    def test_paper_example_shape(self, g5k_test_platform):
        # §IV-C2's example: concurrent lyon->nancy and lyon->lyon transfers
        # from the same source; the intra-site one must be much faster
        sim = Simulation(g5k_test_platform, LV08())
        comms = sim.simulate_transfers([
            ("capricorne-36.lyon.grid5000.fr", "griffon-50.nancy.grid5000.fr", 5e8),
            ("capricorne-36.lyon.grid5000.fr", "capricorne-1.lyon.grid5000.fr", 5e8),
        ])
        wan, lan = comms
        assert lan.duration < wan.duration
        # paper: lan 4.77s — same-NIC sharing puts ours in the same range
        assert 3.0 < lan.duration < 7.0
        assert 6.0 < wan.duration < 35.0

    def test_single_transfer_nic_limited(self, g5k_test_platform):
        sim = Simulation(g5k_test_platform, LV08())
        comm = sim.simulate_transfers([(SAG1, SAG2, 1e9)])[0]
        expected = 13.01 * 2e-4 + 1e9 / (0.97 * 1.25e8)
        assert comm.duration == pytest.approx(expected, rel=1e-6)
