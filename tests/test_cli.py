"""Command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestInformational:
    def test_version(self):
        code, text = run_cli("version")
        assert code == 0
        assert "repro 1" in text

    def test_figures_listing(self):
        code, text = run_cli("figures")
        assert code == 0
        for fig in ("fig3", "fig9", "fig11"):
            assert fig in text

    def test_platforms(self):
        code, text = run_cli("platforms")
        assert code == 0
        assert "g5k_test: 463 hosts" in text
        assert "g5k_cabinets" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("teleport")


class TestPredict:
    def test_paper_example(self):
        code, text = run_cli(
            "predict", "--platform", "g5k_test",
            "--transfer",
            "capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8",
            "--transfer",
            "capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8",
        )
        assert code == 0
        answers = json.loads(text)
        assert len(answers) == 2
        assert {"src", "dst", "size", "duration"} == set(answers[0])

    def test_model_selection_changes_result(self):
        transfer = ("sagittaire-1.lyon.grid5000.fr,"
                    "sagittaire-2.lyon.grid5000.fr,1e9")
        _, lv08 = run_cli("predict", "--transfer", transfer)
        _, cm02 = run_cli("predict", "--transfer", transfer, "--model", "CM02")
        assert (json.loads(lv08)[0]["duration"]
                > json.loads(cm02)[0]["duration"])

    def test_ongoing_option(self):
        transfer = ("graphene-1.nancy.grid5000.fr,"
                    "graphene-2.nancy.grid5000.fr,1e9")
        ongoing = ("graphene-3.nancy.grid5000.fr,"
                   "graphene-2.nancy.grid5000.fr,1e9")
        _, alone = run_cli("predict", "--transfer", transfer)
        _, busy = run_cli("predict", "--transfer", transfer,
                          "--ongoing", ongoing)
        assert (json.loads(busy)[0]["duration"]
                > 1.4 * json.loads(alone)[0]["duration"])

    def test_transfer_required(self):
        with pytest.raises(SystemExit):
            run_cli("predict")

    def test_full_resolve_flag_matches_default(self):
        transfer = ("sagittaire-1.lyon.grid5000.fr,"
                    "sagittaire-2.lyon.grid5000.fr,1e9")
        code_inc, inc = run_cli("predict", "--transfer", transfer)
        code_full, full = run_cli("predict", "--transfer", transfer,
                                  "--full-resolve")
        assert code_inc == code_full == 0
        assert (json.loads(full)[0]["duration"]
                == pytest.approx(json.loads(inc)[0]["duration"], rel=1e-9))


class TestExperiment:
    def test_runs_reduced_figure(self):
        code, text = run_cli(
            "experiment", "--figure", "fig7", "--reps", "1",
            "--sizes", "1e5,2.15e8,1e10",
        )
        assert code == 0
        assert "shape checks: PASS" in text
        assert "graphene" in text

    def test_unknown_figure(self):
        code, text = run_cli("experiment", "--figure", "fig99")
        assert code == 2
        assert "unknown figure" in text


class TestScenarios:
    def test_list_shows_every_preset_and_family(self):
        from repro.scenarios import DEFAULT_REGISTRY

        code, text = run_cli("scenarios", "list")
        assert code == 0
        for spec in DEFAULT_REGISTRY:
            assert spec.name in text
        for family in ("star", "dumbbell", "grid", "fat_tree", "torus",
                       "dragonfly"):
            assert family in text

    @pytest.mark.parametrize("preset", [
        "star-incast", "dumbbell-congestion", "grid-shuffle",
        "fat-tree-shuffle", "torus-neighbors", "dragonfly-random",
    ])
    def test_run_works_for_presets_across_families(self, preset):
        # acceptance: `repro scenarios run <preset>` for >= 6 presets
        # spanning >= 5 topology families
        code, text = run_cli("scenarios", "run", preset)
        assert code == 0
        assert "makespan" in text

    def test_run_json_round_trips(self):
        code, text = run_cli("scenarios", "run", "star-flash-crowd", "--json")
        assert code == 0
        doc = json.loads(text)
        assert doc["name"] == "star-flash-crowd"
        assert doc["summary"]["n_transfers"] == 32

    def test_run_seed_override_changes_random_draws(self):
        _, a = run_cli("scenarios", "run", "dragonfly-random", "--json")
        _, b = run_cli("scenarios", "run", "dragonfly-random", "--json",
                       "--seed", "123")
        pairs = lambda text: [(t["src"], t["dst"])
                              for t in json.loads(text)["transfers"]]
        assert pairs(a) != pairs(b)

    def test_full_resolve_matches_incremental(self):
        _, inc = run_cli("scenarios", "run", "torus-neighbors", "--json")
        _, full = run_cli("scenarios", "run", "torus-neighbors", "--json",
                          "--full-resolve")
        inc_doc, full_doc = json.loads(inc), json.loads(full)
        assert inc_doc["makespans"] == pytest.approx(full_doc["makespans"],
                                                     rel=1e-9)

    def test_unknown_preset(self):
        code, text = run_cli("scenarios", "run", "warp-core")
        assert code == 2
        assert "unknown scenario" in text

    def test_model_override_changes_run(self):
        code, lv08 = run_cli("scenarios", "run", "star-incast", "--json")
        assert code == 0
        code, fluid = run_cli("scenarios", "run", "star-incast", "--json",
                              "--model", "tcp_fluid")
        assert code == 0
        assert (json.loads(lv08)["makespans"]
                != json.loads(fluid)["makespans"])

    def test_unknown_model_rejected(self):
        code, text = run_cli("scenarios", "run", "star-incast",
                             "--model", "udp_teleport")
        assert code == 2
        assert "udp_teleport" in text


class TestModels:
    def test_list_shows_every_registered_model(self):
        from repro.simgrid.models import model_names

        code, text = run_cli("models", "list")
        assert code == 0
        for name in model_names():
            assert name in text
        assert "time-varying" in text  # tcp_fluid's weights column
        assert "static" in text

    def test_predict_rejects_unknown_model(self):
        code, text = run_cli(
            "predict", "--transfer",
            "sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,1e8",
            "--model", "nope")
        assert code == 2
        assert "nope" in text and "LV08" in text

    def test_predict_accepts_registered_model_with_params(self):
        transfer = ("sagittaire-1.lyon.grid5000.fr,"
                    "sagittaire-2.lyon.grid5000.fr,1e8")
        code, fluid = run_cli("predict", "--transfer", transfer,
                              "--model", "tcp_fluid")
        assert code == 0
        code, lv08 = run_cli("predict", "--transfer", transfer)
        assert code == 0
        assert (json.loads(fluid)[0]["duration"]
                != json.loads(lv08)[0]["duration"])


class TestMetrology:
    def test_record_emits_trace_document(self):
        code, text = run_cli("metrology", "record", "--hosts", "2",
                             "--steps", "4", "--warmup", "2")
        assert code == 0
        doc = json.loads(text)
        assert doc["format"] == 1
        assert doc["topology"] == {"family": "star",
                                   "params": {"n_hosts": 2}}
        assert len(doc["traces"]) == 2
        for trace in doc["traces"]:
            assert trace["metric"] == "bandwidth"
            assert len(trace["samples"]) == 6  # warmup + steps polls

    def test_record_then_replay_round_trip(self, tmp_path):
        path = tmp_path / "traces.json"
        code, text = run_cli("metrology", "record", "--hosts", "2",
                             "--steps", "5", "--warmup", "2",
                             "--output", str(path))
        assert code == 0
        assert "recorded 2 link traces" in text
        code, text = run_cli("metrology", "replay", "--input", str(path),
                             "--json")
        assert code == 0
        doc = json.loads(text)
        assert doc["name"] == "measured-replay"
        # every recorded sample of every link replays as a mutation
        assert doc["summary"]["events_applied"] == 2 * 7
        assert all(e["action"] == "measured" for e in doc["events"])

    def test_replay_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "traces": []}))
        code, text = run_cli("metrology", "replay", "--input", str(path))
        assert code == 2
        assert "unsupported trace document format" in text

    def test_run_beats_static_baseline(self):
        # acceptance: the live loop's recalibrated forecasts beat the
        # static platform on the degrading-link demo
        code, text = run_cli("metrology", "run", "--hosts", "3",
                             "--steps", "6", "--warmup", "2")
        assert code == 0
        assert "recalibration beats the static baseline" in text
        assert "updates applied" in text


class TestWhatIf:
    HOSTS = ("chti-1.lille.grid5000.fr", "chti-2.lille.grid5000.fr")
    LINK = "chti-1.lille.grid5000.fr-link"

    def test_degrading_event_slows_the_transfer(self):
        transfer = f"{self.HOSTS[0]},{self.HOSTS[1]},5e8"
        _, plain = run_cli("predict", "--platform", "g5k_test",
                           "--transfer", transfer)
        code, text = run_cli(
            "what-if", "--platform", "g5k_test", "--transfer", transfer,
            "--event", f"0.5,{self.LINK},degrade,0.25",
        )
        assert code == 0
        result = json.loads(text)
        assert len(result["applied"]) == 1
        assert result["forecasts"][0]["duration"] > \
            json.loads(plain)[0]["duration"]

    def test_horizon_with_observations_yields_intervals(self):
        series = ",".join(["6e8", "5e8"] * 5)  # noisy, below nominal 1 Gbps
        code, text = run_cli(
            "what-if", "--platform", "g5k_test",
            "--transfer", f"{self.HOSTS[0]},{self.HOSTS[1]},5e8",
            "--event", f"0.5,{self.LINK},degrade,0.5",
            "--horizon", "3",
            "--observe", f"{self.LINK}={series}",
        )
        assert code == 0
        result = json.loads(text)
        assert result["horizon"] == 3
        forecast = result["forecasts"][0]
        assert forecast["lower"] <= forecast["duration"] <= forecast["upper"]

    def test_bad_event_rejected(self):
        code, text = run_cli(
            "what-if", "--platform", "g5k_test",
            "--transfer", f"{self.HOSTS[0]},{self.HOSTS[1]},5e8",
            "--event", "0.5,missing-fields",
        )
        assert code == 2
        assert "event" in text

    def test_unmatched_event_link_rejected(self):
        code, _ = run_cli(
            "what-if", "--platform", "g5k_test",
            "--transfer", f"{self.HOSTS[0]},{self.HOSTS[1]},5e8",
            "--event", "0.5,no-such-link,fail",
        )
        assert code == 2
