"""Shared utilities: seeded RNG derivation and stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro._util.lru import BoundedLRU
from repro._util.rng import (
    derive_seed,
    rng_for,
    seed_sequence,
    spawn_rngs,
    spawn_seeds,
)
from repro._util.stats import BoxStats, box_stats, median, quantile, stddev


class TestRng:
    def test_derive_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_decorrelate(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63bit(self):
        seed = derive_seed(123456789, "x", (1, 2), 3.5)
        assert 0 <= seed < 2**63

    def test_derive_seed_values_frozen(self):
        # the figure goldens were produced with these exact derivations; any
        # change to the mapping silently invalidates every frozen result
        assert derive_seed(20120917) == 4555353632674399267
        assert derive_seed(20120917, "draw", "fig3") == 8560672467100955714
        assert derive_seed(0, "rep", 0) == 7450385249297746602

    def test_rng_for_reproducible_streams(self):
        a = rng_for(7, "stream").normal(size=5)
        b = rng_for(7, "stream").normal(size=5)
        assert (a == b).all()

    def test_rng_for_independent_streams(self):
        a = rng_for(7, "s1").normal(size=5)
        b = rng_for(7, "s2").normal(size=5)
        assert not (a == b).all()


class TestSpawn:
    """Child seeds must come from ``SeedSequence.spawn`` — deterministic,
    decorrelated across workers, stable under pool growth."""

    def test_spawn_deterministic(self):
        assert spawn_seeds(3, 4, "workers") == spawn_seeds(3, 4, "workers")

    def test_spawned_children_distinct(self):
        seeds = spawn_seeds(3, 16, "workers")
        assert len(set(seeds)) == 16
        assert all(0 <= s < 2**63 for s in seeds)

    def test_prefix_stable_under_pool_growth(self):
        # growing a worker pool must not reshuffle already-issued streams
        assert spawn_seeds(9, 8)[:3] == spawn_seeds(9, 3)

    def test_labels_decorrelate_spawns(self):
        assert spawn_seeds(5, 4, "a") != spawn_seeds(5, 4, "b")
        assert spawn_seeds(5, 4) != spawn_seeds(6, 4)

    def test_spawn_rngs_match_seed_sequence_children(self):
        import numpy as np

        children = seed_sequence(11, "pool").spawn(3)
        expected = [np.random.default_rng(c).normal(size=4) for c in children]
        got = [g.normal(size=4) for g in spawn_rngs(11, 3, "pool")]
        for a, b in zip(expected, got):
            assert (a == b).all()

    def test_sibling_streams_uncorrelated(self):
        import numpy as np

        a, b = spawn_rngs(42, 2, "workers")
        xs, ys = a.normal(size=2000), b.normal(size=2000)
        assert abs(float(np.corrcoef(xs, ys)[0, 1])) < 0.1

    def test_negative_spawn_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)
        with pytest.raises(ValueError):
            spawn_rngs(1, -2)


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_quantile_interpolation(self):
        data = [0.0, 10.0]
        assert quantile(data, 0.5) == 5.0
        assert quantile(data, 0.25) == 2.5

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_quantile_matches_numpy(self):
        import numpy as np

        data = [3.0, 7.0, 1.0, 9.0, 4.0, 4.0]
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert quantile(data, q) == pytest.approx(np.quantile(data, q))

    def test_stddev(self):
        assert stddev([2.0, 4.0]) == pytest.approx(1.0)
        assert stddev([5.0]) == 0.0

    def test_box_stats(self):
        stats = box_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats == BoxStats(1.0, 2.0, 3.0, 4.0, 5.0, 5)
        assert stats.iqr == 2.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_box_stats_ordering_invariant(self, values):
        stats = box_stats(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum


class TestBoundedLRU:
    """The shared LRU's hit/miss contract — in particular cached ``None``."""

    def test_cached_none_is_a_hit(self):
        # the regression: a stored None used to be indistinguishable from a
        # miss, so callers recomputed it forever and the miss counter lied
        cache = BoundedLRU(4)
        cache.put("k", None)
        assert cache.get("k") is None
        assert (cache.hits, cache.misses) == (1, 0)

    def test_miss_returns_default(self):
        cache = BoundedLRU(4)
        sentinel = object()
        assert cache.get("absent") is None
        assert cache.get("absent", sentinel) is sentinel
        assert (cache.hits, cache.misses) == (0, 2)

    def test_sentinel_default_distinguishes_cached_none(self):
        cache = BoundedLRU(4)
        sentinel = object()
        cache.put("k", None)
        assert cache.get("k", sentinel) is None  # stored None, not a miss
        assert cache.get("other", sentinel) is sentinel

    def test_counters_partition_lookups(self):
        cache = BoundedLRU(2)
        cache.put("a", 1)
        cache.put("b", None)
        lookups = ["a", "b", "c", "a", "missing", "b"]
        for key in lookups:
            cache.get(key)
        assert cache.hits + cache.misses == len(lookups)
        assert (cache.hits, cache.misses) == (4, 2)
        assert cache.info()["hits"] == 4

    def test_cached_none_refreshes_recency(self):
        cache = BoundedLRU(2)
        cache.put("a", None)
        cache.put("b", 1)
        cache.get("a")  # touch: 'b' becomes the eviction candidate
        cache.put("c", 2)
        assert cache.get("a", "gone") is None
        assert cache.get("b", "gone") == "gone"

    def test_disabled_cache_counts_misses_for_none_too(self):
        cache = BoundedLRU(0)
        cache.put("k", None)
        assert cache.get("k", "default") == "default"
        assert (cache.hits, cache.misses) == (0, 1)
