"""Shared fixtures.

Heavy objects (the g5k platforms, the testbed) are built once per session via
the cached accessors in :mod:`repro.experiments.environment`.
"""

from __future__ import annotations

import pytest

from repro.experiments import environment
from repro.simgrid.builder import build_dumbbell, build_star_cluster
from repro.simgrid.models import CM02, LV08


@pytest.fixture(scope="session")
def g5k_test_platform():
    return environment.g5k_test_platform()


@pytest.fixture(scope="session")
def g5k_cabinets_platform():
    return environment.g5k_cabinets_platform()


@pytest.fixture(scope="session")
def g5k_testbed():
    return environment.testbed()


@pytest.fixture(scope="session")
def forecast_service():
    return environment.forecast_service()


@pytest.fixture()
def star4():
    """A fresh 4-host star cluster platform (full mesh)."""
    return build_star_cluster("star", 4)


@pytest.fixture()
def dumbbell():
    """A fresh 2x2 dumbbell with a shared 1Gbps bottleneck."""
    return build_dumbbell(2, 2, bottleneck_bandwidth="1Gbps")


@pytest.fixture()
def lv08():
    return LV08()


@pytest.fixture()
def cm02():
    return CM02()
