"""The measured dynamics source: spec round-trip, replay semantics."""

import pytest

from repro.scenarios.dynamics import schedule_measured
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import (
    MeasuredTrace,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.engine import Simulation


def star_spec(**changes):
    spec = ScenarioSpec(
        name="measured-test",
        topology=TopologySpec("star", {"n_hosts": 4}),
        workload=WorkloadSpec("all_to_all", size=2e7),
        measured=(
            MeasuredTrace(link="star-1-link", metric="bandwidth", samples=(
                (0.05, 5e7), (0.2, 2.5e7), (0.5, 1.25e8),
            )),
        ),
    )
    return spec.replace(**changes) if changes else spec


class TestMeasuredTraceSpec:
    def test_json_round_trip(self):
        spec = star_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_latency_trace_round_trips(self):
        trace = MeasuredTrace(link="star-*", metric="latency",
                              samples=((1.0, 2e-4),))
        assert MeasuredTrace.from_json(trace.to_json()) == trace

    def test_old_documents_without_measured_still_load(self):
        doc = star_spec(measured=()).to_json()
        del doc["measured"]
        assert ScenarioSpec.from_json(doc).measured == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasuredTrace(link="", samples=((1.0, 1.0),))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", metric="jitter", samples=((1.0, 1.0),))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=())
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=((1.0, 1.0), (1.0, 2.0)))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=((-1.0, 1.0),))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", metric="bandwidth", samples=((1.0, 0.0),))
        # NaN/inf survive json round-trips, so validation must reject them
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=((1.0, float("nan")),))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=((1.0, float("inf")),))
        with pytest.raises(ValueError):
            MeasuredTrace(link="l", samples=((float("nan"), 1.0),))


class TestScheduleMeasured:
    def test_samples_mutate_matched_links_at_their_times(self):
        platform = build_star_cluster("star", 4)
        sim = Simulation(platform)
        log = schedule_measured(sim, star_spec().measured)
        sim.add_comm("star-2", "star-3", 1e9)  # keeps the sim running
        sim.run()
        assert [e.time for e in log.applied] == [0.05, 0.2, 0.5]
        assert [e.action for e in log.applied] == ["measured"] * 3
        assert platform.link("star-1-link").bandwidth == pytest.approx(1.25e8)

    def test_latency_trace_sets_latency(self):
        platform = build_star_cluster("star", 2)
        sim = Simulation(platform)
        trace = MeasuredTrace(link="star-1-link", metric="latency",
                              samples=((0.01, 5e-4),))
        log = schedule_measured(sim, (trace,))
        sim.add_comm("star-1", "star-2", 1e8)
        sim.run()
        assert platform.link("star-1-link").latency == pytest.approx(5e-4)
        assert log.applied[0].latency == pytest.approx(5e-4)

    def test_unmatched_pattern_fails_fast(self):
        platform = build_star_cluster("star", 2)
        sim = Simulation(platform)
        trace = MeasuredTrace(link="missing-*", samples=((0.1, 1e7),))
        with pytest.raises(ValueError, match="matches no link"):
            schedule_measured(sim, (trace,))

    def test_mid_run_scheduling_rejected(self):
        platform = build_star_cluster("star", 2)
        sim = Simulation(platform)
        sim.add_comm("star-1", "star-2", 1e8)
        sim.run()
        with pytest.raises(ValueError, match="clock 0"):
            schedule_measured(sim, star_spec().measured)


class TestMeasuredScenarioRun:
    def test_replay_slows_transfers_and_fires_events(self):
        with_trace = run_scenario(star_spec())
        without = run_scenario(star_spec(measured=()))
        assert len(with_trace.events_applied) == 3
        assert max(with_trace.makespans) > max(without.makespans)

    def test_incremental_and_full_resolve_agree(self):
        incremental = run_scenario(star_spec(), full_resolve=False)
        full = run_scenario(star_spec(), full_resolve=True)
        for inc, ful in zip(incremental.transfers, full.transfers):
            assert inc.duration == pytest.approx(ful.duration, rel=1e-9)

    def test_measured_composes_with_synthetic_dynamics(self):
        from repro.scenarios.spec import LinkEvent

        spec = star_spec(dynamics=(
            LinkEvent(time=0.1, link="star-2-link", action="degrade",
                      factor=0.5),
        ))
        result = run_scenario(spec)
        actions = {e.action for e in result.events_applied}
        assert actions == {"degrade", "measured"}


class TestRescaled:
    def test_rescaled_compresses_times_only(self):
        trace = MeasuredTrace(link="l", samples=((10.0, 1e8), (20.0, 5e7)))
        scaled = trace.rescaled(0.01)
        assert scaled.samples == ((0.1, 1e8), (0.2, 5e7))
        assert scaled.link == trace.link and scaled.metric == trace.metric

    def test_rescaled_rejects_non_positive_scale(self):
        trace = MeasuredTrace(link="l", samples=((10.0, 1e8),))
        with pytest.raises(ValueError):
            trace.rescaled(0.0)
