"""ScenarioSpec JSON round-trip and validation."""

import json

import pytest

from repro.scenarios.spec import (
    LinkEvent,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


def sample_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="sample",
        description="a spec exercising every field",
        topology=TopologySpec("torus", {"dims": (4, 4), "prefix": "t"}),
        workload=WorkloadSpec("random_pairs", size=5e7, params={"n_pairs": 12}),
        dynamics=(
            LinkEvent(time=0.2, link="t-*-d0", action="degrade", factor=0.5),
            LinkEvent(time=0.5, link="t-0-0-d1", action="fail"),
            LinkEvent(time=0.9, link="t-*", action="recover"),
        ),
        seed=42,
        model="CM02",
    )


class TestRoundTrip:
    def test_to_from_json_identity(self):
        spec = sample_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_is_idempotent(self):
        doc1 = sample_spec().to_json()
        doc2 = ScenarioSpec.from_json(doc1).to_json()
        assert doc1 == doc2

    def test_survives_actual_json_serialisation(self):
        spec = sample_spec()
        wire = json.dumps(spec.to_json())
        assert ScenarioSpec.from_json(json.loads(wire)) == spec

    def test_every_preset_round_trips(self):
        from repro.scenarios.registry import DEFAULT_REGISTRY

        for spec in DEFAULT_REGISTRY:
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_sequence_params_normalised(self):
        # list vs tuple params must compare equal after the trip
        a = TopologySpec("torus", {"dims": [3, 3]})
        b = TopologySpec("torus", {"dims": (3, 3)})
        assert a == b
        assert TopologySpec.from_json(a.to_json()) == b

    def test_irrelevant_factor_normalised_for_round_trip(self):
        # factor is degrade-only; a stray value must not break equality
        event = LinkEvent(time=1.0, link="l", action="fail", factor=0.5)
        assert event.factor == 1.0
        assert LinkEvent.from_json(event.to_json()) == event

    def test_defaults_omittable_in_json(self):
        doc = {
            "name": "minimal",
            "topology": {"family": "star"},
            "workload": {"kind": "all_to_all"},
        }
        spec = ScenarioSpec.from_json(doc)
        assert spec.dynamics == ()
        assert spec.seed == 0
        assert spec.model == "LV08"


class TestValidation:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            LinkEvent(time=0.0, link="x", action="explode")

    def test_degrade_factor_range(self):
        with pytest.raises(ValueError):
            LinkEvent(time=0.0, link="x", action="degrade", factor=0.0)
        with pytest.raises(ValueError):
            LinkEvent(time=0.0, link="x", action="degrade", factor=1.5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LinkEvent(time=-1.0, link="x", action="fail")

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec("")
        with pytest.raises(ValueError):
            WorkloadSpec("")
        with pytest.raises(ValueError):
            ScenarioSpec(name="", topology=TopologySpec("star"),
                         workload=WorkloadSpec("incast"))

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("incast", size=0)

    def test_replace_produces_new_spec(self):
        spec = sample_spec()
        other = spec.replace(seed=99)
        assert other.seed == 99
        assert spec.seed == 42
        assert other.topology == spec.topology
