"""Registry presets, topology registry, and the scenario runner."""

import pytest

from repro.scenarios.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.scenarios.topologies import (
    build_topology,
    register_topology,
    topology_families,
)


class TestTopologyRegistry:
    def test_all_families_registered(self):
        assert topology_families() == [
            "dragonfly", "dumbbell", "fat_tree", "grid", "star", "torus"]

    def test_build_star_from_spec(self):
        platform = build_topology(TopologySpec("star", {"n_hosts": 5}))
        assert len(platform.hosts()) == 5

    def test_build_grid_defaults(self):
        platform = build_topology(TopologySpec("grid"))
        assert len(platform.hosts()) == 12

    def test_torus_tuple_params_accepted(self):
        platform = build_topology(TopologySpec("torus", {"dims": [3, 3]}))
        assert len(platform.hosts()) == 9

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology(TopologySpec("mobius"))

    def test_duplicate_family_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("star", lambda **kw: None)


class TestDefaultRegistry:
    def test_at_least_six_presets_over_five_families(self):
        assert len(DEFAULT_REGISTRY) >= 6
        families = {spec.topology.family for spec in DEFAULT_REGISTRY}
        assert len(families) >= 5

    def test_lookup_and_errors(self):
        spec = DEFAULT_REGISTRY.get("star-incast")
        assert spec.workload.kind == "incast"
        assert "star-incast" in DEFAULT_REGISTRY
        with pytest.raises(ValueError, match="unknown scenario"):
            DEFAULT_REGISTRY.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        spec = DEFAULT_REGISTRY.get("star-incast")
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)

    def test_descriptions_present(self):
        assert all(spec.description for spec in DEFAULT_REGISTRY)


class TestRunScenario:
    def test_deterministic_across_runs(self):
        spec = DEFAULT_REGISTRY.get("dragonfly-random")
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.durations() == b.durations()
        assert a.makespans == b.makespans

    def test_seed_changes_random_workload(self):
        spec = DEFAULT_REGISTRY.get("dragonfly-random")
        a = run_scenario(spec)
        b = run_scenario(spec.replace(seed=spec.seed + 1))
        assert [(t.src, t.dst) for t in a.transfers] != [
            (t.src, t.dst) for t in b.transfers]

    def test_repetitions_respawn_streams(self):
        spec = DEFAULT_REGISTRY.get("star-flash-crowd")
        result = run_scenario(spec, repetitions=3)
        assert result.repetitions == 3
        assert len(result.makespans) == 3
        by_rep = {}
        for t in result.transfers:
            by_rep.setdefault(t.rep, []).append((t.src, t.dst))
        assert len(by_rep) == 3
        # sibling spawned streams draw different pairs
        assert by_rep[0] != by_rep[1]

    def test_deterministic_workloads_identical_across_reps(self):
        spec = DEFAULT_REGISTRY.get("fat-tree-incast")
        result = run_scenario(spec, repetitions=2)
        assert result.makespans[0] == result.makespans[1]

    def test_summary_and_json_shape(self):
        result = run_scenario(DEFAULT_REGISTRY.get("dumbbell-congestion"))
        summary = result.summary()
        assert summary["n_transfers"] == 56
        assert summary["events_applied"] == 2
        assert summary["makespan"] >= summary["max_duration"] > 0
        doc = result.to_json()
        assert doc["name"] == "dumbbell-congestion"
        assert len(doc["transfers"]) == 56
        assert {"time", "link", "action", "bandwidth"} <= set(doc["events"][0])

    def test_dynamics_change_outcomes(self):
        spec = DEFAULT_REGISTRY.get("dumbbell-congestion")
        with_dynamics = run_scenario(spec)
        static = run_scenario(spec.replace(dynamics=()))
        assert max(with_dynamics.durations()) > max(static.durations())

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(DEFAULT_REGISTRY.get("star-incast"), repetitions=0)
