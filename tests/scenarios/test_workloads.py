"""Workload generators: shapes, determinism, registry errors."""

import pytest

from repro._util.rng import spawn_rngs
from repro.scenarios.spec import WorkloadSpec
from repro.scenarios.workloads import (
    generate_workload,
    register_workload,
    workload_kinds,
)

HOSTS = [f"h-{i}" for i in range(1, 9)]


def rng(seed=0):
    return spawn_rngs(seed, 1, "test")[0]


class TestAllToAll:
    def test_every_ordered_pair(self):
        transfers = generate_workload(WorkloadSpec("all_to_all", size=1e6),
                                      HOSTS, rng())
        assert len(transfers) == 8 * 7
        assert len(set(transfers)) == 8 * 7
        assert all(src != dst for src, dst, _ in transfers)

    def test_limit_caps_participants(self):
        spec = WorkloadSpec("all_to_all", size=1e6, params={"limit": 3})
        transfers = generate_workload(spec, HOSTS, rng())
        assert len(transfers) == 3 * 2
        assert {h for t in transfers for h in t[:2]} == {"h-1", "h-2", "h-3"}


class TestIncast:
    def test_defaults_to_last_host_sink(self):
        transfers = generate_workload(
            WorkloadSpec("incast", size=1e6, params={"fan_in": 5}), HOSTS, rng())
        assert len(transfers) == 5
        assert all(dst == "h-8" for _, dst, _ in transfers)
        assert all(src != "h-8" for src, _, _ in transfers)

    def test_explicit_destination(self):
        spec = WorkloadSpec("incast", size=1e6,
                            params={"destination": "h-2", "fan_in": 3})
        transfers = generate_workload(spec, HOSTS, rng())
        assert all(dst == "h-2" for _, dst, _ in transfers)

    def test_fan_in_bounds(self):
        with pytest.raises(ValueError):
            generate_workload(
                WorkloadSpec("incast", params={"fan_in": 99}), HOSTS, rng())

    def test_unknown_destination_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(
                WorkloadSpec("incast", params={"destination": "nope"}),
                HOSTS, rng())


class TestShuffle:
    def test_single_stride_is_a_ring(self):
        transfers = generate_workload(WorkloadSpec("shuffle", size=1e6),
                                      HOSTS, rng())
        assert len(transfers) == 8
        assert ("h-8", "h-1", 1e6) in transfers

    def test_strides_multiply_transfers(self):
        spec = WorkloadSpec("shuffle", size=1e6, params={"strides": 3})
        transfers = generate_workload(spec, HOSTS, rng())
        assert len(transfers) == 8 * 3
        # every host sends and receives exactly `strides` transfers
        sends = {h: 0 for h in HOSTS}
        recvs = {h: 0 for h in HOSTS}
        for src, dst, _ in transfers:
            sends[src] += 1
            recvs[dst] += 1
        assert set(sends.values()) == {3}
        assert set(recvs.values()) == {3}

    def test_stride_bounds(self):
        with pytest.raises(ValueError):
            generate_workload(
                WorkloadSpec("shuffle", params={"strides": 8}), HOSTS, rng())


class TestRandomPairs:
    def test_deterministic_given_stream(self):
        spec = WorkloadSpec("random_pairs", size=1e6, params={"n_pairs": 20})
        a = generate_workload(spec, HOSTS, rng(5))
        b = generate_workload(spec, HOSTS, rng(5))
        assert a == b

    def test_different_streams_differ(self):
        spec = WorkloadSpec("random_pairs", size=1e6, params={"n_pairs": 20})
        a = generate_workload(spec, HOSTS, rng(5))
        b = generate_workload(spec, HOSTS, rng(6))
        assert a != b

    def test_no_self_transfers(self):
        spec = WorkloadSpec("random_pairs", size=1e6, params={"n_pairs": 500})
        transfers = generate_workload(spec, HOSTS, rng())
        assert all(src != dst for src, dst, _ in transfers)


class TestRegistry:
    def test_known_kinds(self):
        assert workload_kinds() == [
            "all_to_all", "incast", "random_pairs", "shuffle"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            generate_workload(WorkloadSpec("nope"), HOSTS, rng())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("incast", lambda hosts, spec, rng: [])

    def test_too_few_hosts_rejected(self):
        with pytest.raises(ValueError, match=">= 2 hosts"):
            generate_workload(WorkloadSpec("all_to_all"), ["only"], rng())
