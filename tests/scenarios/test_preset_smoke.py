"""Tier-1 hook for the scenario preset smoke check.

Every preset in the default registry must build its platform and complete a
tiny simulation in both kernel modes — see ``tools/check_scenario_smoke.py``.
Presets are millisecond-scale, so unlike the bench smoke this runs
in-process on every tier-1 pass.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_scenario_smoke  # noqa: E402

from repro.scenarios.registry import DEFAULT_REGISTRY  # noqa: E402


@pytest.mark.parametrize("name", DEFAULT_REGISTRY.names())
def test_preset_smokes_in_both_kernel_modes(name):
    makespan, n_transfers = check_scenario_smoke.smoke_preset(
        DEFAULT_REGISTRY.get(name))
    assert makespan > 0
    assert n_transfers >= 1


def test_standalone_runner_passes(capsys):
    assert check_scenario_smoke.main() == 0
    out = capsys.readouterr().out
    assert "FAIL" not in out
    assert f"{len(DEFAULT_REGISTRY)} scenario presets" in out
