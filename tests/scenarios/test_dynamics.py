"""Dynamics schedules: in-flight recalibration, mode equivalence."""

import pytest

from repro.scenarios.dynamics import (
    FAILED_BANDWIDTH,
    schedule_dynamics,
    validate_dynamics,
)
from repro.scenarios.spec import LinkEvent, ScenarioSpec, TopologySpec, WorkloadSpec
from repro.scenarios.runner import run_scenario
from repro.simgrid.builder import build_dumbbell
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02


def dumbbell_sim():
    platform = build_dumbbell(2, 2, bottleneck_bandwidth="1Gbps")
    return platform, Simulation(platform, CM02())


class TestScheduleDynamics:
    def test_degradation_slows_inflight_transfer(self):
        # baseline: single 1e9 transfer over the 1 Gbps (125 MB/s) bottleneck
        _, sim = dumbbell_sim()
        baseline = sim.simulate_transfers([("left-1", "right-1", 1e9)])[0].duration

        platform, sim = dumbbell_sim()
        schedule_dynamics(sim, [
            LinkEvent(time=1.0, link="bottleneck", action="degrade", factor=0.5),
        ])
        degraded = sim.simulate_transfers([("left-1", "right-1", 1e9)])[0].duration
        # 1s at full rate, the rest at half rate: clearly slower than baseline
        assert degraded > baseline * 1.4
        assert platform.link("bottleneck").bandwidth == pytest.approx(125e6 * 0.5)

    def test_recovery_restores_nominal_bandwidth(self):
        platform, sim = dumbbell_sim()
        nominal = platform.link("bottleneck").bandwidth
        log = schedule_dynamics(sim, [
            LinkEvent(time=0.5, link="bottleneck", action="degrade", factor=0.25),
            LinkEvent(time=1.0, link="bottleneck", action="recover"),
        ])
        sim.simulate_transfers([("left-1", "right-1", 1e9)])
        assert platform.link("bottleneck").bandwidth == pytest.approx(nominal)
        assert [e.action for e in log.applied] == ["degrade", "recover"]

    def test_failure_floors_bandwidth_and_stalls_transfer(self):
        platform, sim = dumbbell_sim()
        schedule_dynamics(sim, [
            LinkEvent(time=0.5, link="bottleneck", action="fail"),
            LinkEvent(time=2.5, link="bottleneck", action="recover"),
        ])
        duration = sim.simulate_transfers(
            [("left-1", "right-1", 1e9)])[0].duration
        # ~2s of outage inserted into an ~8s transfer
        assert duration > 9.5

    def test_fail_sets_floor_bandwidth(self):
        platform, sim = dumbbell_sim()
        schedule_dynamics(sim, [
            LinkEvent(time=0.1, link="bottleneck", action="fail"),
        ])
        sim.add_comm("left-1", "right-1", 1e5)
        sim.run(until=0.2)
        assert platform.link("bottleneck").bandwidth == FAILED_BANDWIDTH

    def test_degrade_factors_compose_from_nominal(self):
        platform, sim = dumbbell_sim()
        nominal = platform.link("bottleneck").bandwidth
        schedule_dynamics(sim, [
            LinkEvent(time=0.1, link="bottleneck", action="degrade", factor=0.5),
            LinkEvent(time=0.2, link="bottleneck", action="degrade", factor=0.25),
        ])
        sim.add_comm("left-1", "right-1", 1e9)
        sim.run(until=0.3)
        # 0.25 of nominal, not 0.25 of the already-degraded rate
        assert platform.link("bottleneck").bandwidth == pytest.approx(nominal * 0.25)

    def test_pattern_matches_multiple_links(self):
        platform, sim = dumbbell_sim()
        log = schedule_dynamics(sim, [
            LinkEvent(time=0.1, link="left-*-link", action="degrade", factor=0.5),
        ])
        sim.add_comm("left-1", "right-1", 1e8)
        sim.run()
        assert sorted(e.link for e in log.applied) == [
            "left-1-link", "left-2-link"]

    def test_unmatched_pattern_rejected_up_front(self):
        platform, sim = dumbbell_sim()
        with pytest.raises(ValueError, match="matches no link"):
            schedule_dynamics(sim, [
                LinkEvent(time=0.1, link="no-such-*", action="fail")])

    def test_validate_dynamics_passes_on_match(self):
        platform, _ = dumbbell_sim()
        validate_dynamics(platform, [
            LinkEvent(time=0.0, link="bottleneck", action="fail")])

    def test_mid_run_scheduling_rejected(self):
        _, sim = dumbbell_sim()
        sim.add_comm("left-1", "right-1", 1e9)
        sim.run(until=1.0)
        with pytest.raises(ValueError, match="clock 0"):
            schedule_dynamics(sim, [
                LinkEvent(time=2.0, link="bottleneck", action="fail")])


class TestModeEquivalence:
    """Incremental and full_resolve kernels must agree under dynamics —
    the scenario-level extension of test_incremental_equivalence."""

    @pytest.mark.parametrize("preset", [
        "star-incast", "dumbbell-congestion", "fat-tree-shuffle",
        "torus-neighbors", "dragonfly-random",
    ])
    def test_presets_agree_between_modes(self, preset):
        from repro.scenarios.registry import DEFAULT_REGISTRY

        spec = DEFAULT_REGISTRY.get(preset)
        incremental = run_scenario(spec, full_resolve=False)
        full = run_scenario(spec, full_resolve=True)
        assert incremental.makespans == pytest.approx(full.makespans, rel=1e-9)
        for inc, ful in zip(incremental.transfers, full.transfers):
            assert (inc.src, inc.dst) == (ful.src, ful.dst)
            assert inc.duration == pytest.approx(ful.duration, rel=1e-9)

    def test_dense_dynamics_agree_between_modes(self):
        # events every 50 ms across a contended bottleneck — many re-shares
        events = tuple(
            LinkEvent(time=0.05 * (i + 1), link="bottleneck",
                      action="degrade", factor=0.3 + 0.05 * (i % 8))
            for i in range(16)
        ) + (LinkEvent(time=1.0, link="bottleneck", action="recover"),)
        spec = ScenarioSpec(
            name="dense",
            topology=TopologySpec("dumbbell", {"n_left": 3, "n_right": 3}),
            workload=WorkloadSpec("all_to_all", size=3e7),
            dynamics=events,
        )
        incremental = run_scenario(spec, full_resolve=False)
        full = run_scenario(spec, full_resolve=True)
        for inc, ful in zip(incremental.transfers, full.transfers):
            assert inc.duration == pytest.approx(ful.duration, rel=1e-9)
