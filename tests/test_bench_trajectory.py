"""Tier-1 hook for the bench trajectory gate.

Every bench module must have a committed ``BENCH_<name>.json`` in
``benchmarks/results/`` with a valid schema — see
``tools/check_bench_trajectory.py`` (this runs its smoke mode: presence +
schema only; the speedup regression comparison against a previous results
directory is a release-time check, not tier-1).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench_trajectory  # noqa: E402

RESULTS = REPO_ROOT / "benchmarks" / "results"


def test_every_bench_has_a_trajectory_file():
    assert check_bench_trajectory.check_presence(RESULTS) == []


def test_committed_trajectory_files_pass_schema():
    docs, errors = check_bench_trajectory.load_results(RESULTS)
    assert errors == []
    assert "incremental_solver" in docs


def test_incremental_solver_records_speedup_metrics():
    """The kernel bench must record the trajectory the ISSUE tracks:
    timings and speedup ratios for the campaign and disjoint shapes."""
    doc = json.loads(
        (RESULTS / "BENCH_incremental_solver.json").read_text())
    metrics = doc["metrics"]
    for name in ("fig5", "fig9", "disjoint_50x50"):
        assert name in metrics, f"missing {name} metric"
        for key in ("full_ms", "incremental_ms", "speedup", "transfers"):
            assert isinstance(metrics[name][key], (int, float))
        assert metrics[name]["speedup"] > 0


def test_smoke_gate_passes_on_committed_results():
    assert check_bench_trajectory.main(["--smoke"]) == 0


def test_schema_gate_rejects_malformed_files(tmp_path):
    bad = tmp_path / "BENCH_incremental_solver.json"
    bad.write_text(json.dumps({"schema": 1, "bench": "wrong_name"}))
    errors = check_bench_trajectory.check_schema(
        json.loads(bad.read_text()), bad)
    assert any("missing key" in e for e in errors)
    docs, load_errors = check_bench_trajectory.load_results(tmp_path)
    assert docs == {} and load_errors


def test_regression_comparison_flags_collapsed_speedup():
    current = {"incremental_solver": {"metrics": {
        "disjoint_50x50": {"speedup": 2.0}}}}
    previous = {"incremental_solver": {"metrics": {
        "disjoint_50x50": {"speedup": 10.0}}}}
    errors = check_bench_trajectory.compare_speedups(current, previous)
    assert len(errors) == 1 and "regressed" in errors[0]
    # within the floor: no error
    assert check_bench_trajectory.compare_speedups(
        previous, previous) == []
