"""Tier-1 hook for the bench trajectory gate.

Every bench module must have a committed ``BENCH_<name>.json`` in
``benchmarks/results/`` with a valid schema — see
``tools/check_bench_trajectory.py`` (this runs its smoke mode: presence +
schema only; the speedup regression comparison against a previous results
directory is a release-time check, not tier-1).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench_trajectory  # noqa: E402

RESULTS = REPO_ROOT / "benchmarks" / "results"


def test_every_bench_has_a_trajectory_file():
    assert check_bench_trajectory.check_presence(RESULTS) == []


def test_committed_trajectory_files_pass_schema():
    docs, errors = check_bench_trajectory.load_results(RESULTS)
    assert errors == []
    assert "incremental_solver" in docs


def test_incremental_solver_records_speedup_metrics():
    """The kernel bench must record the trajectory the ISSUE tracks:
    timings and speedup ratios for the campaign and disjoint shapes."""
    doc = json.loads(
        (RESULTS / "BENCH_incremental_solver.json").read_text())
    metrics = doc["metrics"]
    for name in ("fig5", "fig9", "disjoint_50x50"):
        assert name in metrics, f"missing {name} metric"
        for key in ("full_ms", "incremental_ms", "speedup", "transfers"):
            assert isinstance(metrics[name][key], (int, float))
        assert metrics[name]["speedup"] > 0


def test_smoke_gate_passes_on_committed_results():
    assert check_bench_trajectory.main(["--smoke"]) == 0


def test_schema_gate_rejects_malformed_files(tmp_path):
    bad = tmp_path / "BENCH_incremental_solver.json"
    bad.write_text(json.dumps({"schema": 1, "bench": "wrong_name"}))
    errors = check_bench_trajectory.check_schema(
        json.loads(bad.read_text()), bad)
    assert any("missing key" in e for e in errors)
    docs, load_errors = check_bench_trajectory.load_results(tmp_path)
    assert docs == {} and load_errors


def test_committed_summary_is_valid_and_pins_the_surrogate_win():
    docs, errors = check_bench_trajectory.load_results(RESULTS)
    assert errors == []
    assert check_bench_trajectory.check_summary(RESULTS, docs) == []
    summary = json.loads(
        (RESULTS / check_bench_trajectory.SUMMARY_FILENAME).read_text())
    assert summary["kind"] == "trajectory_summary"
    assert isinstance(summary["git_rev"], str) and summary["git_rev"]
    assert set(summary["benches"]) == set(docs)
    surrogate = summary["benches"]["surrogate_serving"]
    assert surrogate["headline_speedup"] >= 10.0


def test_summary_validation_flags_disagreement_and_staleness(tmp_path):
    doc = {"metrics": {"m": {"speedup": 4.0}}}
    summary = {
        "schema": 1, "kind": "trajectory_summary", "git_rev": "deadbeef",
        "created_unix": 0.0,
        "benches": {
            "real": {"headline_speedup": 2.0, "speedups": {"m": 2.0},
                     "smoke": False},
            "ghost": {"headline_speedup": None, "speedups": {},
                      "smoke": False},
        },
    }
    (tmp_path / check_bench_trajectory.SUMMARY_FILENAME).write_text(
        json.dumps(summary))
    errors = check_bench_trajectory.check_summary(tmp_path, {"real": doc})
    assert any("speedups disagree" in e for e in errors)
    assert any("stale summary entry 'ghost'" in e for e in errors)


def _synthetic_doc(speedup: float) -> dict:
    return {
        "schema": 1, "bench": "synthetic", "machine": "m", "platform": "p",
        "python": "3.11.0", "git_rev": "deadbeef", "smoke": False,
        "created_unix": 0.0,
        "cases": [{"name": "t", "outcome": "passed", "duration_s": 0.1}],
        "metrics": {"headline": {"speedup": float(speedup)}},
    }


def _write_synthetic_results(results_dir: Path, speedup: float) -> None:
    results_dir.mkdir(exist_ok=True)
    (results_dir / "BENCH_synthetic.json").write_text(
        json.dumps(_synthetic_doc(speedup)))
    (results_dir / check_bench_trajectory.SUMMARY_FILENAME).write_text(
        json.dumps({
            "schema": 1, "kind": "trajectory_summary",
            "git_rev": "deadbeef", "created_unix": 0.0,
            "benches": {"synthetic": {
                "headline_speedup": float(speedup),
                "speedups": {"headline": float(speedup)},
                "smoke": False,
            }},
        }))


def test_main_fails_on_synthetic_speedup_regression(tmp_path, monkeypatch):
    """End to end: ``--previous`` must turn a collapsed speedup into a
    non-zero exit, and a held speedup into a clean pass."""
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_synthetic.py").write_text("")
    monkeypatch.setattr(check_bench_trajectory, "BENCH_DIR", bench_dir)
    current = tmp_path / "current"
    previous = tmp_path / "previous"
    _write_synthetic_results(previous, speedup=10.0)
    _write_synthetic_results(current, speedup=2.0)  # below the 0.5 floor
    assert check_bench_trajectory.main(
        ["--results", str(current), "--previous", str(previous)]) == 1
    _write_synthetic_results(current, speedup=9.0)  # held: within the floor
    assert check_bench_trajectory.main(
        ["--results", str(current), "--previous", str(previous)]) == 0


def test_regression_comparison_flags_collapsed_speedup():
    current = {"incremental_solver": {"metrics": {
        "disjoint_50x50": {"speedup": 2.0}}}}
    previous = {"incremental_solver": {"metrics": {
        "disjoint_50x50": {"speedup": 10.0}}}}
    errors = check_bench_trajectory.compare_speedups(current, previous)
    assert len(errors) == 1 and "regressed" in errors[0]
    # within the floor: no error
    assert check_bench_trajectory.compare_speedups(
        previous, previous) == []
