#!/usr/bin/env python
"""Run every ``benchmarks/bench_*.py`` in smoke mode so benches can't rot.

Bench modules are not collected by the default test run (pytest only picks up
``test_*.py``), which historically let them break silently between releases.
This runner executes all of them in ONE pytest subprocess — sharing the
session-cached experiment harness across files — with:

- ``REPRO_REPS=1``: a single experiment repetition per figure,
- ``REPRO_SMOKE=1``: benches shrink their own timing loops,
- ``--benchmark-disable``: each benchmarked callable runs once, untimed.

Exit code is pytest's.  Used standalone::

    PYTHONPATH=src python tools/check_bench_smoke.py

and wired into tier-1 through ``tests/test_bench_smoke.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def bench_files() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def smoke_command(files: list[Path]) -> list[str]:
    return [
        sys.executable, "-m", "pytest", "-q",
        "-p", "no:cacheprovider",
        "--benchmark-disable",
        *[str(f) for f in files],
    ]


def smoke_environment() -> dict[str, str]:
    env = dict(os.environ)
    env["REPRO_REPS"] = "1"
    env["REPRO_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def main(argv: list[str] | None = None) -> int:
    files = bench_files()
    if not files:
        print("no benchmarks/bench_*.py files found", file=sys.stderr)
        return 2
    print(f"smoke-running {len(files)} bench modules "
          f"(REPRO_REPS=1, REPRO_SMOKE=1, --benchmark-disable)")
    result = subprocess.run(
        smoke_command(files), cwd=REPO_ROOT, env=smoke_environment()
    )
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())
