#!/usr/bin/env python
"""Run every ``benchmarks/bench_*.py`` in smoke mode so benches can't rot.

Bench modules are not collected by the default test run (pytest only picks up
``test_*.py``), which historically let them break silently between releases.
This runner executes all of them in ONE pytest subprocess — sharing the
session-cached experiment harness across files — with:

- ``REPRO_REPS=1``: a single experiment repetition per figure,
- ``REPRO_SMOKE=1``: benches shrink their own timing loops,
- ``--benchmark-disable``: each benchmarked callable runs once, untimed.

The run also verifies the trajectory contract: every bench module must emit
its ``BENCH_<name>.json`` (see ``benchmarks/_trajectory.py``) — a bench that
runs but leaves no trace fails the check.  Emission goes to a scratch
directory by default so smoke runs never overwrite the committed trajectory
in ``benchmarks/results/``; set ``REPRO_BENCH_OUT`` to choose the directory
(e.g. point it at ``benchmarks/results`` to refresh the committed files).

Exit code is pytest's, or 3 when a bench forgot its trajectory file.  Used
standalone::

    PYTHONPATH=src python tools/check_bench_smoke.py

and wired into tier-1 through ``tests/test_bench_smoke.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def bench_files() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def smoke_command(files: list[Path]) -> list[str]:
    return [
        sys.executable, "-m", "pytest", "-q",
        "-p", "no:cacheprovider",
        "--benchmark-disable",
        *[str(f) for f in files],
    ]


def smoke_environment(bench_out: Path | str | None = None) -> dict[str, str]:
    env = dict(os.environ)
    env["REPRO_REPS"] = "1"
    env["REPRO_SMOKE"] = "1"
    if bench_out is not None:
        env["REPRO_BENCH_OUT"] = str(bench_out)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


SUMMARY_FILENAME = "BENCH_trajectory_summary.json"


def missing_emissions(files: list[Path], bench_out: Path) -> list[str]:
    """Bench modules whose ``BENCH_<name>.json`` did not appear, plus the
    aggregate summary the trajectory recorder rewrites on every flush."""
    missing = []
    for bench in files:
        name = bench.name[len("bench_"):-len(".py")]
        if not (bench_out / f"BENCH_{name}.json").is_file():
            missing.append(bench.name)
    if not (bench_out / SUMMARY_FILENAME).is_file():
        missing.append(SUMMARY_FILENAME)
    return missing


def main(argv: list[str] | None = None) -> int:
    files = bench_files()
    if not files:
        print("no benchmarks/bench_*.py files found", file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="bench-trajectory-") as scratch:
        bench_out = Path(os.environ.get("REPRO_BENCH_OUT", scratch))
        print(f"smoke-running {len(files)} bench modules "
              f"(REPRO_REPS=1, REPRO_SMOKE=1, --benchmark-disable, "
              f"trajectory → {bench_out})")
        result = subprocess.run(
            smoke_command(files), cwd=REPO_ROOT,
            env=smoke_environment(bench_out),
        )
        if result.returncode != 0:
            return result.returncode
        missing = missing_emissions(files, bench_out)
    if missing:
        for name in missing:
            print(f"EMISSION: {name} ran but wrote no trajectory JSON",
                  file=sys.stderr)
        return 3
    print(f"all {len(files)} benches emitted their BENCH_*.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
