#!/usr/bin/env python
"""Smoke-check the planning subsystem end to end so it can't rot.

The planning sibling of ``tools/check_serving_smoke.py``: build a dumbbell
platform, warm one link's horizon series, bring up a Pilgrim HTTP server,
POST a what-if query (events + horizon), GET a horizon-projected forecast,
cross-check both against the direct service answers, confirm the platform
was restored and ``/pilgrim/stats`` counted the queries, and shut down.
Used standalone::

    PYTHONPATH=src python tools/check_horizon_smoke.py

and wired into tier-1 through ``tests/horizon/test_horizon_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Platform name registered with the smoke server.
PLATFORM = "dumbbell"
#: Warm-up observations per link (derated to 60% of nominal).
WARMUP, DERATE = 8, 0.6


def main(argv: list[str] | None = None) -> int:
    from repro.core.framework import Pilgrim
    from repro.core.rest.client import RestClient
    from repro.simgrid.builder import build_dumbbell

    platform = build_dumbbell()
    pilgrim = Pilgrim()
    pilgrim.register_platform(PLATFORM, platform)
    service = pilgrim.forecast
    nominal = platform.link("bottleneck").bandwidth
    for _ in range(WARMUP):
        service.observe_link(PLATFORM, "bottleneck", nominal * DERATE)

    transfers = [["left-1", "right-1", 1e9], ["left-2", "right-2", 5e8]]
    events = [{"time": 1.0, "link": "bottleneck", "action": "degrade",
               "factor": 0.5},
              {"time": 10.0, "link": "bottleneck", "action": "recover"}]
    failures: list[str] = []
    with pilgrim.serve() as server:
        client = RestClient(server.url)

        answer = client.what_if(
            PLATFORM, [tuple(t) for t in transfers], events, horizon=3)
        direct = service.predict_what_if(
            PLATFORM, [tuple(t) for t in transfers], events,
            horizon=3).to_json()
        if answer != direct:
            failures.append("POST what_if differs from direct simulation")
        if len(answer.get("applied", ())) != len(events):
            failures.append(f"what_if applied {answer.get('applied')} "
                            f"events, scheduled {len(events)}")
        for forecast in answer.get("forecasts", ()):
            lower, upper = forecast.get("lower"), forecast.get("upper")
            if lower is None or upper is None:
                failures.append(f"warm what_if answer lacks intervals: "
                                f"{forecast}")
            elif not lower <= forecast["duration"] <= upper:
                failures.append(f"interval does not bracket the forecast: "
                                f"{forecast}")

        projected = client.get(
            f"/pilgrim/predict_transfers/{PLATFORM}",
            [("transfer", f"{src},{dst},{size:g}")
             for src, dst, size in (tuple(t) for t in transfers)]
            + [("horizon", "3")])
        live = client.predict_transfers(
            PLATFORM, [tuple(t) for t in transfers])
        for now, later in zip(live, projected):
            if later["duration"] <= now["duration"]:
                failures.append(
                    f"projected forecast not slower than live on the "
                    f"derated bottleneck: {now} vs {later}")

        if platform.link("bottleneck").bandwidth != nominal:
            failures.append("what_if left the platform mutated")

        planning = client.stats().get("planning", {})
        if planning.get("what_if_queries", 0) < 2:
            failures.append(f"/stats missed what-if queries: {planning}")
        if planning.get("horizon_queries", 0) < 1:
            failures.append(f"/stats missed horizon queries: {planning}")
        horizons = planning.get("horizons", {}).get(PLATFORM, {})
        if horizons.get("ready", 0) < 1:
            failures.append(f"/stats reports no warm link series: {planning}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"horizon smoke OK: dumbbell platform, what_if + horizon "
          f"round trips, intervals bracket, platform restored, "
          f"/stats consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
