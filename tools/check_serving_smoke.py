#!/usr/bin/env python
"""Smoke-check the serving subsystem end to end so it can't rot.

The serving sibling of ``tools/check_bench_smoke.py`` and
``tools/check_scenario_smoke.py``: bring up a Pilgrim HTTP server with the
serving layer enabled (cache + coalescer, inline execution — no worker
processes, so the check is fast on any machine), POST a batch of transfers,
repeat it to exercise the cache, read ``/stats``, cross-check every answer
against a direct simulation, and shut down.  Used standalone::

    PYTHONPATH=src python tools/check_serving_smoke.py

and wired into tier-1 through ``tests/serving/test_serving_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Hosts in the synthetic smoke platform.
N_HOSTS = 8


def main(argv: list[str] | None = None) -> int:
    from repro.core.framework import Pilgrim
    from repro.core.rest.client import RestClient
    from repro.serving.factories import STAR_PLATFORM, star_forecast_service

    service = star_forecast_service(N_HOSTS)
    platform = service.platform(STAR_PLATFORM)
    hosts = [h.name for h in platform.hosts()]

    pilgrim = Pilgrim()
    pilgrim.register_platform(STAR_PLATFORM, platform)
    pilgrim.enable_serving(window=0.002, cache_size=64)
    failures: list[str] = []
    try:
        with pilgrim.serve() as server:
            client = RestClient(server.url)
            transfers = [
                [hosts[i], hosts[(i + 1) % len(hosts)], 5e7 * (i + 1)]
                for i in range(4)
            ]
            first = client.post_predict_transfers(STAR_PLATFORM, transfers)
            again = client.post_predict_transfers(STAR_PLATFORM, transfers)
            direct = [
                f.to_json() for f in service.predict_transfers(
                    STAR_PLATFORM, [tuple(t) for t in transfers])
            ]
            if first != direct:
                failures.append("POST answer differs from direct simulation")
            if again != first:
                failures.append("cached answer differs from simulated answer")

            stats = client.stats()
            serving = stats.get("serving", {})
            cache = serving.get("cache", {})
            if not serving.get("enabled"):
                failures.append("/stats does not report serving enabled")
            if cache.get("hits", 0) < 1:
                failures.append(f"repeated POST produced no cache hit: {cache}")
            if cache.get("misses", 0) < 1:
                failures.append(f"first POST produced no cache miss: {cache}")
            if serving.get("latency", {}).get("count", 0) < 2:
                failures.append(f"latency counter missed requests: {serving}")
            if serving.get("batcher", {}).get("requests", 0) < 1:
                failures.append(f"batcher saw no requests: {serving}")
    finally:
        pilgrim.disable_serving()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"serving smoke OK: star({N_HOSTS}) platform, POST x2, "
          f"cache hit confirmed, /stats consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
