#!/usr/bin/env python
"""Smoke-run every registered scenario preset so presets can't rot.

The scenario registry is the CLI's public surface (``repro scenarios
list|run``): every preset must build its platform, generate its workload,
apply its dynamics schedule and complete a simulation.  This runner — the
scenario-registry sibling of ``tools/check_bench_smoke.py`` — executes each
preset once in-process in *both* kernel modes and cross-checks them, so a
preset that only works incrementally (or only with full re-solves) fails
loudly.  Used standalone::

    PYTHONPATH=src python tools/check_scenario_smoke.py

and wired into tier-1 through ``tests/scenarios/test_preset_smoke.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Both modes must agree on every duration to this relative tolerance.
REL_TOL = 1e-9


def smoke_preset(spec) -> tuple[float, int]:
    """Run one preset in both kernel modes; returns (makespan, transfers)."""
    from repro.scenarios.runner import run_scenario

    incremental = run_scenario(spec, full_resolve=False)
    full = run_scenario(spec, full_resolve=True)
    for inc, ful in zip(incremental.transfers, full.transfers):
        drift = abs(inc.duration - ful.duration) / max(inc.duration, ful.duration)
        if drift > REL_TOL:
            raise AssertionError(
                f"{spec.name}: kernel modes disagree on {inc.src}->{inc.dst} "
                f"({inc.duration} vs {ful.duration}, rel {drift:.2e})"
            )
    if ((len(spec.dynamics) or len(spec.measured))
            and not incremental.events_applied):
        raise AssertionError(f"{spec.name}: dynamics schedule never fired")
    return max(incremental.makespans), len(incremental.transfers)


def main(argv: list[str] | None = None) -> int:
    from repro.scenarios.registry import DEFAULT_REGISTRY

    specs = DEFAULT_REGISTRY.specs()
    if not specs:
        print("no scenario presets registered", file=sys.stderr)
        return 2
    print(f"smoke-running {len(specs)} scenario presets "
          f"(incremental + full_resolve, {REL_TOL} agreement)")
    failures = 0
    for spec in specs:
        t0 = time.perf_counter()
        try:
            makespan, n_transfers = smoke_preset(spec)
        except Exception as exc:  # noqa: BLE001 - smoke boundary
            failures += 1
            print(f"  FAIL {spec.name}: {type(exc).__name__}: {exc}")
            continue
        print(f"  ok   {spec.name}: {n_transfers} transfers, "
              f"makespan {makespan:.3f}s "
              f"({(time.perf_counter() - t0) * 1e3:.0f} ms)")
    if failures:
        print(f"{failures}/{len(specs)} presets failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
