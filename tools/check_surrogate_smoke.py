#!/usr/bin/env python
"""Smoke-check the surrogate fast path end to end so it can't rot.

The surrogate sibling of ``tools/check_serving_smoke.py``: run a small
seeded campaign sweep, train the ridge + k-NN model, verify the JSON
round-trips, then bring up a Pilgrim HTTP server with the surrogate tier
armed and walk the whole serving contract — surrogate hit with counters in
``/stats``, bit-identical fallback when the uncertainty bound forbids
answering, stale-epoch fallback after a live link mutation, and a
retrainer flush that refreshes the tier.  Used standalone::

    PYTHONPATH=src python tools/check_surrogate_smoke.py

and wired into tier-1 through ``tests/surrogate/test_surrogate_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Hosts in the synthetic smoke platform (and the training sweep).
N_HOSTS = 8
PLATFORM = "surrogate-star"
#: Loose accuracy sanity floor for the tiny smoke sweep (log2 units); the
#: benchmark pins the real floor on a full-size held-out sweep.
MAX_MEDIAN_ERROR = 0.8


def main(argv: list[str] | None = None) -> int:
    import numpy as np

    from repro.core.forecast import NetworkForecastService
    from repro.core.framework import Pilgrim
    from repro.core.rest.client import RestClient
    from repro.scenarios.spec import TopologySpec
    from repro.scenarios.topologies import build_topology
    from repro.surrogate import (
        SurrogateDataset,
        SurrogateModel,
        SurrogateRetrainer,
        SurrogateSweep,
        SurrogateTier,
        run_sweep,
    )

    failures: list[str] = []

    # -- sweep + train + serialization ------------------------------------
    sweep = SurrogateSweep(
        samples=10, seed=5,
        topologies=(("star", {"n_hosts": N_HOSTS}),),
        sizes=(1e6, 2e7, 1e8),
    )
    dataset = run_sweep(sweep)
    if len(dataset) < 20:
        failures.append(f"sweep produced only {len(dataset)} rows")
    if SurrogateDataset.from_json(dataset.to_json()) != dataset:
        failures.append("dataset JSON round-trip changed the dataset")
    train, hold = dataset.split_by_sample(0.3, seed=0)
    model = SurrogateModel.train(train)
    report = model.evaluate(hold.features, hold.targets)
    if report["median_abs_log2_error"] > MAX_MEDIAN_ERROR:
        failures.append(f"held-out median |log2 err| "
                        f"{report['median_abs_log2_error']:.3f} exceeds "
                        f"{MAX_MEDIAN_ERROR}")
    twin = SurrogateModel.from_json(model.to_json())
    e1, u1 = model.predict(hold.features)
    e2, u2 = twin.predict(hold.features)
    if not (np.array_equal(e1, e2) and np.array_equal(u1, u2)):
        failures.append("model JSON round-trip changed predictions")

    # -- serving integration over HTTP -------------------------------------
    platform = build_topology(TopologySpec("star", {"n_hosts": N_HOSTS}))
    hosts = [h.name for h in platform.hosts()]
    direct = NetworkForecastService({PLATFORM: platform})
    tier = SurrogateTier(model, bound=0.6)
    pilgrim = Pilgrim()
    pilgrim.register_platform(PLATFORM, platform)
    pilgrim.enable_serving(window=0.002, cache_size=64, surrogate=tier)
    try:
        with pilgrim.serve() as server:
            client = RestClient(server.url)
            transfers = [
                [hosts[i], hosts[(i + 1) % len(hosts)], 2e7 * (i + 1)]
                for i in range(4)
            ]
            tuples = [tuple(t) for t in transfers]
            answered = client.post_predict_transfers(PLATFORM, transfers)
            truth = [f.to_json() for f in
                     direct.predict_transfers(PLATFORM, tuples)]
            stats = client.stats()
            surrogate = stats.get("serving", {}).get("surrogate", {})
            if surrogate.get("hits", 0) < 1:
                failures.append(f"surrogate answered no query: {surrogate}")
            errors = [abs(float(np.log2(a["duration"] / t["duration"])))
                      for a, t in zip(answered, truth)]
            if max(errors) > 2 * MAX_MEDIAN_ERROR:
                failures.append(f"surrogate answer error {max(errors):.3f} "
                                f"log2 units is implausibly large")

            # uncertainty bound 0 forbids answering: bit-identical fallback
            tier.bound = 0.0
            fallback = client.post_predict_transfers(PLATFORM, transfers)
            if fallback != truth:
                failures.append("fallback answer differs from direct "
                                "simulation")
            tier.bound = 0.6

            # live epoch bump: tier goes stale, retrainer refreshes it
            link = platform.links()[0]
            link.bandwidth = link.bandwidth * 0.6
            client.post_predict_transfers(PLATFORM, transfers)
            stale = tier.stats()["fallbacks"]["stale_epoch"]
            if stale < 1:
                failures.append("epoch bump did not push the tier to "
                                "fall back")
            retrainer = SurrogateRetrainer(tier, platform,
                                           samples_per_refresh=3, seed=2)
            if not retrainer.pending:
                failures.append("retrainer saw nothing pending after an "
                                "epoch bump")
            summary = retrainer.flush()
            if not summary or summary["rows"] < 1:
                failures.append(f"retrainer flush trained nothing: "
                                f"{summary}")
            before = tier.stats()["hits"]
            refreshed = client.post_predict_transfers(PLATFORM, transfers)
            truth2 = [f.to_json() for f in
                      direct.predict_transfers(PLATFORM, tuples)]
            if tier.stats()["hits"] <= before:
                failures.append("tier did not resume answering after the "
                                "retrainer refresh")
            errors2 = [abs(float(np.log2(a["duration"] / t["duration"])))
                       for a, t in zip(refreshed, truth2)]
            if max(errors2) > 2 * MAX_MEDIAN_ERROR:
                failures.append(f"post-refresh error {max(errors2):.3f} "
                                f"log2 units is implausibly large")

            stats = client.stats()
            surrogate = stats.get("serving", {}).get("surrogate", {})
            for key in ("hits", "fallbacks", "uncertainty", "bound",
                        "trained_epoch", "refreshes"):
                if key not in surrogate:
                    failures.append(f"/stats surrogate section misses "
                                    f"{key!r}: {surrogate}")
    finally:
        pilgrim.disable_serving()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"surrogate smoke OK: {len(dataset)}-row sweep, held-out median "
          f"|log2 err| {report['median_abs_log2_error']:.3f}, surrogate "
          f"hit + bit-identical fallback + epoch-bump retrain confirmed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
