"""Profiling harness for the prediction hot path.

Per the optimization workflow (make it work → test → profile), this script
cProfiles a whole-grid 60-transfer prediction — the heaviest online request
the paper's campaign issues — and prints the top cumulative entries, so
regressions in the solver or the kernel are easy to spot.

Run:  python tools/profile_prediction.py [n_transfers]
"""

import cProfile
import pstats
import sys
import time

from repro.experiments.environment import forecast_service, root_seed
from repro.experiments.protocol import ExperimentSpec, Topology, draw_transfer_pairs


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    service = forecast_service()
    spec = ExperimentSpec("profile", Topology.GRID_MULTI, n, n)
    pairs = draw_transfer_pairs(spec, root_seed())
    transfers = [(src, dst, 5e8) for src, dst in pairs]

    # warm the route cache the way a long-lived Pilgrim instance would be
    service.predict_transfers("g5k_test", transfers)

    start = time.perf_counter()
    repeats = 20
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeats):
        service.predict_transfers("g5k_test", transfers)
    profiler.disable()
    elapsed = time.perf_counter() - start

    print(f"{repeats} predictions of {n} concurrent transfers: "
          f"{elapsed / repeats * 1e3:.2f} ms each "
          f"(paper bound for 30 transfers: 100 ms)\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(15)


if __name__ == "__main__":
    main()
