#!/usr/bin/env python
"""Smoke-check the live metrology pipeline end to end so it can't rot.

The metrology sibling of ``tools/check_scenario_smoke.py`` and
``tools/check_serving_smoke.py``: run the degrading-link demo's full cycle
(probe → RRD → forecast → epoch bump → re-predict) in-process and verify

- the feed records both metric series per monitored link,
- the recalibration loop anchors references, applies at least one update
  and bumps the link-mutation epoch,
- serving answers immediately after the epoch bump are identical to a
  fresh serial simulation (the cache entry keyed on the old epoch must be
  unreachable),
- recalibrated forecasts beat the static-platform baseline on the
  degraded phase,
- a recorded trace replays as measured scenario dynamics with both kernel
  modes agreeing,
- the warm-pool serving path (``--workers`` in `repro metrology run`)
  recycles workers on recalibration epoch bumps and keeps answering
  bit-identically to serial ground truth,
- a combined bandwidth+latency recording round-trips through JSON and
  replays latency within tolerance of the recorded testbed (both kernel
  modes agreeing).

Used standalone::

    PYTHONPATH=src python tools/check_metrology_smoke.py

and wired into tier-1 through ``tests/metrology/test_metrology_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

N_HOSTS = 3
PERIOD = 15.0
WARMUP = 3
STEPS = 5
SIZE = 2e8
#: Both kernel modes must agree on every replayed duration to this.
REL_TOL = 1e-9


def check_warm_pool_path() -> list[str]:
    """The `repro metrology run --workers` path: warm-pool serving under
    live recalibration must recycle on epoch bumps and stay bit-identical
    to a fresh serial simulation."""
    from repro.metrology.demo import DEMO_PLATFORM, StarMetrologyDemo
    from repro.serving.service import ForecastServingService

    failures: list[str] = []
    demo = StarMetrologyDemo.for_run(
        n_hosts=2, period=PERIOD, seed=5,
        warmup=WARMUP, steps=4, degrade_factor=0.3,
    )
    demo.warmup(WARMUP)
    transfers = demo.workload(SIZE)
    with ForecastServingService(
            demo.service, service_factory=demo.service_factory(),
            workers=1) as serving:
        for _ in range(4):
            demo.step()
            served = serving.predict(DEMO_PLATFORM, transfers)
            direct = demo.service.predict_transfers(DEMO_PLATFORM, transfers)
            if [f.to_json() for f in served] != [f.to_json() for f in direct]:
                failures.append(
                    "warm-pool serving answer differs from serial ground "
                    "truth under live recalibration"
                )
                break
        pool = serving.pool.stats()
        if demo.loop.stats.updates_applied >= 1 and pool["recycles"] < 1:
            failures.append(
                "recalibration bumped the epoch but the warm pool never "
                "recycled (ensure_epoch path broken)"
            )
    return failures


def check_combined_trace_round_trip() -> list[str]:
    """Combined bandwidth+latency recording → JSON → measured replay."""
    from repro.metrology.demo import StarMetrologyDemo
    from repro.scenarios.runner import run_scenario
    from repro.scenarios.spec import (
        MeasuredTrace,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    failures: list[str] = []
    demo = StarMetrologyDemo.for_run(
        n_hosts=2, period=PERIOD, seed=5,
        warmup=WARMUP, steps=5, degrade_factor=0.5,
        degrade_latency_factor=3.0,
    )
    demo.warmup(WARMUP)
    demo.run(5)
    traces = demo.combined_traces()
    if len(traces) != 4:
        return [f"expected 4 combined traces (2 links x 2 metrics), "
                f"got {len(traces)}"]
    round_tripped = [MeasuredTrace.from_json(t.to_json()).rescaled(0.01)
                     for t in traces]
    spec = ScenarioSpec(
        name="metrology-smoke-combined",
        topology=TopologySpec("star", {"n_hosts": 2}),
        workload=WorkloadSpec("all_to_all", size=4e7),
        measured=tuple(round_tripped),
    )
    incremental = run_scenario(spec, full_resolve=False)
    full = run_scenario(spec, full_resolve=True)
    for inc, ful in zip(incremental.transfers, full.transfers):
        drift = (abs(inc.duration - ful.duration)
                 / max(inc.duration, ful.duration))
        if drift > REL_TOL:
            failures.append(
                f"kernel modes disagree on combined replay "
                f"{inc.src}->{inc.dst} (rel {drift:.2e})"
            )
    latency_events = [e for e in incremental.events_applied
                      if e.latency is not None
                      and e.link == demo.degraded_link]
    if not latency_events:
        failures.append("combined replay applied no latency mutations")
    else:
        truth = demo.testbed.links[demo.degraded_link].latency
        replayed = latency_events[-1].latency
        if abs(replayed - truth) / truth > 0.15:
            failures.append(
                f"combined replay latency {replayed:.3e} diverges from the "
                f"recorded testbed's {truth:.3e} beyond 15%"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    from repro._util.stats import median
    from repro.metrology.demo import DEMO_PLATFORM, StarMetrologyDemo
    from repro.scenarios.runner import run_scenario
    from repro.scenarios.spec import ScenarioSpec, TopologySpec, WorkloadSpec
    from repro.serving.service import ForecastServingService

    failures: list[str] = []
    demo = StarMetrologyDemo.for_run(
        n_hosts=N_HOSTS, period=PERIOD, seed=3,
        warmup=WARMUP, steps=STEPS, degrade_factor=0.3,
    )
    demo.warmup(WARMUP)
    for link in (m.link for m in demo.feed.monitors):
        for metric in ("bandwidth", "latency"):
            if not demo.feed.rrd(link, metric).fetch(0.0, demo.feed.clock):
                failures.append(f"feed recorded no {metric} series for {link}")

    transfers = demo.workload(SIZE)
    recal_errors, static_errors = [], []
    epoch_bump_checked = False
    with ForecastServingService(demo.service) as serving:
        for step in range(STEPS):
            epoch_before = demo.loop.epoch
            serving.predict(DEMO_PLATFORM, transfers)  # populate the cache
            demo.step()
            if demo.loop.epoch != epoch_before:
                epoch_bump_checked = True
                served = serving.predict(DEMO_PLATFORM, transfers)
                direct = demo.service.predict_transfers(DEMO_PLATFORM,
                                                        transfers)
                if ([f.to_json() for f in served]
                        != [f.to_json() for f in direct]):
                    failures.append(
                        "post-epoch-bump serving answer differs from a "
                        "fresh serial simulation"
                    )
            evaluation = demo.evaluate_step(serving, transfers,
                                            seed_salt=step)
            if evaluation.degraded:
                recal_errors.append(evaluation.err_recalibrated)
                static_errors.append(evaluation.err_static)

    if demo.loop.stats.updates_applied < 1:
        failures.append("recalibration loop never applied an update")
    if not epoch_bump_checked:
        failures.append("no epoch bump observed across the whole run")
    if not recal_errors:
        failures.append("degradation never fired")
    elif median(recal_errors) >= median(static_errors):
        failures.append(
            f"recalibrated forecasts do not beat the static baseline "
            f"({median(recal_errors):.3f} >= {median(static_errors):.3f})"
        )

    traces = demo.measured_traces()
    if len(traces) != N_HOSTS:
        failures.append(f"expected {N_HOSTS} recorded traces, got {len(traces)}")
    else:
        compressed = [t.rescaled(0.01) for t in traces]
        spec = ScenarioSpec(
            name="metrology-smoke-replay",
            topology=TopologySpec("star", {"n_hosts": N_HOSTS}),
            workload=WorkloadSpec("all_to_all", size=4e7),
            measured=tuple(compressed),
        )
        incremental = run_scenario(spec, full_resolve=False)
        full = run_scenario(spec, full_resolve=True)
        if not incremental.events_applied:
            failures.append("measured replay applied no mutations")
        for inc, ful in zip(incremental.transfers, full.transfers):
            drift = (abs(inc.duration - ful.duration)
                     / max(inc.duration, ful.duration))
            if drift > REL_TOL:
                failures.append(
                    f"kernel modes disagree on replayed {inc.src}->{inc.dst} "
                    f"({inc.duration} vs {ful.duration}, rel {drift:.2e})"
                )
                break

    failures.extend(check_warm_pool_path())
    failures.extend(check_combined_trace_round_trip())

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"metrology smoke OK: star({N_HOSTS}) demo, "
          f"{demo.loop.stats.updates_applied} recalibrations applied, "
          f"epoch-bump consistency checked, "
          f"recalibrated {median(recal_errors):.3f} vs "
          f"static {median(static_errors):.3f} |log2 err|, "
          f"trace replay agrees across kernel modes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
