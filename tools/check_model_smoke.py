#!/usr/bin/env python
"""Smoke-run every registered sharing model so model plugins can't rot.

The model registry is the CLI's public surface (``repro models list``,
``--model`` on predict/scenarios/serve): every registered model must build
from its factory defaults, drive a small simulation on a contended star
and a dumbbell, and produce identical answers through all three solver
paths — incremental-vectorized, ``full_resolve`` and the scalar arena.
This runner — the model-registry sibling of
``tools/check_scenario_smoke.py`` — is what keeps a model that only works
with full rebuilds (or whose time-varying weight updates drift between
solver modes) out of the registry.  Used standalone::

    PYTHONPATH=src python tools/check_model_smoke.py

and wired into tier-1 through ``tests/simgrid/test_model_smoke.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: All solver modes must agree on every duration to this relative tolerance.
REL_TOL = 1e-9

#: (name, builder, transfers) — tiny but contended: the star forces an
#: incast bottleneck, the dumbbell a shared middle link plus cross flows.
def _star():
    from repro.simgrid.builder import add_star_cluster
    from repro.simgrid.platform import Platform

    platform = Platform("smoke-star")
    add_star_cluster(platform, "s", 6, host_bandwidth=1.25e8,
                     host_latency=1e-4, routing="Dijkstra")
    transfers = [(f"s-{i}", "s-6", 3e7) for i in range(1, 6)]
    return platform, transfers


def _dumbbell():
    from repro.simgrid.builder import build_dumbbell

    platform = build_dumbbell(n_left=3, n_right=3,
                              bottleneck_bandwidth=2.5e8,
                              bottleneck_latency=5e-4,
                              edge_bandwidth=1.25e8, edge_latency=1e-4)
    transfers = [
        ("left-1", "right-1", 5e7),
        ("left-2", "right-2", 5e7),
        ("left-3", "right-3", 2e7),
        ("right-1", "left-1", 4e7),
    ]
    return platform, transfers


TOPOLOGIES = (("star", _star), ("dumbbell", _dumbbell))

#: Solver mode matrix: (label, full_resolve, vectorized).
MODES = (
    ("incremental", False, True),
    ("full_resolve", True, False),
    ("scalar", False, False),
)


def smoke_model(entry) -> float:
    """Run one registry entry on every topology in all solver modes.

    Returns the summed makespan across topologies (a fingerprint the
    caller can sanity-check is positive); raises ``AssertionError`` on any
    cross-mode disagreement beyond :data:`REL_TOL`.
    """
    from repro.simgrid.engine import Simulation

    total_makespan = 0.0
    for topo_name, build in TOPOLOGIES:
        reference = None
        for mode, full_resolve, vectorized in MODES:
            platform, transfers = build()
            sim = Simulation(platform, entry.build(),
                             full_resolve=full_resolve,
                             vectorized=vectorized)
            comms = sim.simulate_transfers(transfers)
            durations = [c.duration for c in comms]
            if any(d <= 0 for d in durations):
                raise AssertionError(
                    f"{entry.name}/{topo_name}/{mode}: non-positive "
                    f"duration in {durations}")
            if reference is None:
                reference = durations
                total_makespan += max(durations)
                continue
            for ref, got in zip(reference, durations):
                drift = abs(ref - got) / max(ref, got)
                if drift > REL_TOL:
                    raise AssertionError(
                        f"{entry.name}/{topo_name}: solver modes disagree "
                        f"(incremental {ref} vs {mode} {got}, "
                        f"rel {drift:.2e})")
    return total_makespan


def main(argv: list[str] | None = None) -> int:
    from repro.simgrid.models import registered_models

    entries = registered_models()
    if not entries:
        print("no sharing models registered", file=sys.stderr)
        return 2
    print(f"smoke-running {len(entries)} sharing models "
          f"({len(TOPOLOGIES)} topologies x {len(MODES)} solver modes, "
          f"{REL_TOL} agreement)")
    failures = 0
    for entry in entries:
        t0 = time.perf_counter()
        try:
            makespan = smoke_model(entry)
        except Exception as exc:  # noqa: BLE001 - smoke boundary
            failures += 1
            print(f"  FAIL {entry.name}: {type(exc).__name__}: {exc}")
            continue
        print(f"  ok   {entry.name}: summed makespan {makespan:.3f}s "
              f"({(time.perf_counter() - t0) * 1e3:.0f} ms)")
    if failures:
        print(f"{failures}/{len(entries)} models failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
