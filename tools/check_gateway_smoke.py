#!/usr/bin/env python
"""Smoke-check the sharded gateway end to end so it can't rot.

The gateway sibling of ``tools/check_serving_smoke.py``: boot a
:class:`ShardedGateway` with two shard processes over the synthetic star
platform, round-trip a ``POST /pilgrim/predict_transfers`` through the
asyncio front end, cross-check the answer against a direct simulation,
assert the aggregated ``GET /pilgrim/stats`` schema (gateway counters plus
one entry per live shard), and shut everything down.  Used standalone::

    PYTHONPATH=src python tools/check_gateway_smoke.py

and wired into tier-1 through ``tests/serving/gateway/test_gateway_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Hosts in the synthetic smoke platform.
N_HOSTS = 8
#: Shard processes behind the gateway.
N_SHARDS = 2


def main(argv: list[str] | None = None) -> int:
    from repro.core.rest.client import RestClient
    from repro.serving.factories import (
        STAR_PLATFORM,
        star_factory,
        star_forecast_service,
    )
    from repro.serving.gateway import GatewayConfig, ShardedGateway

    truth_service = star_forecast_service(N_HOSTS)
    hosts = [h.name for h in truth_service.platform(STAR_PLATFORM).hosts()]
    transfers = [
        (hosts[i], hosts[(i + 1) % len(hosts)], 5e7 * (i + 1))
        for i in range(4)
    ]
    direct = [f.to_json() for f in
              truth_service.predict_transfers(STAR_PLATFORM, transfers)]

    failures: list[str] = []
    config = GatewayConfig(shards=N_SHARDS, window=0.0)
    with ShardedGateway(star_factory(N_HOSTS), config) as gateway:
        with RestClient(gateway.url) as client:
            answer = client.post_predict_transfers(STAR_PLATFORM, transfers)
            if answer != direct:
                failures.append("gateway answer differs from direct "
                                "simulation")

            stats = client.stats()
            if set(stats) != {"gateway", "shards"}:
                failures.append(f"stats top-level schema wrong: "
                                f"{sorted(stats)}")
            top = stats.get("gateway", {})
            for key in ("shards", "admission", "epoch", "shard_occupancy",
                        "shard_dispatched", "shard_alive", "routes",
                        "responses", "connections"):
                if key not in top:
                    failures.append(f"gateway stats missing {key!r}")
            if top.get("shards") != N_SHARDS:
                failures.append(f"gateway reports {top.get('shards')} "
                                f"shards, expected {N_SHARDS}")
            if top.get("admission", {}).get("shed", 0) != 0:
                failures.append("smoke load must not shed")
            shards = stats.get("shards", [])
            if len(shards) != N_SHARDS:
                failures.append(f"{len(shards)} shard stat entries, "
                                f"expected {N_SHARDS}")
            for shard_stats in shards:
                if not shard_stats.get("alive"):
                    failures.append(f"shard not alive: {shard_stats}")
                for key in ("shard", "pid", "epoch", "requests", "serving"):
                    if key not in shard_stats:
                        failures.append(f"shard stats missing {key!r}")
            pids = {s.get("pid") for s in shards}
            if len(pids) != N_SHARDS:
                failures.append(f"shards share a process: pids {pids}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"gateway smoke OK: {N_SHARDS} shards over star({N_HOSTS}), "
          f"POST round-trip bit-identical, /stats schema consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
