#!/usr/bin/env python
"""Gate the bench trajectory: presence, schema, and speedup regressions.

Every ``benchmarks/bench_*.py`` must have a committed ``BENCH_<name>.json``
in ``benchmarks/results/`` (written by the bench conftest — see
``benchmarks/_trajectory.py`` for the schema).  This gate checks:

- **presence**: one trajectory file per bench module, no orphans for
  benches that no longer exist, plus the aggregate
  ``BENCH_trajectory_summary.json``,
- **schema**: required keys with the right shapes, ``"schema": 1``; the
  summary must cover exactly the benches present and agree with their
  recorded speedups,
- **regression** (full mode only, with ``--previous DIR``): any metric
  carrying a ``speedup`` value must not collapse below
  ``--min-ratio`` (default 0.5) of the previous PR's recorded speedup —
  loose on purpose, since trajectories span different machines.

Smoke mode (``--smoke``, what tier-1 runs) stops after presence + schema.

Usage::

    PYTHONPATH=src python tools/check_bench_trajectory.py --smoke
    PYTHONPATH=src python tools/check_bench_trajectory.py \
        --results /tmp/fresh-results --previous benchmarks/results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_RESULTS = BENCH_DIR / "results"

SCHEMA_VERSION = 1
FILE_PREFIX = "BENCH_"
SUMMARY_FILENAME = f"{FILE_PREFIX}trajectory_summary.json"

#: required top-level keys → expected type(s); None-able keys listed apart
REQUIRED_KEYS = {
    "schema": int,
    "bench": str,
    "machine": str,
    "platform": str,
    "python": str,
    "smoke": bool,
    "created_unix": (int, float),
    "cases": list,
    "metrics": dict,
}
NULLABLE_KEYS = {"git_rev": str}
CASE_KEYS = {"name": str, "outcome": str, "duration_s": (int, float)}


def bench_modules() -> list[str]:
    """Names of every bench module (``incremental_solver``-style)."""
    return sorted(
        p.name[len("bench_"):-len(".py")]
        for p in BENCH_DIR.glob("bench_*.py")
    )


def trajectory_path(results_dir: Path, name: str) -> Path:
    return results_dir / f"{FILE_PREFIX}{name}.json"


def check_presence(results_dir: Path) -> list[str]:
    """Missing trajectory files, plus orphans with no matching bench.

    The aggregate ``BENCH_trajectory_summary.json`` is required alongside
    the per-bench files and is never an orphan (it matches no module by
    design)."""
    errors = []
    modules = bench_modules()
    for name in modules:
        if not trajectory_path(results_dir, name).is_file():
            errors.append(f"missing trajectory file for bench_{name}.py: "
                          f"{trajectory_path(results_dir, name)}")
    if modules and not (results_dir / SUMMARY_FILENAME).is_file():
        errors.append(f"missing aggregate summary: "
                      f"{results_dir / SUMMARY_FILENAME}")
    known = {f"{FILE_PREFIX}{name}.json" for name in modules}
    known.add(SUMMARY_FILENAME)
    for path in sorted(results_dir.glob(f"{FILE_PREFIX}*.json")):
        if path.name not in known:
            errors.append(f"orphan trajectory file (no matching bench "
                          f"module): {path}")
    return errors


def check_schema(doc: object, path: Path) -> list[str]:
    errors = []
    if not isinstance(doc, dict):
        return [f"{path.name}: top level must be an object"]
    for key, expected in REQUIRED_KEYS.items():
        if key not in doc:
            errors.append(f"{path.name}: missing key {key!r}")
        elif not isinstance(doc[key], expected) or isinstance(doc[key], bool) \
                and expected is not bool:
            errors.append(f"{path.name}: key {key!r} has type "
                          f"{type(doc[key]).__name__}")
    for key, expected in NULLABLE_KEYS.items():
        if key not in doc:
            errors.append(f"{path.name}: missing key {key!r}")
        elif doc[key] is not None and not isinstance(doc[key], expected):
            errors.append(f"{path.name}: key {key!r} must be "
                          f"{expected.__name__} or null")
    if errors:
        return errors
    if doc["schema"] != SCHEMA_VERSION:
        errors.append(f"{path.name}: schema {doc['schema']} != "
                      f"{SCHEMA_VERSION}")
    expected_bench = path.name[len(FILE_PREFIX):-len(".json")]
    if doc["bench"] != expected_bench:
        errors.append(f"{path.name}: bench {doc['bench']!r} does not match "
                      f"filename ({expected_bench!r})")
    if not doc["cases"]:
        errors.append(f"{path.name}: no cases recorded")
    for case in doc["cases"]:
        if not isinstance(case, dict):
            errors.append(f"{path.name}: case entries must be objects")
            continue
        for key, expected in CASE_KEYS.items():
            if not isinstance(case.get(key), expected):
                errors.append(f"{path.name}: case key {key!r} missing or "
                              f"mistyped in {case!r}")
    for name, values in doc["metrics"].items():
        if not isinstance(values, dict):
            errors.append(f"{path.name}: metric {name!r} must be an object")
    return errors


def load_results(results_dir: Path) -> tuple[dict[str, dict], list[str]]:
    """Parse every trajectory file; returns ({bench: doc}, errors)."""
    docs: dict[str, dict] = {}
    errors: list[str] = []
    for path in sorted(results_dir.glob(f"{FILE_PREFIX}*.json")):
        if path.name == SUMMARY_FILENAME:
            continue  # validated separately by check_summary
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            errors.append(f"{path.name}: unreadable ({exc})")
            continue
        schema_errors = check_schema(doc, path)
        if schema_errors:
            errors.extend(schema_errors)
        elif isinstance(doc, dict) and isinstance(doc.get("bench"), str):
            docs[doc["bench"]] = doc
    return docs, errors


def _doc_speedups(doc: dict) -> dict[str, float]:
    """Numeric per-metric speedups of one trajectory doc."""
    speedups = {}
    for name, values in (doc.get("metrics") or {}).items():
        if isinstance(values, dict) and isinstance(
                values.get("speedup"), (int, float)) \
                and not isinstance(values["speedup"], bool):
            speedups[name] = float(values["speedup"])
    return speedups


def check_summary(results_dir: Path,
                  docs: dict[str, dict]) -> list[str]:
    """Validate ``BENCH_trajectory_summary.json`` against the per-bench
    files it claims to summarize: schema, coverage (exactly the benches
    present, no stale leftovers), and headline/per-metric speedups that
    agree with what the per-bench docs actually record."""
    path = results_dir / SUMMARY_FILENAME
    if not path.is_file():
        return []  # presence is check_presence's report
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path.name}: top level must be an object"]
    errors = []
    if doc.get("schema") != SCHEMA_VERSION:
        errors.append(f"{path.name}: schema {doc.get('schema')!r} != "
                      f"{SCHEMA_VERSION}")
    if doc.get("kind") != "trajectory_summary":
        errors.append(f"{path.name}: kind {doc.get('kind')!r} != "
                      f"'trajectory_summary'")
    if doc.get("git_rev") is not None \
            and not isinstance(doc.get("git_rev"), str):
        errors.append(f"{path.name}: git_rev must be a string or null")
    if not isinstance(doc.get("created_unix"), (int, float)):
        errors.append(f"{path.name}: created_unix missing or mistyped")
    benches = doc.get("benches")
    if not isinstance(benches, dict):
        errors.append(f"{path.name}: benches missing or mistyped")
        return errors
    for missing in sorted(set(docs) - set(benches)):
        errors.append(f"{path.name}: bench {missing!r} has a trajectory "
                      f"file but no summary entry")
    for stale in sorted(set(benches) - set(docs)):
        errors.append(f"{path.name}: stale summary entry {stale!r} with no "
                      f"trajectory file")
    for bench, entry in sorted(benches.items()):
        if bench not in docs:
            continue
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("speedups"), dict):
            errors.append(f"{path.name}: entry {bench!r} malformed")
            continue
        expected = _doc_speedups(docs[bench])
        if entry["speedups"] != expected:
            errors.append(f"{path.name}: entry {bench!r} speedups disagree "
                          f"with BENCH_{bench}.json")
        headline = entry.get("headline_speedup")
        expected_headline = max(expected.values()) if expected else None
        if headline != expected_headline:
            errors.append(f"{path.name}: entry {bench!r} headline "
                          f"{headline!r} != {expected_headline!r}")
    return errors


def compare_speedups(current: dict[str, dict], previous: dict[str, dict],
                     min_ratio: float = 0.5) -> list[str]:
    """Speedup metrics present on both sides must hold ``min_ratio``."""
    errors = []
    for bench, prev_doc in sorted(previous.items()):
        cur_doc = current.get(bench)
        if cur_doc is None:
            continue  # presence is checked separately, against the modules
        for name, prev_values in prev_doc.get("metrics", {}).items():
            prev_speedup = prev_values.get("speedup") \
                if isinstance(prev_values, dict) else None
            cur_values = cur_doc.get("metrics", {}).get(name)
            cur_speedup = cur_values.get("speedup") \
                if isinstance(cur_values, dict) else None
            if not (isinstance(prev_speedup, (int, float))
                    and isinstance(cur_speedup, (int, float))):
                continue
            if cur_speedup < min_ratio * prev_speedup:
                errors.append(
                    f"{bench}/{name}: speedup regressed {prev_speedup:.2f}x "
                    f"→ {cur_speedup:.2f}x (floor {min_ratio:.0%} of "
                    f"previous)"
                )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS,
                        help="trajectory directory to gate "
                             "(default benchmarks/results)")
    parser.add_argument("--previous", type=Path, default=None,
                        help="previous PR's trajectory directory for the "
                             "speedup regression check")
    parser.add_argument("--smoke", action="store_true",
                        help="presence + schema only (what tier-1 runs)")
    parser.add_argument("--min-ratio", type=float, default=0.5,
                        help="regression floor: current speedup must be at "
                             "least this fraction of the previous one")
    args = parser.parse_args(argv)

    if not args.results.is_dir():
        print(f"results directory not found: {args.results}", file=sys.stderr)
        return 2

    errors = check_presence(args.results)
    current, load_errors = load_results(args.results)
    errors.extend(load_errors)
    errors.extend(check_summary(args.results, current))

    if not args.smoke and args.previous is not None:
        if not args.previous.is_dir():
            errors.append(f"previous directory not found: {args.previous}")
        else:
            previous, prev_errors = load_results(args.previous)
            errors.extend(f"(previous) {e}" for e in prev_errors)
            errors.extend(compare_speedups(current, previous, args.min_ratio))

    if errors:
        for error in errors:
            print(f"TRAJECTORY: {error}", file=sys.stderr)
        print(f"{len(errors)} trajectory problem(s)", file=sys.stderr)
        return 1
    mode = "smoke (presence + schema)" if args.smoke else "full"
    print(f"bench trajectory OK ({mode}): {len(current)} files in "
          f"{args.results}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
