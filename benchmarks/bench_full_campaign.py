"""The campaign beyond the published figures.

"The full set of our experiments (from which we have only showed a subset
in this article) validates the network model of SimGrid" (§VI).  This bench
runs a broader slice of the §V-A parameter space than the nine figures —
every feasible (topology, cluster, sources, destinations) combination over
endpoint counts {1, 10, 30} — and checks the pooled §V-B statistics hold on
it too, not just on the published subset.
"""

from repro.analysis.tables import render_table
from repro.experiments.campaign import (
    campaign_summary,
    campaign_sweep,
    run_campaign,
)
from repro.experiments.summary import verify_summary

SIZES = (5.99e7, 7.74e8, 1e10)
REPS = 2
COUNTS = (1, 10, 30)


def test_campaign_slice_validates_the_model(harness, console, benchmark):
    sweep = campaign_sweep(counts=COUNTS)
    results = run_campaign(
        harness.forecast, harness.testbed, sweep=sweep,
        seed=harness.seed, repetitions=REPS, sizes=SIZES,
    )
    stats = campaign_summary(results)
    rows = [(cid, series.plateau_error()) for cid, series in
            sorted(results.items())]
    console(render_table(
        ["combination", "plateau error (log2)"], rows,
        title=f"campaign slice: {len(results)} combinations, "
              f"{stats.n_observations} large transfers",
    ))
    console(render_table(
        ["metric", "paper", "measured"],
        [(m, p, v) for m, p, v in stats.rows()],
    ))
    failures = verify_summary(stats)
    assert failures == [], "\n".join(failures)
    assert len(results) >= 20
    benchmark(lambda: campaign_summary(results))
