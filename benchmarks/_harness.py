"""Shared bench logic (imported by conftest.py and the bench modules)."""

from __future__ import annotations

from repro.analysis.asciiplot import render_error_plot
from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.experiments.figures import FIGURES
from repro.experiments.protocol import draw_transfer_pairs
from repro.experiments.runner import run_experiment


class FigureHarness:
    """Session-cached experiment results + prediction workloads."""

    def __init__(self) -> None:
        self.forecast = environment.forecast_service()
        self.testbed = environment.testbed()
        self.seed = environment.root_seed()
        self.repetitions = environment.default_repetitions()
        self._series: dict[tuple, object] = {}

    def series(self, fig_id: str, platform_name: str = "g5k_test",
               sizes=None, repetitions=None):
        key = (fig_id, platform_name, sizes, repetitions)
        if key not in self._series:
            figure = FIGURES[fig_id]
            self._series[key] = run_experiment(
                figure.spec, self.forecast, self.testbed,
                platform_name=platform_name, seed=self.seed,
                repetitions=repetitions or self.repetitions, sizes=sizes,
            )
        return self._series[key]

    def verify(self, fig_id: str, series) -> list[str]:
        return FIGURES[fig_id].verify(series)

    def prediction_workload(self, fig_id: str, size: float = 5e8):
        """The PNFS request matching one repetition of the figure."""
        figure = FIGURES[fig_id]
        pairs = draw_transfer_pairs(figure.spec, self.seed)
        return [(src, dst, size) for src, dst in pairs]


def figure_bench(harness: FigureHarness, console, benchmark, fig_id: str) -> None:
    """The common body of every per-figure bench: run, print, assert, time."""
    series = harness.series(fig_id)
    console(render_error_plot(series))
    console(render_table(
        ["size", "median err", "q1", "q3", "median duration (s)", "n"],
        series.rows(),
        title=f"{fig_id}: {FIGURES[fig_id].title} "
              f"(reps={harness.repetitions}, seed={harness.seed})",
    ))
    failures = harness.verify(fig_id, series)
    assert failures == [], "\n".join(failures)
    workload = harness.prediction_workload(fig_id)
    benchmark(lambda: harness.forecast.predict_transfers("g5k_test", workload))
