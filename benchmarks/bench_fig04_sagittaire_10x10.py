"""Figure 4 reproduction: sagittaire 10x10 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig04_sagittaire_10x10(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig4")
