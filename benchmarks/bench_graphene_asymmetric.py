"""§V-B1 second bullet: "predictions and actual transfers on graphene, from
50 sources to 30 destinations or from 30 sources to 50 destinations,
converge more nicely than 30 to 30 or 50 to 50."

The real endpoint collisions (a node receiving/sending two streams) raise
the measured times toward the over-predicted values, shrinking the error
plateau relative to the symmetric cases.
"""

from repro.analysis.tables import render_table
from repro.experiments.protocol import LARGE_SIZE_THRESHOLD

SIZES = (5.99e7, 7.74e8, 1e10)
REPS = 3


def test_asymmetric_cases_converge(harness, console, benchmark):
    plateaus = {}
    for fig_id in ("fig8", "fig9", "fig9-asym-30x50", "fig9-asym-50x30"):
        series = harness.series(fig_id, sizes=SIZES, repetitions=REPS)
        plateaus[fig_id] = series.plateau_error(LARGE_SIZE_THRESHOLD)
    console(render_table(
        ["experiment", "plateau error (log2)"],
        [(k, v) for k, v in plateaus.items()],
        title="graphene large-transfer plateaus (symmetric vs asymmetric)",
    ))
    worst_symmetric = plateaus["fig9"]
    assert plateaus["fig9-asym-30x50"] < worst_symmetric - 0.15
    assert plateaus["fig9-asym-50x30"] < worst_symmetric - 0.15
    workload = harness.prediction_workload("fig9-asym-30x50")
    benchmark(lambda: harness.forecast.predict_transfers("g5k_test", workload))
