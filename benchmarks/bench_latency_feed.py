"""§VI extension: "use automatic link latency measurements instead of
arbitrary values".

Calibrating the modeled backbone latencies from Smokeping-style probes must
improve the grid-scale small-transfer predictions (whose error is dominated
by the hardcoded 2.25 ms backbone latency vs the testbed's RENATER overlay
latencies)."""

from repro._util.stats import median
from repro.analysis.errors import log2_error
from repro.analysis.tables import render_table
from repro.core.latency_feed import LatencyFeed
from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import grid5000_dev_reference
from repro.metrology.collectors import MetricRegistry
from repro.metrology.ping import LatencyProber
from repro.experiments.protocol import ExperimentSpec, Topology, draw_transfer_pairs
from repro.testbed.measurement import run_transfers

SIZE = 1e5  # small transfers: where latency calibration matters
SPEC = ExperimentSpec("latfeed", Topology.GRID_MULTI, 10, 10)

REPRESENTATIVES = {
    "lyon": "sagittaire-1.lyon.grid5000.fr",
    "nancy": "griffon-1.nancy.grid5000.fr",
    "lille": "chti-1.lille.grid5000.fr",
}


def test_calibration_improves_small_grid_transfers(harness, console, benchmark):
    platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test")
    harness.forecast.register_platform("g5k_calibratable", platform)
    pairs = draw_transfer_pairs(SPEC, harness.seed)
    transfers = [(src, dst, SIZE) for src, dst in pairs]
    measured = [m.duration for m in
                run_transfers(harness.testbed, transfers, seed=harness.seed)]

    def abs_errors():
        forecasts = harness.forecast.predict_transfers(
            "g5k_calibratable", transfers
        )
        return [abs(log2_error(f.duration, m))
                for f, m in zip(forecasts, measured)]

    before = abs_errors()
    prober = LatencyProber(harness.testbed, MetricRegistry(), seed=harness.seed)
    feed = LatencyFeed(platform, prober)
    entries = feed.calibrate_backbone(REPRESENTATIVES)
    after = abs_errors()
    console(render_table(
        ["backbone link", "hardcoded (s)", "calibrated (s)", "measured RTT (s)"],
        [(e.link, e.old_latency, e.new_latency, e.measured_rtt)
         for e in entries],
        title="§VI latency feed: backbone calibration",
    ))
    console(render_table(
        ["stage", "median |log2 err| at 0.1MB"],
        [("hardcoded 2.25ms", median(before)), ("calibrated", median(after))],
    ))
    assert median(after) < median(before)
    benchmark(lambda: feed._backbone_link(
        REPRESENTATIVES["lyon"], REPRESENTATIVES["nancy"]
    ))
