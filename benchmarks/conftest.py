"""Shared bench fixtures.

Each figure bench (a) runs the paper's experiment for that figure on the
testbed + predictor (cached per session, since the summary bench pools all
of them), (b) prints the paper-style series, (c) asserts the shape checks
from :mod:`repro.experiments.figures`, and (d) benchmarks the *online*
component — the PNFS prediction request for that figure's workload — which
is the latency the paper cares about for scheduling (§IV-C2).

Environment knobs: ``REPRO_REPS`` (default 5; the paper used 10) and
``REPRO_SEED``.
"""

from __future__ import annotations

import pytest

from _harness import FigureHarness


@pytest.fixture(scope="session")
def harness() -> FigureHarness:
    return FigureHarness()


@pytest.fixture()
def console(capfd):
    """Print through pytest's capture so tee'd bench output keeps tables."""

    def emit(text: str) -> None:
        with capfd.disabled():
            print(f"\n{text}")

    return emit
