"""Shared bench fixtures.

Each figure bench (a) runs the paper's experiment for that figure on the
testbed + predictor (cached per session, since the summary bench pools all
of them), (b) prints the paper-style series, (c) asserts the shape checks
from :mod:`repro.experiments.figures`, and (d) benchmarks the *online*
component — the PNFS prediction request for that figure's workload — which
is the latency the paper cares about for scheduling (§IV-C2).

Environment knobs: ``REPRO_REPS`` (default 5; the paper used 10),
``REPRO_SEED``, and ``REPRO_BENCH_OUT`` (trajectory output directory,
default ``benchmarks/results`` — see :mod:`_trajectory`).
"""

from __future__ import annotations

from pathlib import Path

import pytest

import _trajectory
from _harness import FigureHarness


class TrajectoryPlugin:
    """Emits one ``BENCH_<name>.json`` per bench module at session end.

    Registered unconditionally so every bench run — timed, smoke, or a
    single-file local loop — leaves a machine-readable trace; benches add
    their own measurements through the ``trajectory`` fixture."""

    def __init__(self) -> None:
        self.recorder = _trajectory.TrajectoryRecorder()

    def pytest_runtest_logreport(self, report) -> None:
        finished_call = report.when == "call"
        skipped_in_setup = report.when == "setup" and report.outcome != "passed"
        if not (finished_call or skipped_in_setup):
            return
        bench = _trajectory.bench_name_from_nodeid(report.nodeid)
        if bench is None:
            return
        test_name = report.nodeid.split("::", 1)[-1]
        self.recorder.add_case(bench, test_name, report.outcome,
                               report.duration)

    def pytest_sessionfinish(self, session, exitstatus) -> None:
        self.recorder.harvest_benchmarks(
            getattr(session.config, "_benchmarksession", None))
        self.recorder.flush()


def pytest_configure(config) -> None:
    plugin = TrajectoryPlugin()
    config._trajectory_plugin = plugin
    config.pluginmanager.register(plugin, "bench-trajectory")


@pytest.fixture(scope="session")
def harness() -> FigureHarness:
    return FigureHarness()


@pytest.fixture()
def trajectory(request):
    """Record a named metric into this bench's ``BENCH_<name>.json``.

    Usage: ``trajectory("fig5", full_ms=..., incremental_ms=...,
    speedup=..., transfers=...)``."""
    plugin = request.config._trajectory_plugin
    bench = _trajectory.bench_name(Path(str(request.node.path)).name)

    def record(name: str, **values) -> None:
        plugin.recorder.add_metric(bench, name, values)

    return record


@pytest.fixture()
def console(capfd):
    """Print through pytest's capture so tee'd bench output keeps tables."""

    def emit(text: str) -> None:
        with capfd.disabled():
            print(f"\n{text}")

    return emit
