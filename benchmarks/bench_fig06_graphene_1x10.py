"""Figure 6 reproduction: graphene 1x10 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig06_graphene_1x10(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig6")
