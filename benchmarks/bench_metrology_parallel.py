"""Serial vs. parallel probe fan-out in the metrology feed.

A platform with hundreds of monitored links cannot afford serial probe
cycles: each bandwidth probe is one fluid simulation, and the cycle's
wall-clock is their sum.  ``MetrologyFeed(workers=N)`` fans the probes out
over a pool of long-lived worker processes holding a resident testbed copy
(per-chunk link-state overrides track mid-run mutations).  This bench runs
the same probe cycles both ways on a large star testbed and asserts:

- **determinism** — per-link RRD contents (both metric series) are
  bit-identical between the serial and parallel feeds (always, including
  smoke mode: probe-flow seeds derive from probe indices, not execution
  order, and RRD writes stay in the parent);
- **throughput** — ≥ 2x probe-cycle throughput on 4 workers (only on
  machines with ≥ 4 cores and outside smoke mode, where wall-clock ratios
  mean something).
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import render_table
from repro.metrology.demo import COLLECTOR, STAR_NAME, build_star_testbed
from repro.metrology.feed import MetrologyFeed, MonitoredLink

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
#: The acceptance shape is a ≥200-link star; smoke keeps tier-1 fast.
N_LINKS = 16 if SMOKE else 200
WORKERS = 2 if SMOKE else 4
CYCLES = 2 if SMOKE else 3
MIN_SPEEDUP = 2.0
SEED = 11
PERIOD = 15.0
#: Small probes keep the fluid simulations short but real.
PROBE_BYTES = 2e6


def build_feed(workers: int) -> MetrologyFeed:
    testbed = build_star_testbed(N_LINKS)
    monitors = [
        MonitoredLink(f"{STAR_NAME}-{i}-link", f"{STAR_NAME}-{i}", COLLECTOR)
        for i in range(1, N_LINKS + 1)
    ]
    return MetrologyFeed(testbed, monitors, period=PERIOD, seed=SEED,
                         probe_bytes=PROBE_BYTES, workers=workers)


def timed_cycles(feed: MetrologyFeed, cycles: int) -> float:
    t0 = time.perf_counter()
    for _ in range(cycles):
        feed.poll_once()
    return time.perf_counter() - t0


def test_parallel_probe_fanout_speedup_and_bit_identity(console, benchmark):
    serial = build_feed(0)
    with build_feed(WORKERS) as parallel:
        # one untimed cycle first: the parallel feed forks its pool lazily,
        # and pool start-up is a one-time cost, not per-cycle throughput
        serial.poll_once()
        parallel.poll_once()
        serial_dt = timed_cycles(serial, CYCLES)
        parallel_dt = timed_cycles(parallel, CYCLES)

        # bit-identical RRD contents, independent of worker count
        assert serial.clock == parallel.clock
        for monitor in serial.monitors:
            for metric in ("bandwidth", "latency"):
                ours = serial.rrd(monitor.link, metric)
                theirs = parallel.rrd(monitor.link, metric)
                assert ours.last_update == theirs.last_update
                assert (ours.fetch(0.0, serial.clock)
                        == theirs.fetch(0.0, parallel.clock)), (
                    f"{monitor.link}/{metric} diverged between serial and "
                    f"parallel probing"
                )

        speedup = serial_dt / parallel_dt
        probes = N_LINKS * CYCLES
        console(render_table(
            ["metric", "serial", f"parallel ({WORKERS} workers)"],
            [
                ("wall time (s)", serial_dt, parallel_dt),
                ("probe cycles/s", CYCLES / serial_dt, CYCLES / parallel_dt),
                ("link probes/s", probes / serial_dt, probes / parallel_dt),
                ("speedup", 1.0, speedup),
            ],
            title=f"probe fan-out over star({N_LINKS}): {speedup:.2f}x on "
                  f"{WORKERS} workers ({os.cpu_count()} cores available)",
        ))

        cores = os.cpu_count() or 1
        if SMOKE:
            console(f"smoke mode — speedup {speedup:.2f}x reported, "
                    f"≥{MIN_SPEEDUP}x not asserted")
        elif cores < 4:
            console(f"only {cores} cores — speedup {speedup:.2f}x reported, "
                    f"≥{MIN_SPEEDUP}x needs ≥4 cores to be meaningful")
        else:
            assert speedup >= MIN_SPEEDUP, (
                f"parallel probe cycles only {speedup:.2f}x faster than "
                f"serial on {WORKERS} workers (required ≥{MIN_SPEEDUP}x)"
            )

        benchmark(parallel.poll_once)
