"""Machine-readable bench trajectory: one ``BENCH_<name>.json`` per bench.

Every ``benchmarks/bench_*.py`` module that runs (even in smoke mode) emits a
JSON file recording where and when it ran (machine, git revision, python),
which tests ran and how long they took, and any named metrics the bench
recorded through the ``trajectory`` fixture (event-loop timings, speedup
ratios).  The files accumulate in ``benchmarks/results/`` — committed per PR,
they form the performance trajectory of the kernel across the repo's history,
and ``tools/check_bench_trajectory.py`` gates schema, presence and speedup
regressions against them.

Output directory: ``benchmarks/results`` by default, overridden by the
``REPRO_BENCH_OUT`` environment variable (the smoke runner points it at a
scratch directory so tier-1 never dirties the committed trajectory).

Every flush also rewrites ``BENCH_trajectory_summary.json`` — an aggregate
roll-up of the per-bench headline speedups plus the git revision, built
from every ``BENCH_<name>.json`` present in the output directory (see
:func:`summarize`).  The summary is the one file to read (or diff across
PRs) for the repo's performance trajectory at a glance.

Schema (``"schema": 1``)::

    {
      "schema": 1,
      "bench": "incremental_solver",        # module name minus bench_/.py
      "machine": "<hostname>",
      "platform": "<platform.platform()>",
      "python": "3.12.1",
      "git_rev": "<commit sha or null>",
      "smoke": false,                       # REPRO_SMOKE was set
      "created_unix": 1720000000.0,
      "cases": [                            # every test in the module
        {"name": "test_x", "outcome": "passed", "duration_s": 1.25}
      ],
      "metrics": {                          # bench-recorded measurements
        "fig5": {"full_ms": 91.2, "incremental_ms": 24.8,
                 "speedup": 3.67, "transfers": 30}
      }
    }
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

SCHEMA_VERSION = 1
BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_OUT = BENCH_DIR / "results"
FILE_PREFIX = "BENCH_"

#: Aggregate roll-up written next to the per-bench files on every flush.
SUMMARY_FILENAME = f"{FILE_PREFIX}trajectory_summary.json"


def output_dir() -> Path:
    """Where trajectory files go: ``REPRO_BENCH_OUT`` or the committed dir."""
    override = os.environ.get("REPRO_BENCH_OUT")
    return Path(override) if override else DEFAULT_OUT


def bench_name(module_filename: str) -> Optional[str]:
    """``bench_incremental_solver.py`` → ``incremental_solver``.

    Returns ``None`` for files that are not bench modules (conftest,
    helpers), so callers can skip them."""
    stem = Path(module_filename).name
    if not (stem.startswith("bench_") and stem.endswith(".py")):
        return None
    return stem[len("bench_"):-len(".py")]


def bench_name_from_nodeid(nodeid: str) -> Optional[str]:
    """The bench name of a pytest nodeid (``.../bench_x.py::test_y``)."""
    return bench_name(nodeid.split("::", 1)[0])


def trajectory_filename(name: str) -> str:
    return f"{FILE_PREFIX}{name}.json"


def git_rev() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=BENCH_DIR,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def headline_speedups(doc: dict) -> dict:
    """Every metric in a trajectory doc that carries a numeric speedup."""
    speedups = {}
    for name, values in (doc.get("metrics") or {}).items():
        if isinstance(values, dict) and isinstance(
                values.get("speedup"), (int, float)) \
                and not isinstance(values["speedup"], bool):
            speedups[name] = float(values["speedup"])
    return speedups


def summarize(out_dir: Path) -> dict:
    """Aggregate summary of every ``BENCH_<name>.json`` in ``out_dir``.

    One entry per bench: its per-metric speedups and the headline (max)
    speedup, or ``null`` for benches that record no speedup metric.  The
    git revision stamps which commit the trajectory belongs to, so a
    summary diff across PRs reads as a performance changelog.
    """
    benches = {}
    for path in sorted(Path(out_dir).glob(f"{FILE_PREFIX}*.json")):
        if path.name == SUMMARY_FILENAME:
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # schema problems are the trajectory gate's job
        if not isinstance(doc, dict) or not isinstance(doc.get("bench"), str):
            continue
        speedups = headline_speedups(doc)
        benches[doc["bench"]] = {
            "headline_speedup": max(speedups.values()) if speedups else None,
            "speedups": speedups,
            "smoke": bool(doc.get("smoke", False)),
        }
    return {
        "schema": SCHEMA_VERSION,
        "kind": "trajectory_summary",
        "git_rev": git_rev(),
        "created_unix": time.time(),
        "benches": benches,
    }


def write_summary(out_dir: Path) -> Path:
    """Write (or rewrite) the aggregate summary for ``out_dir``."""
    path = Path(out_dir) / SUMMARY_FILENAME
    path.write_text(
        json.dumps(summarize(out_dir), indent=1, sort_keys=True) + "\n")
    return path


class TrajectoryRecorder:
    """Collects per-bench cases and metrics; flushes one JSON per bench."""

    def __init__(self, out_dir: Optional[Path] = None) -> None:
        self.out_dir = Path(out_dir) if out_dir is not None else output_dir()
        self._cases: dict[str, list[dict]] = {}
        self._metrics: dict[str, dict[str, dict]] = {}

    def add_case(self, bench: str, test_name: str, outcome: str,
                 duration_s: float) -> None:
        self._cases.setdefault(bench, []).append({
            "name": test_name,
            "outcome": outcome,
            "duration_s": float(duration_s),
        })

    def add_metric(self, bench: str, name: str, values: dict) -> None:
        """Record one named measurement (timings, ratios, counts)."""
        self._metrics.setdefault(bench, {})[name] = dict(values)

    def harvest_benchmarks(self, benchmark_session: object) -> None:
        """Fold pytest-benchmark stats (when timing ran) into the metrics."""
        benchmarks = getattr(benchmark_session, "benchmarks", None) or ()
        for bench_info in benchmarks:
            fullname = getattr(bench_info, "fullname", "") or ""
            module = bench_name_from_nodeid(fullname)
            stats = getattr(bench_info, "stats", None)
            if module is None or stats is None:
                continue
            try:
                self.add_metric(module, f"timing:{bench_info.name}", {
                    "mean_s": float(stats.mean),
                    "min_s": float(stats.min),
                    "rounds": int(stats.rounds),
                })
            except (AttributeError, TypeError, ValueError):
                continue  # timing disabled or partial stats: nothing to record

    def payload(self, bench: str) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "bench": bench,
            "machine": socket.gethostname(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "git_rev": git_rev(),
            "smoke": bool(os.environ.get("REPRO_SMOKE")),
            "created_unix": time.time(),
            "cases": self._cases.get(bench, []),
            "metrics": self._metrics.get(bench, {}),
        }

    def flush(self) -> list[Path]:
        """Write one ``BENCH_<name>.json`` per bench seen, then refresh the
        aggregate ``BENCH_trajectory_summary.json`` from everything in the
        output directory; returns the written paths (summary last)."""
        benches = sorted(set(self._cases) | set(self._metrics))
        if not benches:
            return []
        self.out_dir.mkdir(parents=True, exist_ok=True)
        written = []
        for bench in benches:
            path = self.out_dir / trajectory_filename(bench)
            path.write_text(
                json.dumps(self.payload(bench), indent=1, sort_keys=True)
                + "\n"
            )
            written.append(path)
        written.append(write_summary(self.out_dir))
        return written
