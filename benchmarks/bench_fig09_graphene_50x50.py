"""Figure 9 reproduction: graphene 50x50 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig09_graphene_50x50(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig9")
