"""§II/§III motivation: simulation-driven forecasting vs NWS-style
time-series forecasting under concurrency.

NWS forecasts each transfer from per-pair probe history, so a *planned* set
of concurrent transfers sharing bottlenecks is invisible to it; PNFS
simulates the set as a whole.  The paper's reason to build Pilgrim."""

from repro._util.stats import median
from repro.analysis.errors import log2_error
from repro.analysis.tables import render_table
from repro.experiments.protocol import ExperimentSpec, Topology, draw_transfer_pairs
from repro.nws.api import NwsForecastService
from repro.testbed.measurement import run_transfers

SIZE = 1e9
SPEC = ExperimentSpec("nws-cmp", Topology.CLUSTER, 10, 2, cluster="graphene")


def test_pnfs_beats_nws_under_contention(harness, console, benchmark):
    pairs = draw_transfer_pairs(SPEC, harness.seed)
    transfers = [(src, dst, SIZE) for src, dst in pairs]
    measured = [m.duration for m in
                run_transfers(harness.testbed, transfers, seed=harness.seed)]

    pnfs = [f.duration for f in
            harness.forecast.predict_transfers("g5k_test", transfers)]
    nws_service = NwsForecastService(harness.testbed, seed=harness.seed,
                                     warmup_probes=8)
    nws = nws_service.predict_transfers(transfers)

    pnfs_err = [abs(log2_error(p, m)) for p, m in zip(pnfs, measured)]
    nws_err = [abs(log2_error(p, m)) for p, m in zip(nws, measured)]
    console(render_table(
        ["forecaster", "median |log2 err|", "worst |log2 err|"],
        [("PNFS (simulation)", median(pnfs_err), max(pnfs_err)),
         ("NWS (probe time-series)", median(nws_err), max(nws_err))],
        title=f"10 concurrent 1GB transfers into 2 graphene nodes "
              f"(destination contention)",
    ))
    assert median(pnfs_err) < median(nws_err)
    benchmark(lambda: nws_service.predict_transfers(transfers))
