"""Figure 10 reproduction: grid 10x30 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig10_grid_10x30(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig10")
