"""§V-A platform ablation: "we have found that all predictions based on
g5k_test are better" than g5k_cabinets.

Re-runs the fig5/fig8/fig10 workloads against both platform descriptions at
a reduced sweep and compares the pooled median absolute errors.
"""

from repro._util.stats import median
from repro.analysis.tables import render_table

WORKLOADS = ("fig5", "fig8", "fig10")
SIZES = (4.64e6, 2.15e8, 1e10)
REPS = 3


def pooled_abs_errors(harness, platform_name):
    errors = []
    for fig_id in WORKLOADS:
        series = harness.series(fig_id, platform_name=platform_name,
                                sizes=SIZES, repetitions=REPS)
        for point in series.points:
            errors.extend(abs(e) for e in point.errors)
    return errors


def test_g5k_test_beats_cabinets(harness, console, benchmark):
    test_errors = pooled_abs_errors(harness, "g5k_test")
    cab_errors = pooled_abs_errors(harness, "g5k_cabinets")
    rows = [
        ("g5k_test", median(test_errors), len(test_errors)),
        ("g5k_cabinets", median(cab_errors), len(cab_errors)),
    ]
    console(render_table(
        ["platform", "median |log2 err|", "n"], rows,
        title=f"§V-A ablation over {'/'.join(WORKLOADS)} workloads",
    ))
    assert median(test_errors) < median(cab_errors)
    workload = harness.prediction_workload("fig8")
    benchmark(lambda: harness.forecast.predict_transfers("g5k_cabinets", workload))
