"""§V-B1 first bullet ablation: "We think it's not caused by the lack of
modelization of the network equipment capacities, since it would cause the
predictions to be lower than measures."

Enabling the documented switch backplane capacities (absent from the
paper's generated platforms) must NOT shrink the graphene ≥30-flow
over-prediction: backplanes only make predictions *slower*, and at these
loads they are far from saturated anyway.
"""

import pytest

from repro.analysis.tables import render_table
from repro.experiments.environment import g5k_test_with_equipment_limits
from repro.experiments.figures import FIGURES
from repro.experiments.protocol import LARGE_SIZE_THRESHOLD
from repro.experiments.runner import run_experiment

SIZES = (5.99e7, 7.74e8, 1e10)
REPS = 3


def test_equipment_limits_do_not_explain_the_factor(harness, console, benchmark):
    harness.forecast.register_platform(
        "g5k_test_limits", g5k_test_with_equipment_limits()
    )
    base = harness.series("fig8", sizes=SIZES, repetitions=REPS)
    limited = run_experiment(
        FIGURES["fig8"].spec, harness.forecast, harness.testbed,
        platform_name="g5k_test_limits", seed=harness.seed,
        repetitions=REPS, sizes=SIZES,
    )
    base_plateau = base.plateau_error(LARGE_SIZE_THRESHOLD)
    limited_plateau = limited.plateau_error(LARGE_SIZE_THRESHOLD)
    console(render_table(
        ["platform", "fig8 plateau error"],
        [("no equipment limits (paper)", base_plateau),
         ("with backplane limits", limited_plateau)],
        title="§V-B1 ablation: equipment limits cannot explain the factor",
    ))
    # the over-prediction must persist (and not decrease materially)
    assert limited_plateau > 0.0
    assert limited_plateau >= base_plateau - 0.05
    workload = harness.prediction_workload("fig8")
    benchmark(
        lambda: harness.forecast.predict_transfers("g5k_test_limits", workload)
    )
