"""Gateway under load: 1k+ keep-alive clients, SLOs, sheds, epoch bumps.

The headline bench for the sharded serving gateway.  An asyncio load
generator (one thread, one persistent connection per client) hammers
``POST /pilgrim/predict_transfers`` over a fleet of star platforms and the
bench asserts the gateway's whole contract:

- **correctness** — every 200 answer, under any concurrency, is
  bit-identical to the serial ground truth simulated before any server
  existed (caches are off, so every answer is a real simulation);
- **throughput** — the sharded gateway sustains ≥ 2x the single-process
  ``ThreadingHTTPServer`` throughput on the same workload (asserted on
  ≥ 4-core hosts where shard processes actually get cores; reported
  otherwise);
- **scale** — a sustained phase with 1000+ concurrent keep-alive clients
  completes with zero dropped responses (the swarm sits below the
  admission limit), zero transport errors, and p50/p99 within bounds;
- **admission** — against a deliberately tiny in-flight budget the
  overload is shed as clean ``503 + Retry-After`` (every request gets an
  answer: completed + shed equals offered, nothing hangs);
- **epoch propagation** — a link recalibration in the bench process while
  the swarm is mid-flight: every observed answer matches either the old
  or the new ground truth exactly, and after the load drains the gateway
  answers with the new truth.

Smoke mode (``REPRO_SMOKE``) scales every phase down to seconds and skips
the wall-clock assertions; correctness is asserted always.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.analysis.tables import render_table
from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.core.rest.json_codec import dumps
from repro.serving.factories import star_fleet_factory, star_fleet_service
from repro.serving.gateway import GatewayConfig, ShardedGateway
from repro.serving.gateway.loadgen import LoadQuery, run_load

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
N_PLATFORMS = 4 if SMOKE else 8
N_HOSTS = 8
N_SHARDS = 2 if SMOKE else max(2, min(4, os.cpu_count() or 1))

#: Phase sizes (clients, requests per client).
BASELINE_LOAD = (8, 3) if SMOKE else (128, 4)
SUSTAINED_LOAD = (24, 3) if SMOKE else (1100, 3)
ADMISSION_LOAD = (16, 3) if SMOKE else (64, 4)
EPOCH_LOAD = (8, 6) if SMOKE else (64, 8)

MIN_SPEEDUP = 2.0          # gateway vs. single process, ≥4 cores only
P50_BOUND_MS = 5_000.0     # closed-loop queueing at 1k+ clients included
P99_BOUND_MS = 20_000.0


def fleet_queries() -> tuple[list[LoadQuery], list[list[dict]]]:
    """One POST query per platform + its serial ground-truth answer."""
    service = star_fleet_service(N_PLATFORMS, N_HOSTS)
    queries, truths = [], []
    for pi, name in enumerate(sorted(service.platform_names())):
        hosts = [h.name for h in service.platform(name).hosts()]
        transfers = [
            (hosts[pi % N_HOSTS], hosts[(pi + 1) % N_HOSTS], 5e7),
            (hosts[(pi + 2) % N_HOSTS], hosts[(pi + 3) % N_HOSTS],
             1e8 + pi * 1e7),
        ]
        body = dumps({"transfers": [[s, d, z] for s, d, z in transfers]})
        queries.append(LoadQuery(
            "POST", f"/pilgrim/predict_transfers/{name}",
            body.encode("utf-8")))
        truths.append([f.to_json() for f in
                       service.predict_transfers(name, transfers)])
    return queries, truths


def assert_bit_identical(report, truths, phase: str) -> None:
    """Every distinct 200 body per query equals the serial ground truth."""
    for qi, distinct in report.bodies.items():
        assert len(distinct) == 1, (
            f"{phase}: query {qi} produced {len(distinct)} distinct answers")
        assert json.loads(next(iter(distinct))) == truths[qi], (
            f"{phase}: query {qi} diverged from serial ground truth")


def run_single_process_baseline(queries, truths, clients, requests):
    """The same swarm against the classic threaded server (cache off)."""
    service = star_fleet_service(N_PLATFORMS, N_HOSTS)
    pilgrim = Pilgrim(platforms={name: service.platform(name)
                                 for name in service.platform_names()},
                      model=service.model)
    pilgrim.enable_serving(window=0.0, cache_size=0)
    try:
        with pilgrim.serve() as server:
            host, port = server.address
            report = run_load(host, port, queries, clients=clients,
                              requests_per_client=requests)
    finally:
        pilgrim.disable_serving()
    assert report.errors == 0 and report.connect_failures == 0
    assert report.completed == clients * requests
    assert_bit_identical(report, truths, "baseline")
    return report


def test_gateway_load(console, trajectory, benchmark):
    queries, truths = fleet_queries()
    factory = star_fleet_factory(N_PLATFORMS, N_HOSTS)

    clients, requests = BASELINE_LOAD
    baseline = run_single_process_baseline(queries, truths, clients,
                                           requests)

    # -- throughput: sharded gateway vs. single process (caches off) -------------
    config = GatewayConfig(shards=N_SHARDS, window=0.0, cache_size=0)
    with ShardedGateway(factory, config) as gateway:
        host, port = gateway.address
        platform_split = gateway.ring.distribution(
            sorted(gateway.service.platform_names()))
        gateway_report = run_load(host, port, queries, clients=clients,
                                  requests_per_client=requests)
        assert gateway_report.errors == 0
        assert gateway_report.connect_failures == 0
        assert gateway_report.shed == 0
        assert gateway_report.completed == clients * requests
        assert_bit_identical(gateway_report, truths, "gateway")

        # -- scale: the 1k+ keep-alive swarm, still below the admission limit ----
        clients, requests = SUSTAINED_LOAD
        assert clients < config.max_inflight + config.queue_depth
        sustained = run_load(host, port, queries, clients=clients,
                             requests_per_client=requests)
        assert sustained.connect_failures == 0, (
            f"{sustained.connect_failures} clients could not connect")
        assert sustained.errors == 0
        assert sustained.shed == 0, (
            f"{sustained.shed} sheds below the admission limit")
        assert sustained.completed == clients * requests, (
            f"dropped {clients * requests - sustained.completed} responses")
        assert_bit_identical(sustained, truths, "sustained")

        with RestClient(gateway.url) as rest:
            stats = rest.stats()
        assert stats["gateway"]["admission"]["shed"] == 0
        assert all(stats["gateway"]["shard_alive"])
        assert sum(stats["gateway"]["shard_dispatched"]) >= (
            sustained.completed + gateway_report.completed)

    speedup = (gateway_report.throughput_rps / baseline.throughput_rps
               if baseline.throughput_rps else 0.0)
    p50, p99 = sustained.percentile_ms(0.50), sustained.percentile_ms(0.99)

    # -- admission: a tiny budget must shed cleanly, never hang ------------------
    tiny = GatewayConfig(shards=2, window=0.0, cache_size=0,
                         max_inflight=2, queue_depth=2, retry_after_s=0.5)
    clients, requests = ADMISSION_LOAD
    with ShardedGateway(factory, tiny) as gateway:
        host, port = gateway.address
        overload = run_load(host, port, queries, clients=clients,
                            requests_per_client=requests)
        assert overload.errors == 0 and overload.connect_failures == 0
        assert overload.completed + overload.shed == clients * requests, (
            "an offered request neither completed nor shed — a hang")
        assert overload.shed > 0, (
            f"{clients} clients against a {tiny.max_inflight}+"
            f"{tiny.queue_depth} budget never shed")
        assert overload.retry_after_seen == {f"{tiny.retry_after_s:g}"}
        assert_bit_identical(overload, truths, "overload")
        with RestClient(gateway.url) as rest:
            assert rest.stats()["gateway"]["admission"]["shed"] \
                == overload.shed

    # -- epoch propagation under live load ---------------------------------------
    config = GatewayConfig(shards=2, window=0.0, cache_size=0)
    clients, requests = EPOCH_LOAD
    with ShardedGateway(factory, config) as gateway:
        host, port = gateway.address
        target = sorted(gateway.service.platform_names())[0]
        link = gateway.service.platform(target).links()[0]
        original = link.bandwidth

        def mutate_mid_flight():
            time.sleep(0.05)
            link.bandwidth = original / 2  # the live recalibration

        with ThreadPoolExecutor(max_workers=1) as pool:
            mutation = pool.submit(mutate_mid_flight)
            live = run_load(host, port, queries, clients=clients,
                            requests_per_client=requests)
            mutation.result()

        new_service = star_fleet_service(N_PLATFORMS, N_HOSTS)
        new_service.platform(target).link(link.name).bandwidth = original / 2
        new_truths = [
            [f.to_json() for f in new_service.predict_transfers(
                name, [(s, d, z) for s, d, z in
                       json.loads(q.body)["transfers"]])]
            for name, q in zip(sorted(new_service.platform_names()), queries)
        ]

        assert live.errors == 0 and live.shed == 0
        assert live.completed == clients * requests
        for qi, distinct in live.bodies.items():
            for body in distinct:
                answer = json.loads(body)
                assert answer in (truths[qi], new_truths[qi]), (
                    f"query {qi} answered neither the old nor the new "
                    f"ground truth during the epoch transition")

        # once the load drains, every answer is the new truth
        with RestClient(gateway.url) as rest:
            for name, new_truth in zip(
                    sorted(new_service.platform_names()), new_truths):
                transfers = [tuple(t) for t in json.loads(
                    queries[sorted(new_service.platform_names())
                            .index(name)].body)["transfers"]]
                assert rest.post_predict_transfers(name, transfers) \
                    == new_truth
            epoch = rest.stats()["gateway"]["epoch"]
        assert epoch["syncs"] >= 1
        assert epoch["parent"] == epoch["synced"]

    # -- report + trajectory -----------------------------------------------------
    console(render_table(
        ["metric", "single process", f"gateway x{N_SHARDS} shards"],
        [
            ("throughput (req/s)", baseline.throughput_rps,
             gateway_report.throughput_rps),
            ("speedup", 1.0, speedup),
            ("p50 (ms)", baseline.percentile_ms(0.50),
             gateway_report.percentile_ms(0.50)),
            ("p99 (ms)", baseline.percentile_ms(0.99),
             gateway_report.percentile_ms(0.99)),
        ],
        title=f"gateway load, {N_PLATFORMS} platforms over {N_SHARDS} "
              f"shards (split {sorted(platform_split.values())}); "
              f"sustained {sustained.clients} clients: "
              f"{sustained.throughput_rps:.0f} req/s, "
              f"p50 {p50:.0f} ms, p99 {p99:.0f} ms; "
              f"overload shed {overload.shed}/{overload.clients * ADMISSION_LOAD[1]}",
    ))
    trajectory(
        "gateway_load",
        shards=N_SHARDS,
        platforms=N_PLATFORMS,
        cores=os.cpu_count(),
        baseline_rps=baseline.throughput_rps,
        gateway_rps=gateway_report.throughput_rps,
        speedup=speedup,
        sustained_clients=sustained.clients,
        sustained_completed=sustained.completed,
        sustained_rps=sustained.throughput_rps,
        sustained_p50_ms=p50,
        sustained_p99_ms=p99,
        overload_offered=overload.clients * ADMISSION_LOAD[1],
        overload_completed=overload.completed,
        overload_shed=overload.shed,
        epoch_syncs=epoch["syncs"],
    )

    if SMOKE:
        console(f"smoke mode — speedup {speedup:.2f}x and latency bounds "
                f"reported, not asserted")
    else:
        assert p50 <= P50_BOUND_MS, f"sustained p50 {p50:.0f} ms over bound"
        assert p99 <= P99_BOUND_MS, f"sustained p99 {p99:.0f} ms over bound"
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= MIN_SPEEDUP, (
                f"gateway only {speedup:.2f}x the single-process server "
                f"on a {os.cpu_count()}-core host (required "
                f"≥{MIN_SPEEDUP}x)")
        else:
            console(f"{os.cpu_count()}-core host — ≥{MIN_SPEEDUP}x "
                    f"throughput asserted on ≥4 cores only "
                    f"(measured {speedup:.2f}x)")

    # the benchmarked callable: one keep-alive burst against a live gateway
    with ShardedGateway(factory, GatewayConfig(shards=2, window=0.0)) as gw:
        host, port = gw.address
        benchmark(lambda: run_load(host, port, queries, clients=4,
                                   requests_per_client=2))
