"""Serial vs. parallel campaign execution.

The campaign executor fans sweep combinations out over a process pool with
per-combination seeds drawn from the same derivation chain the serial
engine uses (``ParamSweep.seeded_combinations``) and aggregates results in
sweep order — so the parallel path must be **bit-identical** to the serial
one, just faster.  This bench runs a mid-size slice of the §V-A campaign
both ways and asserts:

- identical per-combination rows and identical pooled §V-B statistics
  (always, including smoke mode — determinism is a correctness signal), and
- ≥ 2x wall-clock speedup on 4 workers (only on machines with ≥ 4 cores and
  outside smoke mode, where wall-clock ratios mean something).
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.experiments.campaign import (
    campaign_summary,
    campaign_sweep,
    run_campaign,
)

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
WORKERS = 2 if SMOKE else 4
MIN_SPEEDUP = 2.0
COUNTS = (1, 10) if SMOKE else (10, 30)
SIZES = (5.99e7,) if SMOKE else (5.99e7, 7.74e8, 1e10)
REPS = 1


def run_both() -> tuple[dict, dict, float, float]:
    forecast, network = environment.forecast_service(), environment.testbed()
    seed = environment.root_seed()

    t0 = time.perf_counter()
    serial = run_campaign(
        forecast, network, sweep=campaign_sweep(counts=COUNTS), seed=seed,
        repetitions=REPS, sizes=SIZES,
    )
    serial_dt = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_campaign(
        forecast, network, sweep=campaign_sweep(counts=COUNTS), seed=seed,
        repetitions=REPS, sizes=SIZES, workers=WORKERS,
    )
    parallel_dt = time.perf_counter() - t0
    return serial, parallel, serial_dt, parallel_dt


def test_parallel_campaign_speedup_and_equivalence(console, benchmark):
    serial, parallel, serial_dt, parallel_dt = run_both()

    # bit-identical results, independent of worker count and scheduling
    assert list(serial) == list(parallel)
    for cid in serial:
        assert serial[cid].rows() == parallel[cid].rows(), cid
    serial_stats = campaign_summary(serial)
    parallel_stats = campaign_summary(parallel)
    assert serial_stats == parallel_stats  # dataclass float equality: bitwise

    speedup = serial_dt / parallel_dt
    console(render_table(
        ["metric", "serial", f"parallel ({WORKERS} workers)"],
        [
            ("wall time (s)", serial_dt, parallel_dt),
            ("speedup", 1.0, speedup),
            ("combinations", len(serial), len(parallel)),
            ("large-transfer observations",
             serial_stats.n_observations, parallel_stats.n_observations),
        ],
        title=f"campaign slice {COUNTS}x{COUNTS}, {len(SIZES)} sizes: "
              f"{speedup:.2f}x on {WORKERS} workers "
              f"({os.cpu_count()} cores available)",
    ))

    cores = os.cpu_count() or 1
    if SMOKE:
        console(f"smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{MIN_SPEEDUP}x not asserted")
    elif cores < 4:
        console(f"only {cores} cores — speedup {speedup:.2f}x reported, "
                f"≥{MIN_SPEEDUP}x needs ≥4 cores to be meaningful")
    else:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel campaign only {speedup:.2f}x faster than serial on "
            f"{WORKERS} workers (required ≥{MIN_SPEEDUP}x)"
        )

    benchmark(lambda: campaign_summary(parallel))
