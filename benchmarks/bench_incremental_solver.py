"""Incremental vs. full re-solve: the event-loop speedup that motivates the
persistent :class:`~repro.simgrid.maxmin.SharingSystem` arena.

Workload: the 30x30 (fig5, sagittaire) and 50x50 (fig9, graphene) campaign
shapes with the full 10-point size sweep running concurrently — completions
arrive in waves, so the event loop re-shares bandwidth many times per run,
which is exactly the regime the paper's large campaigns (and the ROADMAP
30x30/50x50/60x60 figure benches) spend their time in.

Asserted: ≥3x speedup on the 30x30 shape, plus bitwise-stable summary
statistics (both modes' per-transfer durations agree to 12 significant
digits; on the disjoint 30x30 shape they are bit-identical).
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.experiments.figures import FIGURES
from repro.experiments.protocol import TRANSFER_SIZES, draw_transfer_pairs
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
REPEATS = 10 if SMOKE else 40
ROUNDS = 3 if SMOKE else 6
MODEL = LV08()


def campaign_workload(fig_id: str) -> list[tuple[str, str, float]]:
    pairs = draw_transfer_pairs(FIGURES[fig_id].spec, environment.root_seed())
    return [
        (src, dst, TRANSFER_SIZES[i % len(TRANSFER_SIZES)])
        for i, (src, dst) in enumerate(pairs)
    ]


def run_once(platform, workload, full_resolve: bool) -> Simulation:
    sim = Simulation(platform, MODEL, full_resolve=full_resolve)
    sim.simulate_transfers(workload)
    return sim


def durations(platform, workload, full_resolve: bool) -> list[float]:
    sim = Simulation(platform, MODEL, full_resolve=full_resolve)
    return [c.duration for c in sim.simulate_transfers(workload)]


def best_of(platform, workload, full_resolve: bool) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            run_once(platform, workload, full_resolve)
        best = min(best, (time.perf_counter() - t0) / REPEATS)
    return best


def summary_statistics(values: list[float]) -> dict[str, str]:
    """Summary stats at the 12-significant-digit precision the report tables
    use; identical dicts == bitwise-stable summaries."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    return {
        "n": str(n),
        "min": f"{ordered[0]:.12g}",
        "median": f"{median:.12g}",
        "max": f"{ordered[-1]:.12g}",
        "mean": f"{sum(ordered) / n:.12g}",
    }


def compare_modes(fig_id: str, console, min_speedup: float) -> float:
    platform = environment.g5k_test_platform()
    workload = campaign_workload(fig_id)
    # warm route/spec caches so neither mode pays one-time setup
    run_once(platform, workload, True)
    run_once(platform, workload, False)

    full_durations = durations(platform, workload, True)
    inc_durations = durations(platform, workload, False)
    worst_rel = max(
        abs(a - b) / max(a, b) for a, b in zip(full_durations, inc_durations)
    )
    assert worst_rel <= 1e-9, (
        f"{fig_id}: allocations drifted between modes (max rel diff {worst_rel:.2e})"
    )
    full_stats = summary_statistics(full_durations)
    inc_stats = summary_statistics(inc_durations)
    assert full_stats == inc_stats, (
        f"{fig_id}: summary statistics not stable: {full_stats} vs {inc_stats}"
    )

    full_dt = best_of(platform, workload, True)
    inc_dt = best_of(platform, workload, False)
    speedup = full_dt / inc_dt
    sim = run_once(platform, workload, False)
    console(render_table(
        ["metric", "full_resolve", "incremental"],
        [
            ("event-loop time (ms)", full_dt * 1e3, inc_dt * 1e3),
            ("speedup", 1.0, speedup),
            ("max rel duration diff", 0.0, worst_rel),
        ],
        title=f"{fig_id} ({len(workload)} transfers, 10-size sweep): "
              f"{speedup:.2f}x — sharing {sim.sharing_stats}",
    ))
    if SMOKE:
        # smoke mode exists to prove the bench still runs; wall-clock ratios
        # on a loaded CI machine are not a correctness signal there
        console(f"{fig_id}: smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{min_speedup}x not asserted")
    else:
        assert speedup >= min_speedup, (
            f"{fig_id}: incremental solver only {speedup:.2f}x faster than "
            f"full_resolve (required ≥{min_speedup}x)"
        )
    return speedup


def test_incremental_speedup_30x30(console, benchmark):
    compare_modes("fig5", console, min_speedup=3.0)
    platform = environment.g5k_test_platform()
    workload = campaign_workload("fig5")
    benchmark(lambda: run_once(platform, workload, False))


def test_incremental_speedup_50x50(console, benchmark):
    # graphene's shared uplinks form one large component, so the incremental
    # win is structurally smaller than on the disjoint sagittaire shape —
    # assert it still clearly beats rebuilding from scratch
    compare_modes("fig9", console, min_speedup=1.2)
    platform = environment.g5k_test_platform()
    workload = campaign_workload("fig9")
    benchmark(lambda: run_once(platform, workload, False))
