"""Incremental vs. full re-solve: the event-loop speedup that motivates the
persistent :class:`~repro.simgrid.maxmin.SharingSystem` arena.

Workloads:

- the 30x30 (fig5, sagittaire) and 50x50 (fig9, graphene) campaign shapes
  with the full 10-point size sweep running concurrently — completions
  arrive in waves, so the event loop re-shares bandwidth many times per run,
- a 50x50-scale *disjoint-pair* shape (100-host star, 50 independent
  src→dst pairs, staggered arrivals): the many-small-components regime the
  vectorized batched kernel and the incremental arena are built for.  Full
  re-solve pays an O(live) from-scratch rebuild at every one of ~900 events
  while the incremental path re-solves only the touched pair.

Timed region is ``Simulation.run()`` only (the event loop); workload
construction is identical in both modes and excluded.

Asserted: ≥10x on the disjoint 50x50 shape and ≥3x on the 30x30 campaign
shape, plus 1e-9 equivalence between modes — including the scalar
(``vectorized=False``) arena path, which is pinned in every mode, smoke
included.
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.experiments.figures import FIGURES
from repro.experiments.protocol import TRANSFER_SIZES, draw_transfer_pairs
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
REPEATS = 10 if SMOKE else 40
ROUNDS = 3 if SMOKE else 6
# the disjoint-pair shape runs ~10x longer per repetition in full mode
REPEATS_LARGE = 2 if SMOKE else 6
ROUNDS_LARGE = 2 if SMOKE else 3
MODEL = LV08()


def campaign_workload(fig_id: str) -> list[tuple[str, str, float]]:
    pairs = draw_transfer_pairs(FIGURES[fig_id].spec, environment.root_seed())
    return [
        (src, dst, TRANSFER_SIZES[i % len(TRANSFER_SIZES)])
        for i, (src, dst) in enumerate(pairs)
    ]


def disjoint_events(n_pairs: int = 50, waves: int = 6,
                    horizon: float = 6.0) -> list[tuple[float, str, str, float]]:
    """Staggered transfers over ``n_pairs`` disjoint host pairs of a star.

    Pair ``i`` sends from host ``2i+1`` to host ``2i+2``; no two pairs share
    a link, so every transfer is its own max-min component.  Starts are
    staggered deterministically over ``horizon`` and sizes cycle through the
    campaign sweep with a pair-dependent offset so completions don't
    coincide — the event loop sees one small re-share per event at a
    steady-state live count of roughly ``n_pairs``.
    """
    events = []
    for wave in range(waves):
        for pair in range(n_pairs):
            src = f"disjoint-{2 * pair + 1}"
            dst = f"disjoint-{2 * pair + 2}"
            # 4x the campaign sizes: transfers outlive the stagger interval,
            # so the event loop sees the saturated steady state (most of the
            # 300 transfers live at once) where full_resolve's O(live)
            # rebuild per event dominates
            size = 4.0 * TRANSFER_SIZES[(pair * 7 + wave * 3) % len(TRANSFER_SIZES)]
            start = horizon * ((pair * waves + wave) % (n_pairs * waves)) / (
                n_pairs * waves
            )
            events.append((start, src, dst, size))
    return events


def disjoint_platform(n_pairs: int = 50):
    return build_star_cluster("disjoint", 2 * n_pairs)


def prepare_campaign(platform, workload, full_resolve: bool,
                     vectorized: bool = True) -> tuple[Simulation, list]:
    """Build a ready-to-run simulation with all transfers starting at t=0."""
    sim = Simulation(platform, MODEL, full_resolve=full_resolve,
                     vectorized=vectorized)
    comms = [sim.add_comm(src, dst, size) for src, dst, size in workload]
    return sim, comms


def prepare_staggered(platform, events, full_resolve: bool,
                      vectorized: bool = True) -> tuple[Simulation, list]:
    """Build a ready-to-run simulation with timer-scheduled transfer starts."""
    sim = Simulation(platform, MODEL, full_resolve=full_resolve,
                     vectorized=vectorized)
    comms: list = []
    for at, src, dst, size in events:
        sim.schedule(at, lambda s=src, d=dst, z=size: comms.append(
            sim.add_comm(s, d, z)))
    return sim, comms


def durations_of(prepared: tuple[Simulation, list]) -> list[float]:
    sim, comms = prepared
    sim.run()
    return [c.duration for c in comms]


def paired_best_of(make_full, make_inc, repeats: int = REPEATS,
                   rounds: int = ROUNDS) -> tuple[float, float]:
    """Best mean event-loop (``run()``) time per mode; setup stays untimed.

    The two modes are interleaved within every round so background load
    drift hits both sides equally — the speedup ratio stays meaningful even
    on a busy machine."""
    best_full = best_inc = float("inf")
    for _ in range(rounds):
        total_full = total_inc = 0.0
        for _ in range(repeats):
            sim, _ = make_full()
            t0 = time.perf_counter()
            sim.run()
            total_full += time.perf_counter() - t0
            sim, _ = make_inc()
            t0 = time.perf_counter()
            sim.run()
            total_inc += time.perf_counter() - t0
        best_full = min(best_full, total_full / repeats)
        best_inc = min(best_inc, total_inc / repeats)
    return best_full, best_inc


def summary_statistics(values: list[float]) -> dict[str, str]:
    """Summary stats at the 12-significant-digit precision the report tables
    use; identical dicts == bitwise-stable summaries."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0
    return {
        "n": str(n),
        "min": f"{ordered[0]:.12g}",
        "median": f"{median:.12g}",
        "max": f"{ordered[-1]:.12g}",
        "mean": f"{sum(ordered) / n:.12g}",
    }


def assert_durations_close(label: str, reference: list[float],
                           candidate: list[float]) -> float:
    assert len(reference) == len(candidate), (
        f"{label}: {len(reference)} vs {len(candidate)} transfers"
    )
    worst_rel = max(
        abs(a - b) / max(a, b) for a, b in zip(reference, candidate)
    )
    assert worst_rel <= 1e-9, (
        f"{label}: allocations drifted (max rel diff {worst_rel:.2e})"
    )
    return worst_rel


def compare_modes(fig_id: str, console, min_speedup: float,
                  record=None) -> float:
    platform = environment.g5k_test_platform()
    workload = campaign_workload(fig_id)
    # warm route/spec caches so neither mode pays one-time setup
    durations_of(prepare_campaign(platform, workload, True))
    durations_of(prepare_campaign(platform, workload, False))

    full_durations = durations_of(prepare_campaign(platform, workload, True))
    inc_durations = durations_of(prepare_campaign(platform, workload, False))
    scalar_durations = durations_of(
        prepare_campaign(platform, workload, False, vectorized=False)
    )
    worst_rel = assert_durations_close(
        f"{fig_id} full vs incremental", full_durations, inc_durations
    )
    # the scalar arena path is an always-pinned equivalence, smoke included
    assert_durations_close(
        f"{fig_id} vectorized vs scalar arena", inc_durations, scalar_durations
    )
    full_stats = summary_statistics(full_durations)
    inc_stats = summary_statistics(inc_durations)
    assert full_stats == inc_stats, (
        f"{fig_id}: summary statistics not stable: {full_stats} vs {inc_stats}"
    )

    full_dt, inc_dt = paired_best_of(
        lambda: prepare_campaign(platform, workload, True),
        lambda: prepare_campaign(platform, workload, False),
    )
    speedup = full_dt / inc_dt
    sim, _ = prepare_campaign(platform, workload, False)
    sim.run()
    console(render_table(
        ["metric", "full_resolve", "incremental"],
        [
            ("event-loop time (ms)", full_dt * 1e3, inc_dt * 1e3),
            ("speedup", 1.0, speedup),
            ("max rel duration diff", 0.0, worst_rel),
        ],
        title=f"{fig_id} ({len(workload)} transfers, 10-size sweep): "
              f"{speedup:.2f}x — sharing {sim.sharing_stats}",
    ))
    if record is not None:
        record(fig_id, full_ms=full_dt * 1e3, incremental_ms=inc_dt * 1e3,
               speedup=speedup, transfers=len(workload))
    if SMOKE:
        # smoke mode exists to prove the bench still runs; wall-clock ratios
        # on a loaded CI machine are not a correctness signal there
        console(f"{fig_id}: smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{min_speedup}x not asserted")
    else:
        assert speedup >= min_speedup, (
            f"{fig_id}: incremental solver only {speedup:.2f}x faster than "
            f"full_resolve (required ≥{min_speedup}x)"
        )
    return speedup


def compare_disjoint(console, min_speedup: float, record=None) -> float:
    n_pairs = 10 if SMOKE else 50
    waves = 3 if SMOKE else 6
    platform = disjoint_platform(n_pairs)
    events = disjoint_events(n_pairs, waves)
    durations_of(prepare_staggered(platform, events, True))  # warm caches

    full_durations = durations_of(prepare_staggered(platform, events, True))
    inc_durations = durations_of(prepare_staggered(platform, events, False))
    scalar_durations = durations_of(
        prepare_staggered(platform, events, False, vectorized=False)
    )
    worst_rel = assert_durations_close(
        "disjoint full vs incremental", full_durations, inc_durations
    )
    assert_durations_close(
        "disjoint vectorized vs scalar arena", inc_durations, scalar_durations
    )

    full_dt, inc_dt = paired_best_of(
        lambda: prepare_staggered(platform, events, True),
        lambda: prepare_staggered(platform, events, False),
        REPEATS_LARGE, ROUNDS_LARGE,
    )
    speedup = full_dt / inc_dt
    sim, _ = prepare_staggered(platform, events, False)
    sim.run()
    console(render_table(
        ["metric", "full_resolve", "incremental"],
        [
            ("event-loop time (ms)", full_dt * 1e3, inc_dt * 1e3),
            ("speedup", 1.0, speedup),
            ("max rel duration diff", 0.0, worst_rel),
        ],
        title=f"50x50 disjoint pairs ({len(events)} staggered transfers): "
              f"{speedup:.2f}x — sharing {sim.sharing_stats}",
    ))
    if record is not None:
        record("disjoint_50x50", full_ms=full_dt * 1e3,
               incremental_ms=inc_dt * 1e3, speedup=speedup,
               transfers=len(events))
    if SMOKE:
        console(f"disjoint: smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{min_speedup}x not asserted")
    else:
        assert speedup >= min_speedup, (
            f"disjoint 50x50: incremental solver only {speedup:.2f}x faster "
            f"than full_resolve (required ≥{min_speedup}x)"
        )
    return speedup


def test_incremental_speedup_30x30(console, benchmark, trajectory):
    compare_modes("fig5", console, min_speedup=3.0, record=trajectory)
    platform = environment.g5k_test_platform()
    workload = campaign_workload("fig5")
    benchmark(lambda: durations_of(prepare_campaign(platform, workload, False)))


def test_incremental_speedup_50x50(console, benchmark, trajectory):
    # graphene's shared uplinks form one large component, so the incremental
    # win is structurally smaller than on the disjoint sagittaire shape —
    # assert it still clearly beats rebuilding from scratch
    compare_modes("fig9", console, min_speedup=1.2, record=trajectory)
    platform = environment.g5k_test_platform()
    workload = campaign_workload("fig9")
    benchmark(lambda: durations_of(prepare_campaign(platform, workload, False)))


def test_incremental_speedup_50x50_disjoint(console, benchmark, trajectory):
    compare_disjoint(console, min_speedup=10.0, record=trajectory)
    platform = disjoint_platform()
    events = disjoint_events()
    benchmark(lambda: durations_of(prepare_staggered(platform, events, False)))
