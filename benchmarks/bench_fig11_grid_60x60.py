"""Figure 11 reproduction: grid 60x60 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig11_grid_60x60(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig11")
