"""Platform construction (Figures 1-2 structure + the §V-A size/time claim).

"g5k_test is less optimized than g5k_cabinets (in size and loading time),
because it does not abstract clusters and instead it enumerates all hosts."
"""

import pytest

from repro.analysis.tables import render_table
from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import grid5000_dev_reference, grid5000_stable_reference


def test_g5k_test_build(console, benchmark):
    dev = grid5000_dev_reference()
    platform = benchmark(lambda: to_simgrid_platform(dev, "g5k_test"))
    # Figure 1: three sites on a 10G backbone
    for site in ("lille", "lyon", "nancy"):
        assert platform.autonomous_system(f"AS_{site}")
    assert platform.link("renater-lyon-nancy").bandwidth == pytest.approx(1.25e9)
    # Figure 2: sagittaire flat (79 x 1G), graphene behind 4 x 10G uplinks
    assert sum(1 for h in platform.hosts() if "sagittaire" in h.name) == 79
    for g in range(1, 5):
        assert platform.link(f"sgraphene{g}-uplink").bandwidth == pytest.approx(1.25e9)
    console(f"g5k_test: {len(platform.hosts())} hosts, "
            f"{platform.total_route_table_entries()} route entries")


def test_g5k_cabinets_build(console, benchmark):
    stable = grid5000_stable_reference()
    platform = benchmark(lambda: to_simgrid_platform(stable, "g5k_cabinets"))
    assert len(platform.hosts()) == 463
    console(f"g5k_cabinets: {len(platform.hosts())} hosts, "
            f"{platform.total_route_table_entries()} route entries")


def test_size_comparison(console, benchmark):
    test_platform = to_simgrid_platform(grid5000_dev_reference(), "g5k_test")
    cabinets = to_simgrid_platform(grid5000_stable_reference(), "g5k_cabinets")
    rows = [
        ("g5k_test", test_platform.total_route_table_entries()),
        ("g5k_cabinets", cabinets.total_route_table_entries()),
    ]
    console(render_table(["platform", "route entries"], rows,
                         title="§V-A: g5k_test less optimized in size"))
    assert rows[0][1] > rows[1][1]
    benchmark(lambda: test_platform.route(
        "sagittaire-1.lyon.grid5000.fr", "graphene-144.nancy.grid5000.fr"
    ))
