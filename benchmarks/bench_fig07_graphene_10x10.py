"""Figure 7 reproduction: graphene 10x10 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig07_graphene_10x10(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig7")
