"""What-if planning queries: latency of the sandboxed scenario path.

A what-if query runs the full dynamics machinery — transient ``LinkEvent``
schedule, epoch bumps, snapshot/restore — on the live platform, so it is
inherently slower than a cached point forecast.  This bench pins what that
costs and that the speed never bought back correctness:

Asserted always, including smoke mode (correctness, not wall clock):

- the service's what-if answer is **bit-identical** to hand-building the
  same schedule with ``schedule_dynamics`` + ``transfer_processes``;
- the REST round trip returns exactly the direct service answer;
- the platform is **restored** after every query (bandwidths back to
  nominal, no leaked derating);
- with warm horizon series, every forecast's interval brackets its point
  duration.

Asserted outside smoke mode (wall clock):

- the interval-annotated horizon path (three simulations: point,
  optimistic, pessimistic) costs **≤ 6x** the single-simulation what-if —
  the interval machinery must stay a constant factor, not a blow-up.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro._util.rng import rng_for
from repro.analysis.tables import render_table
from repro.core.forecast import NetworkForecastService
from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.experiments import environment
from repro.scenarios.dynamics import schedule_dynamics
from repro.scenarios.spec import LinkEvent
from repro.simgrid.builder import build_dumbbell
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08
from repro.simgrid.msg import transfer_processes

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
PLATFORM = "whatif-bench"
N_SIDE = 4 if SMOKE else 16        # hosts per dumbbell side
QUERIES = 6 if SMOKE else 40
FANOUT = 2 if SMOKE else 8         # transfers per query
WARMUP_OBS = 10                    # horizon observations per link
SIZES = (1e7, 5e7, 2e8, 1e9)
MAX_INTERVAL_OVERHEAD = 6.0
EVENTS = (
    LinkEvent(time=0.5, link="bottleneck", action="degrade", factor=0.5),
    LinkEvent(time=30.0, link="bottleneck", action="recover"),
)


def make_queries(rng) -> list[list[tuple]]:
    """Left-to-right transfer batches (every query crosses the bottleneck,
    so the event schedule genuinely reshapes every answer)."""
    queries = []
    for _ in range(QUERIES):
        queries.append([
            (f"left-{int(rng.integers(1, N_SIDE + 1))}",
             f"right-{int(rng.integers(1, N_SIDE + 1))}",
             float(rng.choice(SIZES)))
            for _ in range(FANOUT)
        ])
    return queries


def timed(run, queries):
    """Answer every query one at a time; returns (answers, median seconds)."""
    answers, latencies = [], []
    for query in queries:
        t0 = time.perf_counter()
        answers.append(run(query))
        latencies.append(time.perf_counter() - t0)
    return answers, float(np.median(latencies))


def test_whatif_serving_latency_and_contract(console, benchmark, trajectory):
    service = NetworkForecastService(
        {PLATFORM: build_dumbbell(N_SIDE, N_SIDE)}, model=LV08())
    platform = service.platform(PLATFORM)
    nominal = platform.link("bottleneck").bandwidth
    rng = rng_for(environment.root_seed(), "whatif-serving-bench")
    queries = make_queries(rng)

    # -- plain what-if: must match the hand-built dynamics run exactly -----
    plain_answers, plain_median = timed(
        lambda q: service.predict_what_if(PLATFORM, q, EVENTS,
                                          intervals=False),
        queries)
    for query, result in zip(queries, plain_answers):
        sim = Simulation(platform, service.model)
        with_events = schedule_dynamics(sim, EVENTS)
        manual = transfer_processes(sim, list(query))
        # the schedule ran on the live platform both times: restore must
        # have put every bandwidth back or the comparison would drift
        assert platform.link("bottleneck").bandwidth == nominal
        assert [f.duration for f in result.forecasts] == \
            [r["duration"] for r in manual]
        assert len(result.applied) == len(with_events.applied)

    # -- horizon + intervals: three simulations, bounded overhead ----------
    for _ in range(WARMUP_OBS):
        service.observe_link(PLATFORM, "bottleneck", nominal * 0.7)
        service.observe_link(PLATFORM, "bottleneck", nominal * 0.8)
    interval_answers, interval_median = timed(
        lambda q: service.predict_what_if(PLATFORM, q, EVENTS, horizon=3),
        queries)
    for result in interval_answers:
        for forecast in result.forecasts:
            assert forecast.lower is not None
            assert forecast.lower <= forecast.duration <= forecast.upper
    assert platform.link("bottleneck").bandwidth == nominal
    overhead = interval_median / plain_median

    # -- REST round trip: the served answer is the direct answer -----------
    pilgrim = Pilgrim()
    pilgrim.register_platform(PLATFORM, platform)
    pilgrim.forecast._horizons = service._horizons  # share the warm series
    with pilgrim.serve() as server:
        client = RestClient(server.url)
        events_json = [e.to_json() for e in EVENTS]
        rest_answers, rest_median = timed(
            lambda q: client.what_if(PLATFORM, q, events_json, horizon=3),
            queries)
    direct = [
        service.predict_what_if(PLATFORM, q, EVENTS, horizon=3).to_json()
        for q in queries
    ]
    assert rest_answers == direct

    # -- report + gate ------------------------------------------------------
    trajectory(
        "whatif",
        plain_us=plain_median * 1e6,
        intervals_us=interval_median * 1e6,
        rest_us=rest_median * 1e6,
        interval_overhead=overhead,
        queries=QUERIES,
        fanout=FANOUT,
    )
    console(render_table(
        ["metric", "plain what-if", "horizon + intervals", "REST"],
        [
            ("median latency (µs)", plain_median * 1e6,
             interval_median * 1e6, rest_median * 1e6),
            ("simulations per query", 1, 3, 3),
        ],
        title=f"what-if serving, dumbbell({N_SIDE}x{N_SIDE}) x {QUERIES} "
              f"queries of {FANOUT}: interval overhead {overhead:.2f}x",
    ))

    if SMOKE:
        console(f"smoke mode — interval overhead {overhead:.2f}x reported, "
                f"≤{MAX_INTERVAL_OVERHEAD}x not asserted")
    else:
        assert overhead <= MAX_INTERVAL_OVERHEAD, (
            f"interval-annotated what-if costs {overhead:.2f}x the plain "
            f"query (required ≤{MAX_INTERVAL_OVERHEAD}x)"
        )

    # the benchmarked callable: one interval-annotated what-if query
    benchmark(lambda: service.predict_what_if(PLATFORM, queries[0], EVENTS,
                                              horizon=3))
