"""§IV-C2 latency claim: "a typical request to a local Pilgrim instance for
a prediction involving 30 concurrent transfers on Grid'5000 takes less than
0.1 s" — measured here against the whole-grid ``g5k_test`` platform, both
in-process and over HTTP (local server, as the paper measured)."""

import time

import pytest

from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.experiments.protocol import ExperimentSpec, Topology, draw_transfer_pairs

SPEC = ExperimentSpec("latency-30", Topology.GRID_MULTI, 30, 30)


def workload(harness):
    pairs = draw_transfer_pairs(SPEC, harness.seed)
    return [(src, dst, 5e8) for src, dst in pairs]


def test_30_transfer_prediction_under_100ms(harness, console, benchmark):
    transfers = workload(harness)
    assert len(transfers) == 30
    result = benchmark(
        lambda: harness.forecast.predict_transfers("g5k_test", transfers)
    )
    assert len(result) == 30
    if benchmark.stats is None:  # --benchmark-disable (smoke mode)
        return
    median = benchmark.stats.stats.median
    console(f"in-process 30-transfer prediction median: {median * 1e3:.2f} ms "
            f"(paper bound: 100 ms)")
    assert median < 0.1


def test_30_transfer_prediction_over_http(harness, console, benchmark):
    pilgrim = Pilgrim()
    for name in harness.forecast.platform_names():
        pilgrim.register_platform(name, harness.forecast.platform(name))
    transfers = workload(harness)
    with pilgrim.serve() as server:
        client = RestClient(server.url)

        def request():
            return client.predict_transfers("g5k_test", transfers)

        answers = benchmark(request)
        assert len(answers) == 30
        if benchmark.stats is None:  # --benchmark-disable (smoke mode)
            return
        median = benchmark.stats.stats.median
    console(f"HTTP 30-transfer prediction median: {median * 1e3:.2f} ms "
            f"(paper bound: 100 ms, local instance)")
    assert median < 0.1
