"""Time-varying sharing vs. the static default: the congestion-model tax.

The TCP-fluid model (:mod:`repro.simgrid.tcpfluid`) retunes every flow's
``(weight, bound)`` at each RTT round until the window ramp goes steady —
extra timer events plus :meth:`SharingSystem.update_variable` calls the
static CM02/LV08 path never pays.  This bench prices that tax on the
paper's 30x30 campaign shape (fig5, sagittaire) and pins the solver
equivalences that make the time-varying path trustworthy:

- incremental vs. ``full_resolve`` vs. scalar (``vectorized=False``)
  durations agree to 1e-9 *under time-varying dynamics* — the
  ``update_variable`` dirty-component path is exactly the batch rebuild,
- the overhead ratio (tcp-fluid / LV08 event-loop time) stays bounded:
  the round timers must not turn a campaign solve into a per-RTT resolve
  of the whole arena,
- the incremental arena still beats ``full_resolve`` while weights move
  every round (recorded as the trajectory ``speedup``).

Timed region is ``Simulation.run()`` only; construction is excluded.
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.experiments.figures import FIGURES
from repro.experiments.protocol import TRANSFER_SIZES, draw_transfer_pairs
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08
from repro.simgrid.tcpfluid import TcpFluidModel

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
REPEATS = 5 if SMOKE else 20
ROUNDS = 2 if SMOKE else 5
#: The round timers roughly double the event count on this shape; anything
#: past this multiple means the time-varying path degenerated into a
#: whole-arena resolve per RTT.
MAX_OVERHEAD = 10.0

STATIC = LV08()
FLUID = TcpFluidModel()


def campaign_workload() -> list[tuple[str, str, float]]:
    pairs = draw_transfer_pairs(FIGURES["fig5"].spec, environment.root_seed())
    return [
        (src, dst, TRANSFER_SIZES[i % len(TRANSFER_SIZES)])
        for i, (src, dst) in enumerate(pairs)
    ]


def prepare(platform, workload, model, full_resolve: bool = False,
            vectorized: bool = True) -> tuple[Simulation, list]:
    sim = Simulation(platform, model, full_resolve=full_resolve,
                     vectorized=vectorized)
    comms = [sim.add_comm(src, dst, size) for src, dst, size in workload]
    return sim, comms


def durations_of(prepared: tuple[Simulation, list]) -> list[float]:
    sim, comms = prepared
    sim.run()
    return [c.duration for c in comms]


def paired_best_of(make_a, make_b, repeats: int = REPEATS,
                   rounds: int = ROUNDS) -> tuple[float, float]:
    """Best mean ``run()`` time per side, interleaved within every round so
    machine-load drift cancels out of the ratio."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        total_a = total_b = 0.0
        for _ in range(repeats):
            sim, _ = make_a()
            t0 = time.perf_counter()
            sim.run()
            total_a += time.perf_counter() - t0
            sim, _ = make_b()
            t0 = time.perf_counter()
            sim.run()
            total_b += time.perf_counter() - t0
        best_a = min(best_a, total_a / repeats)
        best_b = min(best_b, total_b / repeats)
    return best_a, best_b


def assert_durations_close(label: str, reference: list[float],
                           candidate: list[float]) -> float:
    assert len(reference) == len(candidate), (
        f"{label}: {len(reference)} vs {len(candidate)} transfers"
    )
    worst_rel = max(
        abs(a - b) / max(a, b) for a, b in zip(reference, candidate)
    )
    assert worst_rel <= 1e-9, (
        f"{label}: durations drifted (max rel diff {worst_rel:.2e})"
    )
    return worst_rel


def test_congestion_model_overhead_30x30(console, benchmark, trajectory):
    platform = environment.g5k_test_platform()
    workload = campaign_workload()
    # warm route/spec caches so neither model pays one-time setup
    durations_of(prepare(platform, workload, STATIC))
    durations_of(prepare(platform, workload, FLUID))

    # solver-mode equivalence while weights move every round
    fluid_inc = durations_of(prepare(platform, workload, FLUID))
    fluid_full = durations_of(
        prepare(platform, workload, FLUID, full_resolve=True))
    fluid_scalar = durations_of(
        prepare(platform, workload, FLUID, vectorized=False))
    worst_rel = assert_durations_close(
        "fig5 tcp_fluid incremental vs full_resolve", fluid_full, fluid_inc)
    assert_durations_close(
        "fig5 tcp_fluid vectorized vs scalar arena", fluid_inc, fluid_scalar)
    # the ramp is a real slowdown, not a no-op: every fluid transfer takes
    # at least as long as the static model's latency-factor estimate is fast
    static_durations = durations_of(prepare(platform, workload, STATIC))
    assert all(d > 0.0 for d in fluid_inc)
    assert len(static_durations) == len(fluid_inc)

    static_dt, fluid_dt = paired_best_of(
        lambda: prepare(platform, workload, STATIC),
        lambda: prepare(platform, workload, FLUID),
    )
    overhead = fluid_dt / static_dt
    fluid_full_dt, fluid_inc_dt = paired_best_of(
        lambda: prepare(platform, workload, FLUID, full_resolve=True),
        lambda: prepare(platform, workload, FLUID),
    )
    speedup = fluid_full_dt / fluid_inc_dt

    sim, _ = prepare(platform, workload, FLUID)
    sim.run()
    console(render_table(
        ["metric", "LV08 (static)", "tcp_fluid (time-varying)"],
        [
            ("event-loop time (ms)", static_dt * 1e3, fluid_dt * 1e3),
            ("overhead ratio", 1.0, overhead),
            ("incremental speedup", 1.0, speedup),
            ("max rel duration diff", 0.0, worst_rel),
        ],
        title=f"fig5 30x30 ({len(workload)} transfers): time-varying tax "
              f"{overhead:.2f}x — sharing {sim.sharing_stats}",
    ))
    trajectory("fig5_tcp_fluid", static_ms=static_dt * 1e3,
               fluid_ms=fluid_dt * 1e3, overhead=overhead,
               speedup=speedup, transfers=len(workload))
    if SMOKE:
        console(f"congestion model: smoke mode — overhead {overhead:.2f}x "
                f"reported, bounds not asserted")
    else:
        assert overhead <= MAX_OVERHEAD, (
            f"tcp_fluid event loop {overhead:.2f}x the static model "
            f"(allowed ≤{MAX_OVERHEAD}x)"
        )
        assert speedup >= 1.0, (
            f"incremental solver slower than full_resolve under "
            f"time-varying weights ({speedup:.2f}x)"
        )

    benchmark(lambda: durations_of(prepare(platform, workload, FLUID)))
