"""§VI background-traffic modeling: knowing the in-flight transfers improves
predictions.

The testbed runs foreground transfers WHILE background flows occupy the
shared NICs.  A PNFS request that ignores the background over-estimates the
available bandwidth; the same request with the ``ongoing`` parameter (the
scheduler's knowledge of its own in-flight movements) recovers the paper's
large-transfer accuracy.
"""

from repro._util.stats import median
from repro.analysis.errors import log2_error
from repro.analysis.tables import render_table
from repro.testbed.fluid import FluidSimulator

FOREGROUND = [
    (f"graphene-{i}.nancy.grid5000.fr", f"graphene-{i + 40}.nancy.grid5000.fr", 1e9)
    for i in (1, 2, 3, 4)
]
# background: large flows into the SAME destinations
BACKGROUND = [
    (f"graphene-{i + 10}.nancy.grid5000.fr", f"graphene-{i + 40}.nancy.grid5000.fr", 4e9)
    for i in (1, 2, 3, 4)
]


def measure_with_background(harness):
    sim = FluidSimulator(harness.testbed, seed=harness.seed)
    fg = [sim.submit(s, d, z) for s, d, z in FOREGROUND]
    for s, d, z in BACKGROUND:
        sim.submit(s, d, z, is_background=True)
    sim.run()
    return [f.completion_time_raw for f in fg]


def test_ongoing_transfers_fix_background_blindness(harness, console, benchmark):
    measured = measure_with_background(harness)

    blind = [f.duration for f in
             harness.forecast.predict_transfers("g5k_test", FOREGROUND)]
    informed = [f.duration for f in
                harness.forecast.predict_transfers(
                    "g5k_test", FOREGROUND, ongoing=BACKGROUND)]

    blind_err = [abs(log2_error(p, m)) for p, m in zip(blind, measured)]
    informed_err = [abs(log2_error(p, m)) for p, m in zip(informed, measured)]
    console(render_table(
        ["prediction mode", "median |log2 err|", "worst |log2 err|"],
        [("background ignored", median(blind_err), max(blind_err)),
         ("ongoing transfers declared", median(informed_err), max(informed_err))],
        title="§VI: 4 x 1GB foreground transfers vs 4 x 4GB background flows",
    ))
    assert median(informed_err) < median(blind_err) - 0.3
    assert median(informed_err) < 0.35
    benchmark(lambda: harness.forecast.predict_transfers(
        "g5k_test", FOREGROUND, ongoing=BACKGROUND))
