"""§IV-C2 AS-routing discussion: "Before the introduction of AS, routing was
not hierarchical, thus we had to model Grid'5000 as a 'flat' platform,
leading to a huge routing table which would consume a lot of memory, to the
point that it was impossible to wholly simulate Grid'5000."

Compares the hierarchical platform against its flattened equivalent (every
host pair declared in one AS): route-table entries, memory estimate, and
resolution latency — same simulated timings, very different costs.
"""

import pytest

from repro.analysis.tables import render_table
from repro.simgrid.builder import build_two_level_grid
from repro.simgrid.engine import Simulation
from repro.simgrid.models import CM02
from repro.simgrid.routing import flatten_platform, route_table_bytes

# a mid-size grid keeps the flat quadratic build affordable in a bench;
# sites use Dijkstra routing (adjacency only), the compact representation
# that hierarchical AS routing enables
SITES = {"lyon": 40, "nancy": 40, "lille": 30}


@pytest.fixture(scope="module")
def platforms():
    hierarchical = build_two_level_grid(SITES, site_routing="Dijkstra")
    flat = flatten_platform(hierarchical)
    return hierarchical, flat


def test_flat_table_explodes(platforms, console, benchmark):
    hierarchical, flat = platforms
    rows = [
        ("hierarchical (AS per site)", hierarchical.total_route_table_entries(),
         route_table_bytes(hierarchical)),
        ("flat (pre-AS SimGrid)", flat.root.route_table_size(),
         route_table_bytes(flat)),
    ]
    console(render_table(["model", "route entries", "approx bytes"], rows,
                         title="§IV-C2: hierarchical vs flat routing tables"))
    assert rows[1][1] > 50 * rows[0][1]
    assert rows[1][2] > 10 * rows[0][2]
    benchmark(lambda: hierarchical.route("lyon-1", "lille-30"))


def test_timings_identical_across_representations(platforms, console, benchmark):
    hierarchical, flat = platforms
    transfers = [("lyon-1", "nancy-1", 1e9), ("lyon-2", "lille-3", 1e9)]
    d1 = [c.duration for c in
          Simulation(hierarchical, CM02()).simulate_transfers(transfers)]
    d2 = [c.duration for c in
          Simulation(flat, CM02()).simulate_transfers(transfers)]
    assert d1 == pytest.approx(d2, rel=1e-9)
    console(f"identical durations on both representations: {d1}")
    flat.invalidate_route_cache()
    benchmark(lambda: flat.route("lyon-1", "lille-30"))
