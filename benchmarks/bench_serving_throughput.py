"""Serving throughput: warm worker pool vs. cold per-call pools.

A closed-loop load generator replays the same repeated mixed workload (many
small forecast batches, varying fan-out and sizes) two ways:

- **cold** — the historical ``predict_transfers_many(workers=N)`` path: a
  throwaway ``ProcessPoolExecutor`` per call, so every batch pays process
  start-up plus a platform rebuild in each worker;
- **warm** — the same calls with a :class:`~repro.serving.pool.WarmWorkerPool`
  injected: workers built their service once and keep the platform, route
  LRU and solver arena resident across batches.

Asserted (outside smoke mode, where wall-clock ratios mean nothing):

- the warm path is ≥ 3x faster than the cold path on the repeated workload
  (measured ~50x on the 1-core reference container — the win is avoided
  per-call overhead, not parallelism, so it holds on any core count), and
- every answer is **bit-identical** across cold, warm, serial
  one-at-a-time, and the full serving frontend with the cache disabled and
  enabled (determinism is a correctness signal and is asserted always,
  including smoke mode).
"""

from __future__ import annotations

import os
import time

from repro._util.rng import rng_for
from repro.analysis.tables import render_table
from repro.experiments import environment
from repro.serving.factories import STAR_PLATFORM, star_factory, star_forecast_service
from repro.serving.pool import WarmWorkerPool
from repro.serving.service import ForecastServingService

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
N_HOSTS = 16 if SMOKE else 64
WORKERS = 2
CALLS = 3 if SMOKE else 10
BATCH = 4 if SMOKE else 6
MIN_SPEEDUP = 3.0


def mixed_workload(hosts: list[str], calls: int, batch: int) -> list[list[list[tuple]]]:
    """``calls`` batches of ``batch`` request lists with mixed fan-out/sizes."""
    rng = rng_for(environment.root_seed(), "serving-throughput")
    workload = []
    for _ in range(calls):
        requests = []
        for _ in range(batch):
            n = int(rng.integers(1, 5))
            pairs = rng.choice(len(hosts), size=(n, 2), replace=False)
            requests.append([
                (hosts[a], hosts[b], float(rng.choice([1e7, 5e7, 2e8])))
                for a, b in pairs
            ])
        workload.append(requests)
    return workload


def run_cold_vs_warm(service, workload):
    factory = star_factory(N_HOSTS)

    t0 = time.perf_counter()
    cold = [
        service.predict_transfers_many(
            STAR_PLATFORM, requests, workers=WORKERS, service_factory=factory)
        for requests in workload
    ]
    cold_dt = time.perf_counter() - t0

    with WarmWorkerPool(factory, workers=WORKERS) as pool:
        # touch the pool so worker initializers are done before timing:
        # amortized start-up is the whole point of a long-lived pool
        pool.predict_many(STAR_PLATFORM, workload[0][:1])
        t0 = time.perf_counter()
        warm = [
            service.predict_transfers_many(
                STAR_PLATFORM, requests, executor=pool)
            for requests in workload
        ]
        warm_dt = time.perf_counter() - t0
        pool_stats = pool.stats()
    return cold, warm, cold_dt, warm_dt, pool_stats


def run_serving_frontend(service, workload, cache_size, rounds=2):
    """Replay the workload ``rounds`` times through the full serving path
    (the closed loop: round 2 repeats round 1's queries exactly)."""
    answers = []
    with ForecastServingService(service, window=0.001,
                                cache_size=cache_size) as serving:
        for _ in range(rounds):
            answers.append([
                [serving.predict(STAR_PLATFORM, transfers)
                 for transfers in requests]
                for requests in workload
            ])
        stats = serving.stats()
    return answers, stats


def test_serving_throughput_and_equivalence(console, benchmark):
    service = star_forecast_service(N_HOSTS)
    hosts = [h.name for h in service.platform(STAR_PLATFORM).hosts()]
    workload = mixed_workload(hosts, CALLS, BATCH)

    cold, warm, cold_dt, warm_dt, pool_stats = run_cold_vs_warm(
        service, workload)

    # serial one-at-a-time ground truth
    serial = [
        [service.predict_transfers(STAR_PLATFORM, transfers)
         for transfers in requests]
        for requests in workload
    ]

    # bit-identical across every execution path (dataclass float equality)
    assert cold == serial
    assert warm == serial

    # the full serving frontend: batched answers must match one-at-a-time
    # answers bitwise, with the cache disabled and enabled; every replay
    # round must answer identically whether simulated or served from cache
    uncached, uncached_stats = run_serving_frontend(service, workload,
                                                    cache_size=0)
    cached, cached_stats = run_serving_frontend(service, workload,
                                                cache_size=4096)
    for round_answers in uncached + cached:
        assert round_answers == serial
    assert uncached_stats["cache"]["hits"] == 0
    # the replayed round is pure cache traffic when the cache is on
    hits = cached_stats["cache"]["hits"]
    total = hits + cached_stats["cache"]["misses"]
    assert hits >= CALLS * BATCH
    assert total == 2 * CALLS * BATCH

    speedup = cold_dt / warm_dt
    console(render_table(
        ["metric", "cold (pool per call)", "warm (resident pool)"],
        [
            ("wall time (s)", cold_dt, warm_dt),
            ("speedup", 1.0, speedup),
            ("batches", CALLS, pool_stats["batches"] - 1),
            ("requests", CALLS * BATCH, pool_stats["requests"] - 1),
        ],
        title=f"serving throughput, star({N_HOSTS}) x {WORKERS} workers: "
              f"{speedup:.1f}x warm over cold "
              f"(cache hits {hits}/{total})",
    ))

    if SMOKE:
        console(f"smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{MIN_SPEEDUP}x not asserted")
    else:
        assert speedup >= MIN_SPEEDUP, (
            f"warm pool only {speedup:.2f}x faster than cold per-call pools "
            f"(required ≥{MIN_SPEEDUP}x)"
        )

    # the benchmarked callable: one warm serving-path batch (cache on)
    with ForecastServingService(service, window=0.0,
                                cache_size=4096) as serving:
        benchmark(lambda: [serving.predict(STAR_PLATFORM, transfers)
                           for transfers in workload[0]])
