"""The live metrology loop, end to end: probe → RRD → forecast → epoch
bump → re-predict.

One :class:`~repro.metrology.demo.StarMetrologyDemo` runs the paper's
dynamic-forecasting cycle against a degrading link while a serving frontend
answers traffic.  Asserted:

- **accuracy** — on the degraded phase, the recalibrated platform's
  transfer-time forecasts have *strictly lower* median |log2 error| against
  the testbed ground truth than the static-platform baseline (always,
  including smoke mode: this is a correctness property of the loop, not a
  wall-clock ratio);
- **consistency** — serving answers immediately before and after an epoch
  bump are bit-identical to serial ``predict_transfers`` ground truth, with
  the forecast cache disabled and enabled (always asserted);
- **rate** — the full loop iteration (probe every monitored link, record
  into RRDs, re-forecast, apply updates, re-predict the workload through
  the serving path) sustains ≥ ``MIN_UPDATES_PER_S`` on the reference
  container (skipped in smoke mode, where timing means nothing);
- **drift robustness** — on a drifting-sensor scenario (probes develop a
  slow multiplicative bias while the network stays healthy), the loop with
  EWMA re-anchored references has *strictly lower* median |log2 error|
  than the frozen-anchor loop, which bakes the sensor bias into the
  platform (always asserted);
- **combined traces** — a combined bandwidth+latency recording replays
  into platform latency within tolerance of the recorded testbed's true
  latency (always asserted).
"""

from __future__ import annotations

import os
import time

from repro._util.stats import median
from repro.analysis.tables import render_table
from repro.metrology.demo import DEMO_PLATFORM, StarMetrologyDemo
from repro.serving.service import ForecastServingService

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
N_HOSTS = 3 if SMOKE else 4
#: warm-up polls must cover the loop's min_observations anchor (3): the
#: reference estimate has to be taken while every link is still healthy
WARMUP = 3
STEPS = 4 if SMOKE else 10
SIZE = 2e8
SEED = 3
#: Full loop iterations per second the pipeline must sustain (non-smoke).
MIN_UPDATES_PER_S = 5.0


def build_demo() -> StarMetrologyDemo:
    return StarMetrologyDemo.for_run(
        n_hosts=N_HOSTS, period=15.0, seed=SEED,
        warmup=WARMUP, steps=STEPS, degrade_factor=0.3,
    )


def serving_matches_serial(demo, serving, transfers) -> None:
    """Serving answers must be bit-identical to direct simulation now."""
    served = serving.predict(DEMO_PLATFORM, transfers)
    direct = demo.service.predict_transfers(DEMO_PLATFORM, transfers)
    assert [f.to_json() for f in served] == [f.to_json() for f in direct], (
        "serving answer differs from serial ground truth"
    )


def run_loop(demo, serving, console):
    rows = []
    recal_errors, static_errors = [], []
    transfers = demo.workload(SIZE)
    for step in range(STEPS):
        # consistency immediately before any recalibration of this step
        serving_matches_serial(demo, serving, transfers)
        epoch_before = demo.loop.epoch
        demo.step()
        if demo.loop.epoch != epoch_before:
            # ... and immediately after the epoch bump: the cache entry
            # keyed on the old epoch must be unreachable, the new answer
            # must equal a fresh serial simulation on the mutated platform
            serving_matches_serial(demo, serving, transfers)
        evaluation = demo.evaluate_step(serving, transfers, seed_salt=step)
        if evaluation.degraded:
            recal_errors.append(evaluation.err_recalibrated)
            static_errors.append(evaluation.err_static)
        rows.append((f"{evaluation.time:g}", f"{evaluation.true_factor:g}",
                     evaluation.epoch, f"{evaluation.err_recalibrated:.3f}",
                     f"{evaluation.err_static:.3f}"))
    console(render_table(
        ["t (s)", "true factor", "epoch", "err recal", "err static"], rows,
        title=f"metrology loop: star({N_HOSTS}), cache "
              f"{'on' if serving.cache.enabled else 'off'}",
    ))
    return recal_errors, static_errors


def test_recalibrated_beats_static_cache_on_and_off(console, benchmark):
    for cache_size in (0, 4096):
        demo = build_demo()
        demo.warmup(WARMUP)
        with ForecastServingService(demo.service,
                                    cache_size=cache_size) as serving:
            recal_errors, static_errors = run_loop(demo, serving, console)
            if cache_size:
                cache = serving.cache.info()
                assert cache["misses"] >= 1
        assert recal_errors, "degradation never fired"
        assert demo.loop.stats.updates_applied >= 1, (
            "the loop never recalibrated the platform"
        )
        recal, static = median(recal_errors), median(static_errors)
        console(f"degraded phase (cache {cache_size}): median |log2 err| "
                f"recalibrated {recal:.3f} vs static {static:.3f}")
        assert recal < static, (
            f"recalibrated forecasts must strictly beat the static "
            f"baseline: {recal:.3f} >= {static:.3f}"
        )

    # rate: time the full loop iteration on a fresh, warm demo
    demo = build_demo()
    demo.warmup(WARMUP)
    transfers = demo.workload(SIZE)
    with ForecastServingService(demo.service) as serving:
        t0 = time.perf_counter()
        iterations = 3 if SMOKE else 10
        for _ in range(iterations):
            demo.step()
            serving.predict(DEMO_PLATFORM, transfers)
        elapsed = time.perf_counter() - t0
        rate = iterations / elapsed
        console(f"end-to-end loop rate: {rate:.1f} updates/s "
                f"({N_HOSTS} links probed + re-predict per update)")
        if not SMOKE:
            assert rate >= MIN_UPDATES_PER_S, (
                f"loop sustains only {rate:.1f} updates/s "
                f"(target {MIN_UPDATES_PER_S})"
            )
        benchmark(lambda: (demo.step(),
                           serving.predict(DEMO_PLATFORM, transfers)))


# -- drift robustness: EWMA re-anchoring vs frozen references ----------------

#: Per-cycle multiplicative sensor bias; compounds to a ~20-30% under-read
#: over the drift run — far beyond probe noise, well under a real outage.
DRIFT_PER_CYCLE = 0.02
DRIFT_STEPS = 8 if SMOKE else 14
DRIFT_WARMUP = 3


def run_drift_loop(anchor_alpha: float) -> float:
    """Median |log2 err| of a drifting-sensor run vs testbed ground truth.

    The testbed never degrades (degrade_at is pushed past the run): every
    forecast error beyond the probe-noise floor is the loop's own doing —
    the platform mutated to chase a sensor bias that is not real.
    """
    demo = StarMetrologyDemo(
        n_hosts=N_HOSTS, period=15.0, seed=SEED,
        degrade_at=1e9, sensor_drift=DRIFT_PER_CYCLE,
        anchor_alpha=anchor_alpha, anchor_health_band=0.12,
    )
    demo.warmup(DRIFT_WARMUP)
    transfers = demo.workload(SIZE)
    errors = []
    with ForecastServingService(demo.service) as serving:
        for step in range(DRIFT_STEPS):
            demo.step()
            evaluation = demo.evaluate_step(serving, transfers,
                                            seed_salt=step)
            errors.append(evaluation.err_recalibrated)
    return median(errors)


def test_reanchored_references_beat_frozen_anchors_under_drift(console):
    frozen = run_drift_loop(anchor_alpha=0.0)
    reanchored = run_drift_loop(anchor_alpha=0.25)
    console(f"drifting sensors ({DRIFT_PER_CYCLE:.0%}/cycle over "
            f"{DRIFT_STEPS} steps): median |log2 err| "
            f"re-anchored {reanchored:.3f} vs frozen {frozen:.3f}")
    assert reanchored < frozen, (
        f"EWMA re-anchoring must strictly beat frozen references under "
        f"sensor drift: {reanchored:.3f} >= {frozen:.3f}"
    )


# -- combined traces: replayed latency tracks the recorded testbed ----------

LATENCY_FACTOR = 3.0
#: Probe jitter (3% of the full RTT lands on the latency delta).
LATENCY_REL_TOL = 0.12


def test_combined_trace_replay_calibrates_latency(console):
    from repro.scenarios.runner import run_scenario
    from repro.scenarios.spec import (
        MeasuredTrace,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    demo = StarMetrologyDemo.for_run(
        n_hosts=N_HOSTS, period=15.0, seed=SEED,
        warmup=WARMUP, steps=STEPS, degrade_factor=0.5,
        degrade_latency_factor=LATENCY_FACTOR,
    )
    demo.warmup(WARMUP)
    demo.run(STEPS)
    traces = demo.combined_traces()
    assert len(traces) == 2 * N_HOSTS  # one bandwidth + one latency per link

    # JSON round trip, then replay as measured dynamics
    round_tripped = [MeasuredTrace.from_json(t.to_json()).rescaled(0.01)
                     for t in traces]
    spec = ScenarioSpec(
        name="combined-replay",
        topology=TopologySpec("star", {"n_hosts": N_HOSTS}),
        workload=WorkloadSpec("all_to_all", size=4e7),
        measured=tuple(round_tripped),
    )
    result = run_scenario(spec)
    latency_events = [e for e in result.events_applied
                      if e.latency is not None
                      and e.link == demo.degraded_link]
    assert latency_events, "no latency mutations replayed"
    replayed = latency_events[-1].latency
    truth = demo.testbed.links[demo.degraded_link].latency
    console(f"combined replay: {demo.degraded_link} latency {replayed:.3e}s "
            f"vs recorded testbed {truth:.3e}s "
            f"(factor {LATENCY_FACTOR:g} degradation)")
    assert abs(replayed - truth) / truth <= LATENCY_REL_TOL, (
        f"replayed latency {replayed:.3e} diverges from the recorded "
        f"testbed's {truth:.3e} beyond {LATENCY_REL_TOL:.0%}"
    )
