"""Figure 3 reproduction: sagittaire 1x10 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig03_sagittaire_1x10(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig3")
