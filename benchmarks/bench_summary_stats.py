"""§V-B headline statistics: pooled accuracy over all nine figures.

Paper: "the median of the absolute value of all the errors is 0.149, with a
standard deviation of 0.532 […] 74% of the predictions have an absolute
error less than 0.575" (for sizes > 1.67e7 bytes, all experiments pooled).
"""

from repro.analysis.tables import render_table
from repro.experiments.figures import FIGURES
from repro.experiments.summary import summarize, verify_summary

ALL_FIGS = [f"fig{i}" for i in range(3, 12)]


def test_summary_statistics(harness, console, benchmark):
    all_series = [harness.series(fig_id) for fig_id in ALL_FIGS]
    stats = summarize(all_series)
    rows = [(metric, paper, measured) for metric, paper, measured in stats.rows()]
    console(render_table(
        ["metric", "paper", "measured"], rows,
        title=f"§V-B summary over {stats.n_observations} large transfers "
              f"({len(ALL_FIGS)} experiments, reps={harness.repetitions})",
    ))
    failures = verify_summary(stats)
    assert failures == [], "\n".join(failures)
    # the pooled computation itself is the benchmarked operation
    benchmark(lambda: summarize(all_series))
