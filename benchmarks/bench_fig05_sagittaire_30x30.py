"""Figure 5 reproduction: sagittaire 30x30 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig05_sagittaire_30x30(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig5")
