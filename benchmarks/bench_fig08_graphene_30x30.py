"""Figure 8 reproduction: graphene 30x30 (paper-vs-measured in EXPERIMENTS.md)."""

from _harness import figure_bench


def test_fig08_graphene_30x30(harness, console, benchmark):
    figure_bench(harness, console, benchmark, "fig8")
