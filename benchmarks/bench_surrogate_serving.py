"""Surrogate fast path: learned first tier vs. the simulation path.

A campaign sweep over randomized scenarios on the bench topology (a
multi-hop dragonfly; a small star in smoke mode) trains the ridge + k-NN
surrogate; the bench then replays a **cache-miss** query workload (every
query unique, so the forecast cache never answers) two ways:

- **simulation** — the plain serving path: every query runs a SimGrid
  simulation;
- **surrogate** — the same serving frontend with a
  :class:`~repro.surrogate.SurrogateTier` in front, generous uncertainty
  bound so every query is surrogate-answered (asserted via the hit
  counter).

Asserted (outside smoke mode, where wall-clock ratios mean nothing):

- surrogate-answered queries have a **≥ 10x lower median latency** than
  the simulation path on the cache-miss workload (measured ~15-40x on the
  reference container — the win is a linear solve + k-NN lookup replacing
  a full fluid simulation, so it holds on any core count).

Asserted always, including smoke mode (correctness, not wall clock):

- held-out sweep accuracy stays within a **pinned error floor** (median
  |log2 predicted/actual|);
- with the bound pinned to zero the tier always falls through and the
  served answers are **bit-identical** to the serial ground truth;
- a **live epoch bump** (link degradation) flips the tier to stale, a
  :class:`~repro.surrogate.SurrogateRetrainer` flush re-sweeps the stale
  region and partial-fits, and the post-refresh predictions re-validate
  against fresh simulation truth.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro._util.rng import rng_for
from repro.analysis.tables import render_table
from repro.core.forecast import NetworkForecastService
from repro.experiments import environment
from repro.metrology.loop import LinkUpdate
from repro.scenarios.spec import TopologySpec
from repro.scenarios.topologies import build_topology
from repro.serving.service import ForecastServingService
from repro.surrogate import (
    SurrogateModel,
    SurrogateRetrainer,
    SurrogateSweep,
    SurrogateTier,
    run_sweep,
)

SMOKE = bool(os.environ.get("REPRO_SMOKE"))
PLATFORM = "surrogate-bench"
# smoke: a small star with light queries (wall-clock unasserted); full: a
# multi-hop dragonfly with heavy fan-out, where a query is a genuinely
# expensive max-min solve and the learned tier's flat cost pays off
TOPOLOGY = ("star", {"n_hosts": 8}) if SMOKE else (
    "dragonfly", {"n_groups": 4, "routers_per_group": 4,
                  "hosts_per_router": 2})
FANOUTS = (1, 3) if SMOKE else (24, 32)  # transfers per query, inclusive
SWEEP_SAMPLES = 10 if SMOKE else 32
QUERIES = 12 if SMOKE else 40
SIZES = (1e6, 2e7, 1e8, 4e8)
MIN_SPEEDUP = 10.0
MAX_HOLDOUT_MEDIAN_ERROR = 0.8 if SMOKE else 0.35
MAX_LIVE_MEDIAN_ERROR = 1.0


def unique_queries(hosts: list[str], count: int, rng) -> list[list[tuple]]:
    """``count`` distinct request lists: a pure cache-miss workload.

    Hosts repeat across a query's transfers (concurrent flows pile onto
    shared links, which is what makes the fluid solve expensive); src and
    dst within one transfer are always distinct."""
    seen: set[tuple] = set()
    queries: list[list[tuple]] = []
    while len(queries) < count:
        n = int(rng.integers(FANOUTS[0], FANOUTS[1] + 1))
        query = []
        for _ in range(n):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            query.append((hosts[a], hosts[b], float(rng.choice(SIZES))))
        query = tuple(query)
        if query in seen:
            continue
        seen.add(query)
        queries.append(list(query))
    return queries


def timed_replay(predict, queries):
    """Answer every query one at a time; returns (answers, median seconds)."""
    answers, latencies = [], []
    for query in queries:
        t0 = time.perf_counter()
        answers.append(predict(query))
        latencies.append(time.perf_counter() - t0)
    return answers, float(np.median(latencies))


def median_log2_error(answers, truth) -> float:
    errors = [
        abs(np.log2(got.duration / expected.duration))
        for batch, reference in zip(answers, truth)
        for got, expected in zip(batch, reference)
    ]
    return float(np.median(errors))


def test_surrogate_first_tier_latency_and_contract(console, benchmark,
                                                   trajectory):
    # -- train from a campaign sweep, pin the held-out accuracy floor ------
    sweep = SurrogateSweep(
        samples=SWEEP_SAMPLES, seed=7, topologies=(TOPOLOGY,), sizes=SIZES,
    )
    dataset = run_sweep(sweep)
    train, holdout = dataset.split_by_sample(0.25, seed=1)
    model = SurrogateModel.train(train)
    report = model.evaluate(holdout.features, holdout.targets)
    assert report["median_abs_log2_error"] <= MAX_HOLDOUT_MEDIAN_ERROR, (
        f"held-out sweep accuracy {report['median_abs_log2_error']:.3f} "
        f"exceeds the pinned floor {MAX_HOLDOUT_MEDIAN_ERROR}"
    )

    service = NetworkForecastService(
        {PLATFORM: build_topology(TopologySpec(*TOPOLOGY))})
    hosts = [h.name for h in service.platform(PLATFORM).hosts()]
    rng = rng_for(environment.root_seed(), "surrogate-serving-bench")
    queries = unique_queries(hosts, QUERIES, rng)
    truth = [service.predict_transfers(PLATFORM, q) for q in queries]

    # -- simulation path on the cache-miss workload ------------------------
    with ForecastServingService(service, window=0.0,
                                cache_size=4096) as serving:
        sim_answers, sim_median = timed_replay(
            lambda q: serving.predict(PLATFORM, q), queries)
        sim_stats = serving.stats()
    assert sim_answers == truth
    assert sim_stats["cache"]["hits"] == 0  # genuinely all misses

    # -- surrogate path: every query must be surrogate-answered ------------
    tier = SurrogateTier(model, bound=10.0)
    with ForecastServingService(service, window=0.0, cache_size=4096,
                                surrogate=tier) as serving:
        # one untimed replay warms the tier's per-route feature cache
        # (steady-state serving; surrogate answers are never cached, so
        # the forecast cache stays cold)
        for query in queries:
            serving.predict(PLATFORM, query)
        sur_answers, sur_median = timed_replay(
            lambda q: serving.predict(PLATFORM, q), queries)
        assert serving.cache.info()["hits"] == 0
    assert tier.stats()["hits"] == 2 * QUERIES  # warm-up + timed, all hits
    live_error = median_log2_error(sur_answers, truth)
    assert live_error <= MAX_LIVE_MEDIAN_ERROR

    # -- bound 0: the tier always falls through, bit-identically -----------
    fallback_tier = SurrogateTier(model, bound=0.0)
    with ForecastServingService(service, window=0.0, cache_size=0,
                                surrogate=fallback_tier) as serving:
        fallback = [serving.predict(PLATFORM, q) for q in queries]
    assert fallback == truth  # dataclass equality: bitwise durations
    assert fallback_tier.stats()["hits"] == 0
    assert fallback_tier.stats()["fallbacks"]["uncertainty"] == QUERIES

    # -- live epoch bump: stale → retrain → re-validated answers -----------
    platform = service.platform(PLATFORM)
    link = platform.links()[0]
    before = link.bandwidth
    link.bandwidth = before * 0.5
    assert tier.try_answer(service, PLATFORM, service.model,
                           tuple(queries[0])) is None
    assert tier.stats()["fallbacks"]["stale_epoch"] >= 1
    retrainer = SurrogateRetrainer(
        tier, platform, samples_per_refresh=4 if SMOKE else 8, seed=3)
    retrainer.on_updates([LinkUpdate(
        time=0.0, link=link.name, bandwidth_before=before,
        bandwidth_after=link.bandwidth, latency_before=link.latency,
        latency_after=link.latency)])
    summary = retrainer.flush()
    assert summary is not None and summary["rows"] > 0
    assert summary["stale_region_samples"] > 0
    refreshed = [tier.try_answer(service, PLATFORM, service.model,
                                 tuple(q)) for q in queries]
    assert all(answer is not None for answer in refreshed)
    fresh_truth = [service.predict_transfers(PLATFORM, q) for q in queries]
    refreshed_error = median_log2_error(refreshed, fresh_truth)
    assert refreshed_error <= MAX_LIVE_MEDIAN_ERROR

    # -- report + gate ------------------------------------------------------
    speedup = sim_median / sur_median
    trajectory(
        "first_tier",
        simulation_us=sim_median * 1e6,
        surrogate_us=sur_median * 1e6,
        speedup=speedup,
        queries=QUERIES,
        holdout_median_log2_error=report["median_abs_log2_error"],
        live_median_log2_error=live_error,
        refreshed_median_log2_error=refreshed_error,
    )
    console(render_table(
        ["metric", "simulation path", "surrogate tier"],
        [
            ("median latency (µs)", sim_median * 1e6, sur_median * 1e6),
            ("speedup", 1.0, speedup),
            ("median |log2 err|", 0.0, live_error),
            ("post-refresh |log2 err|", 0.0, refreshed_error),
        ],
        title=f"surrogate serving, {TOPOLOGY[0]} x {QUERIES} cache-miss "
              f"queries: {speedup:.1f}x, holdout err "
              f"{report['median_abs_log2_error']:.3f}",
    ))

    if SMOKE:
        console(f"smoke mode — speedup {speedup:.2f}x reported, "
                f"≥{MIN_SPEEDUP}x not asserted")
    else:
        assert speedup >= MIN_SPEEDUP, (
            f"surrogate tier only {speedup:.2f}x faster than the simulation "
            f"path (required ≥{MIN_SPEEDUP}x)"
        )

    # the benchmarked callable: one surrogate-answered serving query
    with ForecastServingService(service, window=0.0, cache_size=0,
                                surrogate=tier) as serving:
        benchmark(lambda: serving.predict(PLATFORM, queries[0]))
